//! Column-major dense matrices and the dense kernels the framework needs:
//! `gemm`, `gemv`, Cholesky/LDLᵀ, LU with partial pivoting, and Householder
//! QR. These are the `dense BLAS` counterparts of the paper's MKL calls
//! (`gemm`, `gemv`) used when forming `E_{i,j} = W_iᵀ U_j` and
//! `w_i = W_iᵀ u_i`.

use crate::vector;

/// Column-major dense matrix of `f64`.
///
/// Column-major storage matches the natural layout of the deflation blocks
/// `W_i ∈ R^{n_i × ν_i}`: each deflation vector is one contiguous column.
#[derive(Clone, Debug, PartialEq)]
pub struct DMat {
    rows: usize,
    cols: usize,
    /// `data[i + j*rows]` is entry `(i, j)`.
    data: Vec<f64>,
}

impl DMat {
    /// Zero matrix of shape `rows × cols`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DMat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = DMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major nested array (convenient in tests).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut m = DMat::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "from_rows: ragged rows");
            for (j, &v) in row.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Build from column-major data.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols);
        DMat { rows, cols, data }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow column `j` as a slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Mutably borrow column `j`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Underlying column-major storage.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Transposed copy.
    pub fn transpose(&self) -> DMat {
        let mut t = DMat::zeros(self.cols, self.rows);
        for j in 0..self.cols {
            for i in 0..self.rows {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// `y ← α A x + β y`.
    pub fn gemv(&self, alpha: f64, x: &[f64], beta: f64, y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "gemv: x length");
        assert_eq!(y.len(), self.rows, "gemv: y length");
        if beta == 0.0 {
            vector::zero(y);
        } else if beta != 1.0 {
            vector::scal(beta, y);
        }
        for j in 0..self.cols {
            let axj = alpha * x[j];
            if axj != 0.0 {
                vector::axpy(axj, self.col(j), y);
            }
        }
    }

    /// `y ← α Aᵀ x + β y` without forming the transpose.
    pub fn gemv_t(&self, alpha: f64, x: &[f64], beta: f64, y: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "gemv_t: x length");
        assert_eq!(y.len(), self.cols, "gemv_t: y length");
        for j in 0..self.cols {
            let d = vector::dot(self.col(j), x);
            y[j] = alpha * d + if beta == 0.0 { 0.0 } else { beta * y[j] };
        }
    }

    /// `C ← α A B + β C` (`A = self`).
    pub fn gemm(&self, alpha: f64, b: &DMat, beta: f64, c: &mut DMat) {
        assert_eq!(self.cols, b.rows, "gemm: inner dims");
        assert_eq!(c.rows, self.rows, "gemm: C rows");
        assert_eq!(c.cols, b.cols, "gemm: C cols");
        for j in 0..b.cols {
            let cj = c.col_mut(j);
            if beta == 0.0 {
                vector::zero(cj);
            } else if beta != 1.0 {
                vector::scal(beta, cj);
            }
        }
        // jik order: stream through columns of B and C.
        for j in 0..b.cols {
            for k in 0..self.cols {
                let bkj = alpha * b[(k, j)];
                if bkj != 0.0 {
                    let (a_col, c_col) = (k * self.rows, j * c.rows);
                    for i in 0..self.rows {
                        c.data[c_col + i] += bkj * self.data[a_col + i];
                    }
                }
            }
        }
    }

    /// `C ← α Aᵀ B + β C` (`A = self`); used for `E_{i,j} = W_iᵀ U_j`.
    pub fn gemm_tn(&self, alpha: f64, b: &DMat, beta: f64, c: &mut DMat) {
        assert_eq!(self.rows, b.rows, "gemm_tn: inner dims");
        assert_eq!(c.rows, self.cols, "gemm_tn: C rows");
        assert_eq!(c.cols, b.cols, "gemm_tn: C cols");
        for j in 0..b.cols {
            for i in 0..self.cols {
                let d = vector::dot(self.col(i), b.col(j));
                let prev = if beta == 0.0 { 0.0 } else { beta * c[(i, j)] };
                c[(i, j)] = alpha * d + prev;
            }
        }
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        vector::norm2(&self.data)
    }

    /// Maximum absolute entry.
    pub fn norm_max(&self) -> f64 {
        vector::norm_inf(&self.data)
    }

    /// Symmetry defect `max |A_{ij} − A_{ji}|` (square matrices only).
    pub fn symmetry_defect(&self) -> f64 {
        assert_eq!(self.rows, self.cols);
        let mut d = 0.0f64;
        for j in 0..self.cols {
            for i in 0..j {
                d = d.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        d
    }
}

impl std::ops::Index<(usize, usize)> for DMat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i + j * self.rows]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DMat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i + j * self.rows]
    }
}

/// Error raised by dense factorizations on singular / non-SPD input.
#[derive(Debug, Clone, PartialEq)]
pub enum FactorError {
    /// A pivot below the tolerance was met at the given elimination step.
    SingularPivot { step: usize, pivot: f64 },
    /// The matrix is not positive definite (Cholesky only).
    NotPositiveDefinite { step: usize, pivot: f64 },
}

impl std::fmt::Display for FactorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FactorError::SingularPivot { step, pivot } => {
                write!(f, "singular pivot {pivot:e} at step {step}")
            }
            FactorError::NotPositiveDefinite { step, pivot } => {
                write!(f, "non-SPD pivot {pivot:e} at step {step}")
            }
        }
    }
}

impl std::error::Error for FactorError {}

/// Dense Cholesky factorization `A = L Lᵀ` (lower triangular `L`).
pub struct DenseCholesky {
    n: usize,
    /// Lower triangle of `L`, column-major in a full matrix for simplicity.
    l: DMat,
}

impl DenseCholesky {
    /// Factor a symmetric positive definite matrix.
    pub fn factor(a: &DMat) -> Result<Self, FactorError> {
        assert_eq!(a.rows(), a.cols(), "cholesky: square input");
        let n = a.rows();
        let mut l = a.clone();
        for j in 0..n {
            // d = A_jj − Σ_{k<j} L_jk²
            let mut d = l[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(FactorError::NotPositiveDefinite { step: j, pivot: d });
            }
            let djj = d.sqrt();
            l[(j, j)] = djj;
            for i in j + 1..n {
                let mut s = l[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / djj;
            }
            for i in 0..j {
                l[(i, j)] = 0.0; // keep only the lower triangle
            }
        }
        Ok(DenseCholesky { n, l })
    }

    /// Solve `A x = b` in place.
    pub fn solve_in_place(&self, b: &mut [f64]) {
        assert_eq!(b.len(), self.n);
        // Forward: L y = b
        for i in 0..self.n {
            let mut s = b[i];
            for k in 0..i {
                s -= self.l[(i, k)] * b[k];
            }
            b[i] = s / self.l[(i, i)];
        }
        // Backward: Lᵀ x = y
        for i in (0..self.n).rev() {
            let mut s = b[i];
            for k in i + 1..self.n {
                s -= self.l[(k, i)] * b[k];
            }
            b[i] = s / self.l[(i, i)];
        }
    }

    /// Solve returning a fresh vector.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }

    /// The Cholesky factor `L`.
    pub fn l(&self) -> &DMat {
        &self.l
    }
}

/// Dense LDLᵀ factorization (no pivoting) for symmetric matrices that may be
/// indefinite but are known to have nonzero pivots, e.g. the dense coarse
/// operator `E` in tests.
pub struct DenseLdlt {
    n: usize,
    l: DMat,
    d: Vec<f64>,
}

impl DenseLdlt {
    /// Factor a symmetric matrix; fails on a (near-)zero pivot.
    pub fn factor(a: &DMat) -> Result<Self, FactorError> {
        assert_eq!(a.rows(), a.cols());
        let n = a.rows();
        let mut l = DMat::identity(n);
        let mut d = vec![0.0; n];
        let scale = a.norm_max().max(1.0);
        for j in 0..n {
            let mut dj = a[(j, j)];
            for k in 0..j {
                dj -= l[(j, k)] * l[(j, k)] * d[k];
            }
            if dj.abs() <= 1e-14 * scale || !dj.is_finite() {
                return Err(FactorError::SingularPivot { step: j, pivot: dj });
            }
            d[j] = dj;
            for i in j + 1..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)] * d[k];
                }
                l[(i, j)] = s / dj;
            }
        }
        Ok(DenseLdlt { n, l, d })
    }

    /// Solve `A x = b` in place.
    pub fn solve_in_place(&self, b: &mut [f64]) {
        assert_eq!(b.len(), self.n);
        for i in 0..self.n {
            let mut s = b[i];
            for k in 0..i {
                s -= self.l[(i, k)] * b[k];
            }
            b[i] = s;
        }
        for i in 0..self.n {
            b[i] /= self.d[i];
        }
        for i in (0..self.n).rev() {
            let mut s = b[i];
            for k in i + 1..self.n {
                s -= self.l[(k, i)] * b[k];
            }
            b[i] = s;
        }
    }

    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }

    /// Signs of the pivots: (#negative, #zero-ish, #positive) — the matrix
    /// inertia by Sylvester's law, useful to check definiteness in tests.
    pub fn inertia(&self) -> (usize, usize, usize) {
        let mut neg = 0;
        let mut zer = 0;
        let mut pos = 0;
        for &dj in &self.d {
            if dj < 0.0 {
                neg += 1;
            } else if dj == 0.0 {
                zer += 1;
            } else {
                pos += 1;
            }
        }
        (neg, zer, pos)
    }
}

/// Dense LU factorization with partial pivoting.
pub struct DenseLu {
    n: usize,
    lu: DMat,
    piv: Vec<usize>,
}

impl DenseLu {
    pub fn factor(a: &DMat) -> Result<Self, FactorError> {
        assert_eq!(a.rows(), a.cols());
        let n = a.rows();
        let mut lu = a.clone();
        let mut piv: Vec<usize> = (0..n).collect();
        let scale = a.norm_max().max(1.0);
        for k in 0..n {
            // pivot search in column k
            let mut p = k;
            let mut pmax = lu[(k, k)].abs();
            for i in k + 1..n {
                let v = lu[(i, k)].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if pmax <= 1e-300 * scale {
                return Err(FactorError::SingularPivot {
                    step: k,
                    pivot: pmax,
                });
            }
            if p != k {
                piv.swap(k, p);
                for j in 0..n {
                    let t = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = t;
                }
            }
            let pivot = lu[(k, k)];
            for i in k + 1..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                if m != 0.0 {
                    for j in k + 1..n {
                        let v = lu[(k, j)];
                        lu[(i, j)] -= m * v;
                    }
                }
            }
        }
        Ok(DenseLu { n, lu, piv })
    }

    pub fn solve_in_place(&self, b: &mut [f64]) {
        assert_eq!(b.len(), self.n);
        // apply permutation
        let permuted: Vec<f64> = self.piv.iter().map(|&p| b[p]).collect();
        b.copy_from_slice(&permuted);
        // L y = Pb (unit lower)
        for i in 0..self.n {
            let mut s = b[i];
            for k in 0..i {
                s -= self.lu[(i, k)] * b[k];
            }
            b[i] = s;
        }
        // U x = y
        for i in (0..self.n).rev() {
            let mut s = b[i];
            for k in i + 1..self.n {
                s -= self.lu[(i, k)] * b[k];
            }
            b[i] = s / self.lu[(i, i)];
        }
    }

    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }
}

/// Householder QR of a tall matrix `A = Q R`; exposes `Q` applied to vectors
/// and the upper-triangular `R`. Used by tests and by the orthogonalization
/// fallbacks in the Krylov crate.
pub struct DenseQr {
    rows: usize,
    cols: usize,
    /// Householder vectors stored below the diagonal; R on and above it.
    qr: DMat,
    /// Householder scalars τ.
    tau: Vec<f64>,
}

impl DenseQr {
    pub fn factor(a: &DMat) -> Self {
        let (m, n) = (a.rows(), a.cols());
        assert!(m >= n, "QR expects a tall (or square) matrix");
        let mut qr = a.clone();
        let mut tau = vec![0.0; n];
        for k in 0..n {
            // Build the Householder reflector for column k.
            let mut alpha = 0.0;
            for i in k..m {
                alpha += qr[(i, k)] * qr[(i, k)];
            }
            let alpha = alpha.sqrt();
            if alpha == 0.0 {
                tau[k] = 0.0;
                continue;
            }
            let beta = if qr[(k, k)] >= 0.0 { -alpha } else { alpha };
            let v0 = qr[(k, k)] - beta;
            tau[k] = -v0 / beta;
            // Normalize v so v[k] = 1 implicitly.
            for i in k + 1..m {
                qr[(i, k)] /= v0;
            }
            qr[(k, k)] = beta;
            // Apply (I − τ v vᵀ) to the trailing columns.
            for j in k + 1..n {
                let mut s = qr[(k, j)];
                for i in k + 1..m {
                    s += qr[(i, k)] * qr[(i, j)];
                }
                s *= tau[k];
                qr[(k, j)] -= s;
                for i in k + 1..m {
                    let vik = qr[(i, k)];
                    qr[(i, j)] -= s * vik;
                }
            }
        }
        DenseQr {
            rows: m,
            cols: n,
            qr,
            tau,
        }
    }

    /// Extract the upper-triangular factor `R` (`cols × cols`).
    pub fn r(&self) -> DMat {
        let mut r = DMat::zeros(self.cols, self.cols);
        for j in 0..self.cols {
            for i in 0..=j {
                r[(i, j)] = self.qr[(i, j)];
            }
        }
        r
    }

    /// Compute the thin `Q` (`rows × cols`) explicitly.
    pub fn q(&self) -> DMat {
        let mut q = DMat::zeros(self.rows, self.cols);
        for j in 0..self.cols {
            q[(j, j)] = 1.0;
        }
        // Apply reflectors in reverse order to the identity columns.
        for k in (0..self.cols).rev() {
            if self.tau[k] == 0.0 {
                continue;
            }
            for j in 0..self.cols {
                let mut s = q[(k, j)];
                for i in k + 1..self.rows {
                    s += self.qr[(i, k)] * q[(i, j)];
                }
                s *= self.tau[k];
                q[(k, j)] -= s;
                for i in k + 1..self.rows {
                    let vik = self.qr[(i, k)];
                    q[(i, j)] -= s * vik;
                }
            }
        }
        q
    }

    /// Least-squares solve `min ‖A x − b‖₂` via `R x = Qᵀ b`.
    pub fn solve_ls(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.rows);
        let mut y = b.to_vec();
        // y ← Qᵀ b by applying reflectors in order.
        for k in 0..self.cols {
            if self.tau[k] == 0.0 {
                continue;
            }
            let mut s = y[k];
            for i in k + 1..self.rows {
                s += self.qr[(i, k)] * y[i];
            }
            s *= self.tau[k];
            y[k] -= s;
            for i in k + 1..self.rows {
                y[i] -= s * self.qr[(i, k)];
            }
        }
        // Back substitution R x = y[..cols]
        let mut x = y[..self.cols].to_vec();
        for i in (0..self.cols).rev() {
            let mut s = x[i];
            for k in i + 1..self.cols {
                s -= self.qr[(i, k)] * x[k];
            }
            x[i] = s / self.qr[(i, i)];
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> DMat {
        DMat::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.25], &[0.5, 0.25, 2.0]])
    }

    #[test]
    fn gemv_identity() {
        let a = DMat::identity(3);
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        a.gemv(1.0, &x, 0.0, &mut y);
        assert_eq!(y, x);
    }

    #[test]
    fn gemm_matches_manual() {
        let a = DMat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = DMat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let mut c = DMat::zeros(2, 2);
        a.gemm(1.0, &b, 0.0, &mut c);
        let expect = DMat::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]);
        assert!((c.norm_fro() - expect.norm_fro()).abs() < 1e-14);
        assert!(c.data() == expect.data());
    }

    #[test]
    fn gemm_tn_matches_explicit_transpose() {
        let a = DMat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = DMat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let mut c1 = DMat::zeros(2, 2);
        a.gemm_tn(1.0, &b, 0.0, &mut c1);
        let at = a.transpose();
        let mut c2 = DMat::zeros(2, 2);
        at.gemm(1.0, &b, 0.0, &mut c2);
        for j in 0..2 {
            for i in 0..2 {
                assert!((c1[(i, j)] - c2[(i, j)]).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn cholesky_solves() {
        let a = spd3();
        let ch = DenseCholesky::factor(&a).unwrap();
        let b = [1.0, 2.0, 3.0];
        let x = ch.solve(&b);
        let mut r = [0.0; 3];
        a.gemv(1.0, &x, 0.0, &mut r);
        for i in 0..3 {
            assert!((r[i] - b[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = DMat::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, −1
        assert!(matches!(
            DenseCholesky::factor(&a),
            Err(FactorError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn ldlt_solves_indefinite_and_reports_inertia() {
        let a = DMat::from_rows(&[&[2.0, 1.0, 0.0], &[1.0, -3.0, 0.5], &[0.0, 0.5, 4.0]]);
        let f = DenseLdlt::factor(&a).unwrap();
        let b = [1.0, 0.0, -1.0];
        let x = f.solve(&b);
        let mut r = [0.0; 3];
        a.gemv(1.0, &x, 0.0, &mut r);
        for i in 0..3 {
            assert!((r[i] - b[i]).abs() < 1e-11, "residual {i}");
        }
        let (neg, zer, pos) = f.inertia();
        assert_eq!((neg, zer, pos), (1, 0, 2));
    }

    #[test]
    fn lu_solves_nonsymmetric() {
        let a = DMat::from_rows(&[&[0.0, 2.0, 1.0], &[1.0, 1.0, 0.0], &[3.0, 0.0, 1.0]]);
        let f = DenseLu::factor(&a).unwrap();
        let b = [4.0, 2.0, 5.0];
        let x = f.solve(&b);
        let mut r = [0.0; 3];
        a.gemv(1.0, &x, 0.0, &mut r);
        for i in 0..3 {
            assert!((r[i] - b[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn lu_detects_singular() {
        let a = DMat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(DenseLu::factor(&a).is_err());
    }

    #[test]
    fn qr_reconstructs_and_orthonormal() {
        let a = DMat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0], &[7.0, 9.0]]);
        let qr = DenseQr::factor(&a);
        let q = qr.q();
        let r = qr.r();
        // QᵀQ = I
        let mut qtq = DMat::zeros(2, 2);
        q.gemm_tn(1.0, &q, 0.0, &mut qtq);
        for i in 0..2 {
            for j in 0..2 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((qtq[(i, j)] - expect).abs() < 1e-12);
            }
        }
        // QR = A
        let mut qrm = DMat::zeros(4, 2);
        q.gemm(1.0, &r, 0.0, &mut qrm);
        for i in 0..4 {
            for j in 0..2 {
                assert!((qrm[(i, j)] - a[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn qr_least_squares() {
        // Overdetermined fit of y = 2x + 1 with exact data: LS must recover it.
        let a = DMat::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]);
        let b = [1.0, 3.0, 5.0, 7.0];
        let qr = DenseQr::factor(&a);
        let x = qr.solve_ls(&b);
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }
}
