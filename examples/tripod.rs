//! The paper's 3D strong-scaling geometry: a tripod (Figure 6) under
//! gravity, clamped at the feet, with the two-material heterogeneous
//! elasticity coefficients ((E, ν) = (2·10¹¹, 0.25) and (10⁷, 0.45)).
//!
//! ```sh
//! cargo run --release --example tripod
//! ```

use dd_geneo::core::{decompose, two_level, GeneoOpts, Problem, RasPrecond, TwoLevelOpts};
use dd_geneo::fem::coeffs;
use dd_geneo::krylov::{gmres, GmresOpts, SeqDot};
use dd_geneo::mesh::Mesh;
use dd_geneo::part::partition_mesh_rcb;
use dd_geneo::solver::Ordering;
use std::sync::Arc;

fn main() {
    // A plate on three legs, P1 elasticity (paper: P2; P1 keeps the demo
    // quick), clamped at the feet (z = 0), loaded by gravity.
    let mesh = Mesh::tripod(4);
    let n_sub = 8;
    let part = partition_mesh_rcb(&mesh, n_sub);
    let problem = Problem {
        pde: dd_geneo::core::Pde::Elasticity {
            lame: Arc::new(|x: &[f64]| coeffs::elasticity_two_materials(x)),
            body: Arc::new(|_: &[f64], f: &mut [f64]| {
                f.copy_from_slice(&[0.0, 0.0, -9.81 * 7800.0]);
            }),
        },
        order: 1,
        dirichlet: Arc::new(|x: &[f64]| x[2] < 1e-9),
    };
    let decomp = decompose(&mesh, &problem, &part, n_sub, 1);
    println!(
        "tripod: {} elements, {} vector dofs, {} subdomains",
        mesh.n_elements(),
        decomp.n_global,
        n_sub
    );

    let opts = GmresOpts {
        tol: 1e-6,
        max_iters: 500,
        record_history: false,
        ..Default::default()
    };
    let x0 = vec![0.0; decomp.n_global];

    let ras = RasPrecond::build(&decomp, Ordering::MinDegree);
    let one = gmres(
        &decomp.a_global,
        &ras,
        &SeqDot,
        &decomp.rhs_global,
        &x0,
        &opts,
    );
    println!(
        "P_RAS    : {:>4} iterations (converged = {})",
        one.iterations, one.converged
    );

    let tl = two_level(
        &decomp,
        &TwoLevelOpts {
            geneo: GeneoOpts {
                nev: 12,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let two = gmres(
        &decomp.a_global,
        &tl,
        &SeqDot,
        &decomp.rhs_global,
        &x0,
        &opts,
    );
    println!(
        "P_A-DEF1 : {:>4} iterations (converged = {}), dim(E) = {}",
        two.iterations,
        two.converged,
        tl.coarse().dim()
    );
    assert!(two.converged);

    // The plate sags: max downward displacement on the top surface.
    let n_scalar = decomp.n_global / 3;
    let mut sag = 0.0f64;
    for i in 0..n_scalar {
        sag = sag.min(two.x[3 * i + 2]);
    }
    println!("max downward displacement: {sag:.3e}");
    assert!(sag < 0.0, "the tripod must sag under gravity");
}
