//! Anatomy of the coarse operator: overlap growth (paper Figure 2),
//! the sparsity patterns of `Z` and `E` (Figures 3–4), and the two master
//! elections (Figure 5) — all printed as ASCII art.
//!
//! ```sh
//! cargo run --release --example coarse_anatomy
//! ```

use dd_geneo::core::masters::{nonuniform_masters, uniform_masters, upper_triangular_loads};
use dd_geneo::core::{decompose, problem::presets, two_level, GeneoOpts, TwoLevelOpts};
use dd_geneo::mesh::Mesh;
use dd_geneo::part::partition_mesh_rcb;

fn main() {
    // ---------------- Figure 2: overlap growth --------------------------
    println!("== Overlap growth (Figure 2): subdomain sizes vs δ ==");
    let mesh = Mesh::unit_square(16, 16);
    let n_sub = 4;
    let part = partition_mesh_rcb(&mesh, n_sub);
    let problem = presets::uniform_diffusion(1);
    println!("δ    sizes of V_i^δ (dofs per subdomain)");
    for delta in 1..=3 {
        let d = decompose(&mesh, &problem, &part, n_sub, delta);
        let sizes: Vec<usize> = d.subdomains.iter().map(|s| s.n_local()).collect();
        println!("{delta}    {sizes:?}");
    }

    // ---------------- Figures 3–4: Z and E patterns ---------------------
    // A 1D-style chain of 4 subdomains like the paper's toy example:
    // O_1 = {2}, O_2 = {1,3}, O_3 = {2,4}, O_4 = {3}.
    println!("\n== Sparsity of Z (Figure 3) and E (Figure 4), 4-subdomain chain ==");
    let chain = Mesh::rectangle(32, 2, 16.0, 1.0);
    let cpart = partition_mesh_rcb(&chain, 4);
    let cd = decompose(&chain, &problem, &cpart, 4, 1);
    for (i, s) in cd.subdomains.iter().enumerate() {
        let nbrs: Vec<usize> = s.neighbors.iter().map(|l| l.j).collect();
        println!(
            "O_{} = {:?}",
            i + 1,
            nbrs.iter().map(|j| j + 1).collect::<Vec<_>>()
        );
    }
    let tl = two_level(
        &cd,
        &TwoLevelOpts {
            geneo: GeneoOpts {
                nev: 2,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let e = &tl.coarse().e;
    let offs = &tl.coarse().space.offsets;
    println!("\nblock pattern of E (■ local-only, ▒ needs neighbor exchange, · zero):");
    for i in 0..4 {
        let mut row = String::new();
        for j in 0..4 {
            // Is block (i, j) nonzero?
            let mut nz = false;
            for p in offs[i]..offs[i + 1] {
                for (c, v) in e.row(p) {
                    if c >= offs[j] && c < offs[j + 1] && v != 0.0 {
                        nz = true;
                    }
                }
            }
            row.push_str(if !nz {
                " · "
            } else if i == j {
                " ■ "
            } else {
                " ▒ "
            });
        }
        println!("  {row}");
    }
    println!("dim(E) = {}, nnz(E) = {}", e.rows(), e.nnz());

    // ---------------- Figure 5: master elections ------------------------
    println!("\n== Master election, N = 16, P = 4 (Figure 5) ==");
    let n = 16;
    let p = 4;
    let uni = uniform_masters(n, p);
    let non = nonuniform_masters(n, p);
    println!("uniform     masters: {uni:?}");
    println!("non-uniform masters: {non:?}");
    println!(
        "upper-triangular block loads per group (to balance when only the\nupper part of the symmetric E is assembled):"
    );
    println!("  uniform:     {:?}", upper_triangular_loads(n, &uni));
    println!("  non-uniform: {:?}", upper_triangular_loads(n, &non));
}
