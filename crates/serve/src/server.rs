//! The resident solve server.
//!
//! [`try_serve`] is the SPMD entry point: every rank of a world runs it
//! with the same decomposition and the same [`Workload`], performs the
//! setup phases *once* (local factorizations, GenEO deflation, coarse
//! factorization — the resident `dd_core::PreparedMulti`), then streams
//! the request batches through reentrant applies. Three things can happen
//! to a batch:
//!
//! * **resident solve** — θ equals the resident operator's θ: a recycled
//!   apply on the prepared solver;
//! * **admissible reuse** — `|θ − θ_base| ≤ admissibility`: the solve runs
//!   against the *perturbed* operator `A(θ)` while the resident RAS
//!   factorizations and coarse `E` keep preconditioning it, so the answer
//!   is exact to tolerance and only the convergence rate pays for the lag;
//! * **re-setup** — θ drifted out of the admissible ball: the server
//!   re-factorizes at θ under the `serve-setup` trace phase (never inside
//!   `serve-apply` — a `dd-lint` rule pins that) and moves θ_base.
//!
//! Rank death, straggler eviction, and joins mid-stream funnel into the
//! same membership agreement the elastic solver uses; the next epoch
//! re-prepares on the repartitioned world (coarse rows ride the
//! [`CoarseCache`]) and the stream resumes at the first request whose
//! response is incomplete. Deposits into the shared [`ResponseStore`] are
//! keyed `(request, rhs, subdomain)` and written only after an apply's
//! trailing barrier, so a completed response is never re-solved and a
//! partial one is re-solved wholesale — no response mixes epochs.

use crate::batch::{plan_batches, Batch, BatcherCfg};
use crate::stream::Workload;
use dd_comm::Communicator;
use dd_core::{
    agree_next, recoverable, repartition_plan, try_setup_partitioned, CoarseCache, Decomposition,
    PreparedMulti, SpmdError, SpmdOpts,
};
use dd_krylov::RecycleSpace;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Server policy knobs on top of the usual [`SpmdOpts`].
#[derive(Clone)]
pub struct ServeOpts {
    pub spmd: SpmdOpts,
    pub batcher: BatcherCfg,
    /// Half-width of the admissible perturbation ball: a request at θ is
    /// preconditioned by the resident setup at θ_base while
    /// `|θ − θ_base| ≤ admissibility`; beyond it the server re-factorizes.
    pub admissibility: f64,
    /// Capacity of each operator's Krylov recycle space (0 disables
    /// recycling across the stream).
    pub recycle_dim: usize,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            spmd: SpmdOpts::default(),
            batcher: BatcherCfg::default(),
            admissibility: 0.05,
            recycle_dim: 8,
        }
    }
}

/// Per-solve metadata deposited alongside each local solution piece.
#[derive(Clone, Copy, Debug, Default)]
pub struct SolveMeta {
    pub iterations: usize,
    pub converged: bool,
    pub final_residual: f64,
    /// Solved against a perturbed operator under the resident
    /// preconditioner (admissible reuse) rather than a matching setup.
    pub reused: bool,
}

#[derive(Clone, Debug, Default)]
struct Slot {
    /// Per-subdomain solution pieces, each stored with the FNV-1a checksum
    /// it was deposited under — the same at-rest discipline as the
    /// checkpoint store: a piece that no longer matches its sum reads back
    /// as *absent*, so the response counts as incomplete and is re-solved.
    locals: BTreeMap<usize, (Vec<f64>, u64)>,
    completed: f64,
    meta: SolveMeta,
}

/// FNV-1a 64 over a solution piece's bit pattern.
fn piece_sum(x: &[f64]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET ^ x.len() as u64;
    for &v in x {
        for b in v.to_bits().to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
    }
    h
}

#[derive(Clone, Copy, Debug, Default)]
struct Counters {
    solves: usize,
    reused_applies: usize,
    resetups: usize,
    integrity_resolves: usize,
    t_setup: f64,
}

/// Shared response plane of a serving world — the analogue of the
/// checkpoint store: every rank deposits the local pieces of the solutions
/// it owns, and a response exists once all subdomains have deposited.
/// Deposits are idempotent per `(request, rhs, subdomain)` within an epoch
/// and last-writer-wins across epochs (a recovered epoch re-solves an
/// incomplete request wholesale, overwriting any partial pieces).
///
/// Every piece carries a checksum, verified on every read: at-rest
/// corruption makes the response incomplete again and the serving loop's
/// integrity pass re-solves it — a corrupted response is never returned.
#[derive(Default)]
pub struct ResponseStore {
    slots: Mutex<BTreeMap<(usize, usize), Slot>>,
    counters: Mutex<Counters>,
}

impl ResponseStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Deposit one subdomain's piece of the solution of `(req, rhs)`.
    /// `now` is the depositing rank's virtual clock; the response's
    /// completion instant is the max over deposits.
    pub fn deposit(
        &self,
        req: usize,
        rhs: usize,
        sub: usize,
        x: Vec<f64>,
        now: f64,
        meta: SolveMeta,
    ) {
        let sum = piece_sum(&x);
        let mut slots = self.slots.lock().unwrap_or_else(|p| p.into_inner());
        let slot = slots.entry((req, rhs)).or_default();
        slot.locals.insert(sub, (x, sum));
        slot.completed = slot.completed.max(now);
        slot.meta = meta;
    }

    /// Has `(req, rhs)` been deposited — and does it still verify — for
    /// all `nsubs` subdomains?
    pub fn is_complete(&self, req: usize, rhs: usize, nsubs: usize) -> bool {
        let slots = self.slots.lock().unwrap_or_else(|p| p.into_inner());
        slots.get(&(req, rhs)).is_some_and(|s| {
            s.locals.len() == nsubs && s.locals.values().all(|(x, sum)| piece_sum(x) == *sum)
        })
    }

    /// Number of subdomain pieces deposited for `(req, rhs)` that still
    /// verify against their checksums.
    pub fn deposited(&self, req: usize, rhs: usize) -> usize {
        let slots = self.slots.lock().unwrap_or_else(|p| p.into_inner());
        slots.get(&(req, rhs)).map_or(0, |s| {
            s.locals
                .values()
                .filter(|(x, sum)| piece_sum(x) == *sum)
                .count()
        })
    }

    /// The deposited-and-verified `(subdomain, piece)` pairs of
    /// `(req, rhs)`, in subdomain order — what the protocol-level suites
    /// canonicalize. A piece failing verification is omitted.
    pub fn pieces(&self, req: usize, rhs: usize) -> Vec<(usize, Vec<f64>)> {
        let slots = self.slots.lock().unwrap_or_else(|p| p.into_inner());
        slots.get(&(req, rhs)).map_or_else(Vec::new, |s| {
            s.locals
                .iter()
                .filter(|(_, (x, sum))| piece_sum(x) == *sum)
                .map(|(&k, (v, _))| (k, v.clone()))
                .collect()
        })
    }

    /// Flip one mantissa bit of a deposited piece *without* refreshing its
    /// stored checksum — at-rest corruption for the chaos tests. Returns
    /// whether the piece existed.
    #[doc(hidden)]
    pub fn corrupt_for_tests(&self, req: usize, rhs: usize, sub: usize) -> bool {
        let mut slots = self.slots.lock().unwrap_or_else(|p| p.into_inner());
        let Some((x, _)) = slots
            .get_mut(&(req, rhs))
            .and_then(|s| s.locals.get_mut(&sub))
        else {
            return false;
        };
        match x.first_mut() {
            Some(x0) => {
                *x0 = f64::from_bits(x0.to_bits() ^ (1 << 17));
                true
            }
            None => false,
        }
    }

    fn note(&self, f: impl FnOnce(&mut Counters)) {
        let mut c = self.counters.lock().unwrap_or_else(|p| p.into_inner());
        f(&mut c);
    }

    fn snapshot(&self, req: usize, rhs: usize) -> Option<Slot> {
        let slots = self.slots.lock().unwrap_or_else(|p| p.into_inner());
        slots.get(&(req, rhs)).cloned()
    }

    fn counters(&self) -> Counters {
        *self.counters.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// One answered right-hand side, in stream order.
#[derive(Clone, Debug)]
pub struct Response {
    pub req: usize,
    pub rhs: usize,
    pub theta: f64,
    pub arrival: f64,
    /// Virtual instant the last solution piece was deposited.
    pub completed: f64,
    /// `completed − arrival` in virtual seconds.
    pub latency: f64,
    pub iterations: usize,
    pub converged: bool,
    pub final_residual: f64,
    /// Answered by admissible preconditioner reuse (no re-setup).
    pub reused: bool,
    /// Assembled global solution `Σ_i R_iᵀ D_i x_i`.
    pub x: Vec<f64>,
}

/// What a serving run produced, identical on every surviving rank.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// All responses, ordered by `(request, rhs)` = submission order.
    pub responses: Vec<Response>,
    pub n_requests: usize,
    /// Solve invocations (a recovered epoch may re-solve, so this can
    /// exceed `responses.len()` under faults).
    pub solves: usize,
    /// Applies answered by admissible preconditioner reuse.
    pub reused_applies: usize,
    /// Inadmissible-drift re-factorizations.
    pub resetups: usize,
    /// Responses re-solved because a deposited piece failed its checksum
    /// verification (at-rest corruption healed by an integrity pass).
    pub integrity_resolves: usize,
    /// Membership changes survived mid-stream.
    pub recoveries: usize,
    /// Virtual seconds of the initial resident setup.
    pub t_setup: f64,
    /// Virtual clock at the end of the stream (this rank's).
    pub t_total: f64,
}

impl ServeReport {
    /// Responses per virtual second over the whole run.
    pub fn throughput(&self) -> f64 {
        self.responses.len() as f64 / self.t_total.max(f64::MIN_POSITIVE)
    }

    /// `p`-th latency percentile (`p` in `[0, 100]`), nearest-rank.
    pub fn latency_percentile(&self, p: f64) -> f64 {
        let mut lat: Vec<f64> = self.responses.iter().map(|r| r.latency).collect();
        if lat.is_empty() {
            return 0.0;
        }
        lat.sort_by(|a, b| a.total_cmp(b));
        let idx = ((p / 100.0) * (lat.len() - 1) as f64).round() as usize;
        lat[idx.min(lat.len() - 1)]
    }
}

/// Serve the whole `workload` on this world, surviving membership changes
/// mid-stream. Every rank must call it with identical arguments (SPMD);
/// each surviving rank returns the same [`ServeReport`] (up to its own
/// clock in `t_total`).
pub fn try_serve(
    decomp: &Decomposition,
    comm: &Communicator,
    opts: &ServeOpts,
    workload: &Workload,
    cache: &CoarseCache,
    responses: &ResponseStore,
) -> Result<ServeReport, SpmdError> {
    let nsubs = decomp.n_subdomains();
    assert!(comm.size() <= nsubs, "serve: more members than subdomains");
    comm.set_suspicion(opts.spmd.recovery.suspicion);
    let batches = plan_batches(&workload.requests, &opts.batcher);
    // Perturbed-operator arena: one decomposition per distinct θ, built
    // identically on every rank before the stream starts so re-setups and
    // admissible applies borrow from data that outlives every epoch.
    let arena: Vec<(f64, Decomposition)> = workload
        .thetas()
        .into_iter()
        .map(|t| (t, decomp.perturb_diag(t)))
        .collect();

    let mut held: Option<Communicator> = None;
    let mut prev_owner: Option<Vec<usize>> = None;
    let mut attempt = 0usize;
    loop {
        let (result, owner_world) = {
            let c = held.as_ref().unwrap_or(comm);
            let plan = repartition_plan(decomp, c, prev_owner.as_deref());
            let r = serve_epoch(
                decomp, c, opts, workload, &batches, &arena, cache, responses, &plan,
            );
            (r, plan.owner_world)
        };
        match result {
            Ok(()) => {
                let c = held.as_ref().unwrap_or(comm);
                return Ok(build_report(decomp, c, workload, responses));
            }
            Err(e) => {
                let again = opts.spmd.recovery.enabled
                    && recoverable(&e)
                    && attempt < opts.spmd.recovery.max_recoveries;
                if !again {
                    comm.abandon();
                    return Err(e);
                }
                attempt += 1;
                prev_owner = Some(owner_world);
                let next = {
                    let c = held.as_ref().unwrap_or(comm);
                    agree_next(c)
                };
                match next {
                    Ok((c, _t_agreement)) => held = Some(c),
                    Err(e2) => {
                        comm.abandon();
                        return Err(e2);
                    }
                }
            }
        }
    }
}

/// One epoch of serving: prepare once on the current membership, then
/// stream every batch whose response is still incomplete.
#[allow(clippy::too_many_arguments)]
fn serve_epoch(
    base: &Decomposition,
    c: &Communicator,
    opts: &ServeOpts,
    workload: &Workload,
    batches: &[Batch],
    arena: &[(f64, Decomposition)],
    cache: &CoarseCache,
    responses: &ResponseStore,
    plan: &dd_core::RepartitionPlan,
) -> Result<(), SpmdError> {
    let nsubs = base.n_subdomains();
    // Only the founders' first epoch resets the clock: the request stream
    // needs one monotone virtual-time axis across re-setups and epochs.
    let reset_clock = c.epoch() == 0 && !c.is_joiner();
    let t0 = c.clock();
    let scope = c.trace_scope("serve-setup");
    let mut resident: PreparedMulti<'_> =
        try_setup_partitioned(base, c, &opts.spmd, Some(cache), plan, reset_clock)?;
    drop(scope);
    let t_setup = if reset_clock {
        c.clock()
    } else {
        c.clock() - t0
    };
    if c.rank() == 0 && c.epoch() == 0 {
        responses.note(|m| m.t_setup = t_setup);
    }
    let mut theta_base = 0.0f64;
    // One recycle space per operator: banked (u, A(θ)u) pairs are only
    // valid against the operator that produced them.
    let mut spaces: BTreeMap<u64, RecycleSpace> = BTreeMap::new();

    // Pass 0 is the stream itself. A deposited piece that no longer
    // verifies against its checksum reads back as absent, so the response
    // is incomplete again — each further *integrity pass* re-solves such
    // responses wholesale (deposits are last-writer-wins), bounded by the
    // recovery options' replay budget. Exhausting the budget surfaces a
    // typed error: a corrupted response is never returned.
    for pass in 0..=opts.spmd.recovery.max_replays {
        if pass > 0 {
            let stale = batches
                .iter()
                .flat_map(|b| &b.items)
                .filter(|it| !responses.is_complete(it.req, it.rhs, nsubs))
                .count();
            if stale == 0 {
                break;
            }
            if c.rank() == 0 {
                responses.note(|m| m.integrity_resolves += stale);
            }
        }
        for batch in batches {
            if batch
                .items
                .iter()
                .all(|it| responses.is_complete(it.req, it.rhs, nsubs))
            {
                continue;
            }
            // Open-loop arrivals: idle (in virtual time) until dispatch.
            // (Integrity passes run after the stream, so they never wait.)
            let now = c.clock();
            if now < batch.dispatch {
                c.advance_clock(batch.dispatch - now);
            }
            let theta = batch.theta;
            let reused = theta.to_bits() != theta_base.to_bits();
            if reused && (theta - theta_base).abs() > opts.admissibility {
                // Inadmissible drift: re-factorize at θ and move the
                // resident base point. Setups never run inside
                // `serve-apply`.
                let scope = c.trace_scope("serve-setup");
                resident = match lookup(arena, theta) {
                    // Returning to the unperturbed operator reuses the
                    // coarse cache (layout unchanged → every row is a cache
                    // hit); perturbed operators get a fresh, uncached
                    // assembly.
                    None => try_setup_partitioned(base, c, &opts.spmd, Some(cache), plan, false)?,
                    Some(d) => try_setup_partitioned(d, c, &opts.spmd, None, plan, false)?,
                };
                drop(scope);
                theta_base = theta;
                if c.rank() == 0 {
                    responses.note(|m| m.resetups += 1);
                }
                serve_batch(
                    c,
                    &resident,
                    None,
                    opts,
                    workload,
                    batch,
                    responses,
                    nsubs,
                    &mut spaces,
                )?;
            } else if !reused {
                serve_batch(
                    c,
                    &resident,
                    None,
                    opts,
                    workload,
                    batch,
                    responses,
                    nsubs,
                    &mut spaces,
                )?;
            } else {
                // Admissible reuse: solve the perturbed operator under the
                // resident preconditioner.
                let op = lookup(arena, theta).ok_or_else(|| SpmdError::Protocol {
                    rank: c.rank(),
                    what: format!("perturbation θ={theta} missing from the arena"),
                })?;
                serve_batch(
                    c,
                    &resident,
                    Some(op),
                    opts,
                    workload,
                    batch,
                    responses,
                    nsubs,
                    &mut spaces,
                )?;
            }
        }
        // Quiesce the store before anyone judges staleness: without this,
        // a rank that finishes the pass early can observe a peer's
        // not-yet-deposited pieces as stale and enter an extra pass (and
        // its collectives) that the peer skips.
        c.try_barrier()?;
    }
    if let Some(it) = batches
        .iter()
        .flat_map(|b| &b.items)
        .find(|it| !responses.is_complete(it.req, it.rhs, nsubs))
    {
        return Err(SpmdError::Protocol {
            rank: c.rank(),
            what: format!(
                "response ({}, {}) failed integrity verification after {} re-solves",
                it.req, it.rhs, opts.spmd.recovery.max_replays
            ),
        });
    }
    Ok(())
}

/// Solve the incomplete items of one batch in stream order, sharing the
/// operator's recycle space, and deposit every owned piece.
#[allow(clippy::too_many_arguments)]
fn serve_batch(
    c: &Communicator,
    resident: &PreparedMulti<'_>,
    op_override: Option<&Decomposition>,
    opts: &ServeOpts,
    workload: &Workload,
    batch: &Batch,
    responses: &ResponseStore,
    nsubs: usize,
    spaces: &mut BTreeMap<u64, RecycleSpace>,
) -> Result<(), SpmdError> {
    let space = spaces
        .entry(batch.theta.to_bits())
        .or_insert_with(|| RecycleSpace::new(opts.recycle_dim));
    for it in &batch.items {
        if responses.is_complete(it.req, it.rhs, nsubs) {
            continue;
        }
        let rhs = workload.requests[it.req].rhs(it.rhs);
        let out = match op_override {
            None => resident.try_apply_recycled(rhs, "serve-apply", space)?,
            Some(d) => resident.try_apply_on(d, rhs, "serve-apply", Some(space))?,
        };
        let meta = SolveMeta {
            iterations: out.result.iterations,
            converged: out.result.converged,
            final_residual: out.result.final_residual,
            reused: op_override.is_some(),
        };
        let now = c.clock();
        for (s, x) in out.locals {
            responses.deposit(it.req, it.rhs, s, x, now, meta);
        }
        if c.rank() == 0 {
            responses.note(|m| {
                m.solves += 1;
                if meta.reused {
                    m.reused_applies += 1;
                }
            });
        }
    }
    Ok(())
}

fn lookup(arena: &[(f64, Decomposition)], theta: f64) -> Option<&Decomposition> {
    arena
        .iter()
        .find(|(t, _)| t.to_bits() == theta.to_bits())
        .map(|(_, d)| d)
}

fn build_report(
    decomp: &Decomposition,
    c: &Communicator,
    workload: &Workload,
    responses: &ResponseStore,
) -> ServeReport {
    let mut out = Vec::with_capacity(workload.n_rhs_total());
    for (ri, req) in workload.requests.iter().enumerate() {
        for j in 0..req.n_rhs() {
            let Some(slot) = responses.snapshot(ri, j) else {
                continue;
            };
            let x = assemble_global(decomp, &slot.locals);
            out.push(Response {
                req: ri,
                rhs: j,
                theta: req.theta(),
                arrival: req.arrival,
                completed: slot.completed,
                latency: slot.completed - req.arrival,
                iterations: slot.meta.iterations,
                converged: slot.meta.converged,
                final_residual: slot.meta.final_residual,
                reused: slot.meta.reused,
                x,
            });
        }
    }
    let counters = responses.counters();
    ServeReport {
        responses: out,
        n_requests: workload.requests.len(),
        solves: counters.solves,
        reused_applies: counters.reused_applies,
        resetups: counters.resetups,
        integrity_resolves: counters.integrity_resolves,
        recoveries: c.epoch(),
        t_setup: counters.t_setup,
        t_total: c.clock(),
    }
}

/// `Σ_i R_iᵀ D_i x_i` — the partition-of-unity interpolant of the
/// deposited local pieces, assembled in subdomain order so the result is
/// independent of deposit interleaving. Pieces that fail their checksum
/// verification are skipped (the serving loop re-solves them before any
/// report is built, so this is belt-and-braces).
fn assemble_global(decomp: &Decomposition, locals: &BTreeMap<usize, (Vec<f64>, u64)>) -> Vec<f64> {
    let mut x = vec![0.0; decomp.n_global];
    for (&s, (xs, sum)) in locals {
        if piece_sum(xs) != *sum {
            continue;
        }
        let sub = &decomp.subdomains[s];
        for (k, &g) in sub.l2g.iter().enumerate() {
            x[g as usize] += sub.d[k] * xs[k];
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_store_deposits_are_idempotent_and_complete() {
        let store = ResponseStore::new();
        assert!(!store.is_complete(0, 0, 2));
        store.deposit(0, 0, 0, vec![1.0], 0.5, SolveMeta::default());
        assert_eq!(store.deposited(0, 0), 1);
        assert!(!store.is_complete(0, 0, 2));
        // Same (req, rhs, sub) again: still one piece.
        store.deposit(0, 0, 0, vec![1.0], 0.6, SolveMeta::default());
        assert_eq!(store.deposited(0, 0), 1);
        store.deposit(0, 0, 1, vec![2.0], 0.4, SolveMeta::default());
        assert!(store.is_complete(0, 0, 2));
        // Completion is the max deposit instant, not the last.
        let slot = store.snapshot(0, 0).unwrap();
        assert_eq!(slot.completed, 0.6);
    }

    #[test]
    fn corrupted_piece_reads_back_as_absent_until_redeposited() {
        let store = ResponseStore::new();
        store.deposit(0, 0, 0, vec![1.0, 2.0], 0.1, SolveMeta::default());
        store.deposit(0, 0, 1, vec![3.0], 0.2, SolveMeta::default());
        assert!(store.is_complete(0, 0, 2));
        assert!(store.corrupt_for_tests(0, 0, 1));
        // The response is incomplete again: the poisoned piece is invisible
        // on every read path…
        assert!(!store.is_complete(0, 0, 2));
        assert_eq!(store.deposited(0, 0), 1);
        assert_eq!(store.pieces(0, 0).len(), 1);
        assert_eq!(store.pieces(0, 0)[0].0, 0);
        // …and a fresh deposit (the integrity re-solve) heals it.
        store.deposit(0, 0, 1, vec![3.0], 0.3, SolveMeta::default());
        assert!(store.is_complete(0, 0, 2));
        assert_eq!(store.pieces(0, 0).len(), 2);
    }

    #[test]
    fn latency_percentiles_are_order_statistics() {
        let mk = |lat: f64| Response {
            req: 0,
            rhs: 0,
            theta: 0.0,
            arrival: 0.0,
            completed: lat,
            latency: lat,
            iterations: 1,
            converged: true,
            final_residual: 0.0,
            reused: false,
            x: Vec::new(),
        };
        let report = ServeReport {
            responses: (1..=100).map(|i| mk(i as f64)).collect(),
            n_requests: 100,
            solves: 100,
            reused_applies: 0,
            resetups: 0,
            integrity_resolves: 0,
            recoveries: 0,
            t_setup: 0.0,
            t_total: 100.0,
        };
        assert_eq!(report.latency_percentile(0.0), 1.0);
        assert_eq!(report.latency_percentile(100.0), 100.0);
        assert_eq!(report.latency_percentile(50.0), 51.0);
        assert!((report.throughput() - 1.0).abs() < 1e-12);
    }
}
