//! The ported invariant rules: every rule of the old string-scanner
//! `dd-lint`, re-expressed over the token stream and the syntactic
//! model. Matching is token-exact (`Mutex::new` never matches
//! `SyncMutex::new`, nothing matches inside literals or comments) and
//! the region rules (`recovery-*`, `serve-apply`, test exemptions) use
//! real item spans instead of line heuristics.
//!
//! The five *flow-aware* rules the scanner could not express live in
//! [`crate::flow`].

use crate::lexer::{find_pattern, needle};
use crate::model::{render, FileModel};
use crate::Finding;

/// Shorthand: construct a finding anchored at token `tok`.
fn finding(rule: &'static str, m: &FileModel, tok: usize, witness: String) -> Finding {
    let line = m.line_of(tok);
    Finding {
        rule,
        path: m.path.clone(),
        line,
        snippet: m.raw_line(line).trim().to_string(),
        witness,
        fingerprint: String::new(),
    }
}

fn fn_context(m: &FileModel, tok: usize) -> String {
    m.enclosing_fn(tok)
        .map(|f| match &f.owner {
            Some(o) => format!("{o}::{}", f.name),
            None => f.name.clone(),
        })
        .unwrap_or_else(|| "<top>".into())
}

/// Rule `wallclock`: no wall-clock reads outside `crates/comm/src/time.rs`.
pub fn rule_wallclock(files: &[FileModel]) -> Vec<Finding> {
    let pats = [needle("Instant::now"), needle("SystemTime")];
    let mut out = Vec::new();
    for m in files {
        if m.path.ends_with("comm/src/time.rs") {
            continue;
        }
        for pat in &pats {
            for tok in find_pattern(&m.toks, pat) {
                let w = format!(
                    "{}: {}",
                    fn_context(m, tok),
                    render(&m.toks, (tok, tok + pat.len() - 1))
                );
                out.push(finding("wallclock", m, tok, w));
            }
        }
    }
    out
}

/// Files whose non-test code must stay free of `.unwrap()` / `.expect(`.
const RUNTIME_PATHS: [&str; 2] = ["crates/core/src/spmd.rs", "crates/comm/src/comm.rs"];

/// Rule `unwrap-expect`: typed errors only in the runtime paths.
pub fn rule_unwrap_expect(files: &[FileModel]) -> Vec<Finding> {
    let pats = [needle(".unwrap()"), needle(".expect(")];
    let mut out = Vec::new();
    for m in files {
        if !RUNTIME_PATHS.iter().any(|p| m.path.ends_with(p)) {
            continue;
        }
        for pat in &pats {
            for tok in find_pattern(&m.toks, pat) {
                if m.in_test(tok) {
                    continue;
                }
                let name = &m.toks[tok + 1].text;
                let w = format!("{}: .{name}", fn_context(m, tok));
                out.push(finding("unwrap-expect", m, tok, w));
            }
        }
    }
    out
}

/// Rule `phase-balance` (flow-aware port): a phase name saved with
/// `trace_phase_name()` must not be *dead* — it must either be restored
/// via a later `trace_phase(saved)` in the same fn, or escape (stored in
/// a struct, returned, passed on) so an RAII guard can restore it. The
/// old scanner required the literal restore in the same file and needed
/// an allow entry for `TraceScope`; the liveness form proves that case.
pub fn rule_phase_balance(files: &[FileModel]) -> Vec<Finding> {
    let mut out = Vec::new();
    for m in files {
        for f in &m.fns {
            let Some(body) = f.body else { continue };
            for (idents, rhs) in m.lets_in(body) {
                if idents.len() != 1 {
                    continue;
                }
                let saved = &idents[0];
                let has_save = m.calls_in(rhs).iter().any(|c| c.name == "trace_phase_name");
                if !has_save {
                    continue;
                }
                // Any later use of the saved ident keeps it alive: the
                // restore call, a struct-literal field, a return value.
                let after = (rhs.1 + 1, body.1);
                let used = (after.0..=after.1.min(m.toks.len().saturating_sub(1)))
                    .any(|i| m.toks[i].is_ident(saved));
                if !used {
                    let w = format!("{}: saved phase `{saved}` is dead", fn_context(m, rhs.0));
                    out.push(finding("phase-balance", m, rhs.0, w));
                }
            }
        }
    }
    out
}

/// Heap-carrying type heads the α–β cost model must see.
const HEAP_TYPES: [&str; 6] = ["Vec", "String", "Box", "HashMap", "BTreeMap", "VecDeque"];

/// Rule `wire-size`: a `WireSize` impl for a struct with heap-carrying
/// fields must mention every such field in its body.
pub fn rule_wire_size(files: &[FileModel]) -> Vec<Finding> {
    let mut out = Vec::new();
    for m in files {
        for im in &m.impls {
            if im.trait_name.as_deref() != Some("WireSize") {
                continue;
            }
            // Find the struct's heap fields anywhere in the workspace.
            let fields: Vec<String> = files
                .iter()
                .flat_map(|fm| fm.structs.iter())
                .find(|s| s.name == im.owner)
                .map(|s| {
                    s.fields
                        .iter()
                        .filter(|(_, ty)| HEAP_TYPES.iter().any(|h| ty.contains(h)))
                        .map(|(name, _)| name.clone())
                        .collect()
                })
                .unwrap_or_default();
            for field in fields {
                let mentioned = (im.body.0..=im.body.1).any(|i| m.toks[i].is_ident(&field));
                if !mentioned {
                    let w = format!("WireSize for {} ignores heap field `{field}`", im.owner);
                    out.push(finding("wire-size", m, im.body.0, w));
                }
            }
        }
    }
    out
}

/// Crates whose blocking must route through `SyncBackend`.
const SYNC_SCOPED: [&str; 2] = ["crates/comm/src/", "crates/core/src/"];

/// Rule `std-sync`: no raw `std::sync` blocking primitives in the
/// runtime crates outside the backend seam — neither constructed nor
/// named in type position.
pub fn rule_std_sync(files: &[FileModel]) -> Vec<Finding> {
    let pats = [
        needle("Mutex::new("),
        needle("Condvar::new("),
        needle("RwLock::new("),
        needle("Mutex<"),
        needle("RwLock<"),
    ];
    let mut out = Vec::new();
    for m in files {
        if !SYNC_SCOPED.iter().any(|p| m.path.contains(p)) || m.path.ends_with("comm/src/sync.rs") {
            continue;
        }
        for pat in &pats {
            for tok in find_pattern(&m.toks, pat) {
                let w = format!(
                    "{}: {}",
                    fn_context(m, tok),
                    render(&m.toks, (tok, tok + pat.len() - 1))
                );
                out.push(finding("std-sync", m, tok, w));
            }
        }
    }
    out
}

/// Method names of infallible blocking waits (their `try_` counterparts
/// honor the ambient `RetryPolicy` and return typed errors).
pub const BLOCKING_WAITS: [&str; 11] = [
    "recv",
    "barrier",
    "allreduce_sum",
    "allreduce_sum_vec",
    "allreduce_max",
    "allreduce_max_usize",
    "allgather",
    "gather",
    "gatherv",
    "scatter",
    "wait_reduce",
];

/// Token ranges of `trace_phase("<prefix>…")` regions: from the opening
/// call to the next `trace_phase`/`trace_scope` call (the restore or the
/// next phase). `trace_scope` also opens a region when `scopes` is set.
pub fn phase_regions(m: &FileModel, prefix: &str, scopes: bool) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let all = m.calls_in((0, m.toks.len().saturating_sub(1)));
    let mut open: Option<usize> = None;
    for c in &all {
        let is_phase = c.name == "trace_phase" || c.name == "trace_scope";
        if !is_phase {
            continue;
        }
        if c.name == "trace_scope" && !scopes {
            // A scope call still *closes* a literal region.
            if let Some(s) = open.take() {
                out.push((s, c.tok.saturating_sub(1)));
            }
            continue;
        }
        let opens = c
            .args
            .first()
            .and_then(|&(a, b)| {
                (a..=b).find_map(|i| {
                    (m.toks[i].kind == crate::lexer::TokKind::Str)
                        .then(|| m.toks[i].text.starts_with(prefix))
                })
            })
            .unwrap_or(false);
        if let Some(s) = open.take() {
            out.push((s, c.tok.saturating_sub(1)));
        }
        if opens {
            open = Some(c.tok);
        }
    }
    if let Some(s) = open {
        // Region runs to the end of the enclosing fn (or file).
        let end = m
            .enclosing_fn(s)
            .and_then(|f| f.body)
            .map(|(_, b)| b)
            .unwrap_or(m.toks.len().saturating_sub(1));
        out.push((s, end));
    }
    out
}

fn in_regions(regions: &[(usize, usize)], tok: usize) -> bool {
    regions.iter().any(|&(a, b)| a <= tok && tok <= b)
}

/// Rule `recovery-retry`: no infallible blocking waits and no
/// `RetryPolicy::unbounded` inside a `recovery-*` telemetry phase.
pub fn rule_recovery_retry(files: &[FileModel]) -> Vec<Finding> {
    let unbounded = needle("RetryPolicy::unbounded");
    let mut out = Vec::new();
    for m in files {
        let regions = phase_regions(m, "recovery-", false);
        if regions.is_empty() {
            continue;
        }
        for c in m.calls_in((0, m.toks.len().saturating_sub(1))) {
            if !c.is_method || !BLOCKING_WAITS.contains(&c.name.as_str()) {
                continue;
            }
            if !in_regions(&regions, c.tok) || m.in_test(c.tok) {
                continue;
            }
            let w = format!("{}: .{}", fn_context(m, c.tok), c.name);
            out.push(finding("recovery-retry", m, c.tok, w));
        }
        for tok in find_pattern(&m.toks, &unbounded) {
            if in_regions(&regions, tok) && !m.in_test(tok) {
                let w = format!("{}: RetryPolicy::unbounded", fn_context(m, tok));
                out.push(finding("recovery-retry", m, tok, w));
            }
        }
    }
    out
}

/// Substrings that make a `Suspected` handling site visibly bounded.
const BOUND_MARKERS: [&str; 5] = [
    "deadline",
    "k_missed",
    "SuspicionPolicy",
    "bounded",
    "timeout",
];

/// Rule `suspected-bounded`: `Suspected` handling inside a `recovery-*`
/// phase must carry a visible budget within two lines.
pub fn rule_suspected_bounded(files: &[FileModel]) -> Vec<Finding> {
    let mut out = Vec::new();
    for m in files {
        let regions = phase_regions(m, "recovery-", false);
        if regions.is_empty() {
            continue;
        }
        for (i, t) in m.toks.iter().enumerate() {
            if !t.is_ident("Suspected") || !in_regions(&regions, i) || m.in_test(i) {
                continue;
            }
            let lo = t.line.saturating_sub(2);
            let hi = t.line + 2;
            let bounded = m.toks.iter().any(|o| {
                o.kind == crate::lexer::TokKind::Ident
                    && o.line >= lo
                    && o.line <= hi
                    && BOUND_MARKERS.iter().any(|mk| o.text.contains(mk))
            });
            if !bounded {
                let w = format!("{}: Suspected without budget", fn_context(m, i));
                out.push(finding("suspected-bounded", m, i, w));
            }
        }
    }
    out
}

/// Crates whose `send(` payloads must not be freshly copied buffers.
const PAYLOAD_SCOPED: [&str; 4] = [
    "crates/comm/src/",
    "crates/core/src/",
    "crates/solver/src/",
    "crates/serve/src/",
];

/// Rule `payload-clone`: no `.clone()` / `.to_vec()` inside the argument
/// list of a `send(` call in the runtime crates. `Arc::clone(&x)` (a
/// pointer bump) passes — it is a path call, not a method call.
pub fn rule_payload_clone(files: &[FileModel]) -> Vec<Finding> {
    let mut out = Vec::new();
    for m in files {
        if !PAYLOAD_SCOPED.iter().any(|p| m.path.contains(p)) {
            continue;
        }
        for c in m.calls_in((0, m.toks.len().saturating_sub(1))) {
            if c.name != "send" || m.in_test(c.tok) {
                continue;
            }
            for &arg in &c.args {
                for inner in m.calls_in(arg) {
                    if inner.is_method
                        && matches!(inner.name.as_str(), "clone" | "to_vec")
                        && inner.args.is_empty()
                    {
                        let w = format!(
                            "{}: send payload .{}() on `{}`",
                            fn_context(m, c.tok),
                            inner.name,
                            inner.recv.join(".")
                        );
                        out.push(finding("payload-clone", m, inner.tok, w));
                    }
                }
            }
        }
    }
    out
}

/// Factorization entry points banned in the resident apply path.
const REFACTOR_PATHS: [(&str, &str); 4] = [
    ("SparseLdlt", "factor"),
    ("DistLdlt", "factor"),
    ("DistLdlt", "try_factor"),
    ("DenseLdlt", "factor"),
];

/// Rule `serve-apply`: no factorization inside the resident apply path —
/// `serve-apply` telemetry regions plus the bodies of `try_apply*` entry
/// points.
pub fn rule_serve_apply(files: &[FileModel]) -> Vec<Finding> {
    let mut out = Vec::new();
    for m in files {
        let mut regions = phase_regions(m, "serve-apply", true);
        for f in &m.fns {
            if f.name.starts_with("try_apply") {
                if let Some(body) = f.body {
                    regions.push(body);
                }
            }
        }
        if regions.is_empty() {
            continue;
        }
        for c in m.calls_in((0, m.toks.len().saturating_sub(1))) {
            if !in_regions(&regions, c.tok) || m.in_test(c.tok) {
                continue;
            }
            let is_refactor = REFACTOR_PATHS.iter().any(|(ty, f)| {
                c.path.len() >= 2
                    && c.path[c.path.len() - 2] == *ty
                    && c.path[c.path.len() - 1] == *f
            }) || (c.is_method && c.name == "refactor")
                || c.name.starts_with("try_setup");
            if is_refactor {
                let w = format!("{}: {}", fn_context(m, c.tok), c.display_name());
                out.push(finding("serve-apply", m, c.tok, w));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, src: &str) -> FileModel {
        FileModel::new(path, src)
    }

    #[test]
    fn wallclock_caught_outside_time_rs_but_not_in_literals() {
        let files = [
            file(
                "crates/core/src/spmd.rs",
                "fn f() { let t = std::time::Instant::now(); }\n",
            ),
            file("crates/comm/src/time.rs", "fn g() { Instant::now(); }\n"),
            file(
                "crates/krylov/src/gmres.rs",
                "fn h() { log(\"Instant::now\"); } // Instant::now\n",
            ),
            file(
                "crates/solver/src/ldlt.rs",
                "fn r() { let s = r#\"SystemTime Instant::now\"#; }\n",
            ),
        ];
        let got = rule_wallclock(&files);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].path, "crates/core/src/spmd.rs");
        assert!(got[0].witness.contains("f:"));
    }

    #[test]
    fn unwrap_in_runtime_path_caught_tests_exempt() {
        let m = file(
            "crates/comm/src/comm.rs",
            "fn f() { x.unwrap(); y.expect(\"boom\"); }\n\
             #[cfg(test)]\nmod tests { fn g() { z.unwrap(); } }\n",
        );
        let got = rule_unwrap_expect(std::slice::from_ref(&m));
        assert_eq!(got.len(), 2, "{got:?}");
    }

    #[test]
    fn dead_saved_phase_caught_restored_and_escaping_pass() {
        let dead = file(
            "crates/core/src/spmd.rs",
            "fn f(c: &Comm) { let prev = c.trace_phase_name(); c.trace_phase(\"inner\"); }\n",
        );
        assert_eq!(rule_phase_balance(std::slice::from_ref(&dead)).len(), 1);
        let restored = file(
            "crates/core/src/spmd.rs",
            "fn f(c: &Comm) { let prev = c.trace_phase_name(); c.trace_phase(\"inner\"); c.trace_phase(&prev); }\n",
        );
        assert!(rule_phase_balance(std::slice::from_ref(&restored)).is_empty());
        // The TraceScope pattern: saved name escapes into a guard struct.
        let escapes = file(
            "crates/comm/src/trace.rs",
            "fn scope(c: &Comm) -> TraceScope { let prev = c.trace_phase_name(); TraceScope { comm: c, prev } }\n",
        );
        assert!(rule_phase_balance(std::slice::from_ref(&escapes)).is_empty());
    }

    #[test]
    fn under_counted_wire_size_caught() {
        let files = [file(
            "crates/core/src/msg.rs",
            "pub struct Panel { pub rows: Vec<f64>, pub tag: u64 }\n\
             impl WireSize for Panel { fn wire_bytes(&self) -> usize { 8 } }\n",
        )];
        let got = rule_wire_size(&files);
        assert_eq!(got.len(), 1);
        assert!(got[0].witness.contains("rows"), "{got:?}");
        let ok = [file(
            "crates/core/src/msg.rs",
            "pub struct Panel { pub rows: Vec<f64>, pub tag: u64 }\n\
             impl WireSize for Panel { fn wire_bytes(&self) -> usize { 8 + self.rows.len() * 8 } }\n",
        )];
        assert!(rule_wire_size(&ok).is_empty());
    }

    #[test]
    fn std_sync_token_anchored() {
        let files = [
            file(
                "crates/comm/src/comm.rs",
                "fn f() { let m = Mutex::new(0); }\n",
            ),
            file(
                "crates/comm/src/comm.rs",
                "fn g(b: &B) { let m = SyncMutex::new(b, 0); }\n",
            ),
            file(
                "crates/comm/src/sync.rs",
                "fn h() { let m = Mutex::new(0); }\n",
            ),
            file(
                "crates/linalg/src/lib.rs",
                "fn k() { let m = Mutex::new(0); }\n",
            ),
            file(
                "crates/core/src/recovery.rs",
                "#[derive(Default)]\nstruct S { slots: Mutex<Vec<u8>> }\n",
            ),
        ];
        let got = rule_std_sync(&files);
        assert_eq!(got.len(), 2, "{got:?}");
    }

    #[test]
    fn recovery_region_blocks_infallible_waits() {
        let bad = file(
            "crates/core/src/recovery.rs",
            "fn f(c: &C) { c.trace_phase(\"recovery-adopt\");\n\
             let v: u64 = c.recv(0, 1);\n\
             let p = RetryPolicy::unbounded();\n\
             c.trace_phase(\"solve\");\n\
             c.barrier(); }\n",
        );
        let got = rule_recovery_retry(std::slice::from_ref(&bad));
        assert_eq!(got.len(), 2, "{got:?}");
        let ok = file(
            "crates/core/src/recovery.rs",
            "fn f(c: &C) { c.trace_phase(\"recovery-assembly\");\n\
             let v: u64 = c.try_recv_timeout(0, 1, &c.retry_policy()).unwrap_or(0);\n\
             c.trace_phase(\"solve\");\n\
             c.recv::<u64>(0, 1); }\n",
        );
        assert!(rule_recovery_retry(std::slice::from_ref(&ok)).is_empty());
    }

    #[test]
    fn recovery_region_sees_turbofish_recv() {
        // The old scanner needed a separate `.recv::<` needle; calls are
        // now resolved through the turbofish.
        let bad = file(
            "crates/core/src/recovery.rs",
            "fn f(c: &C) { c.trace_phase(\"recovery-adopt\"); let v = c.recv::<u64>(0, 1); c.trace_phase(\"x\"); }\n",
        );
        assert_eq!(rule_recovery_retry(std::slice::from_ref(&bad)).len(), 1);
    }

    #[test]
    fn suspected_needs_budget_in_recovery() {
        let bad = file(
            "crates/core/src/recovery.rs",
            "fn f(c: &C) { c.trace_phase(\"recovery-agree\");\n\
             while states.iter().any(|s| *s == RankState::Suspected) {\n\
             c.probe();\n\
             }\n\
             c.trace_phase(\"solve\"); }\n",
        );
        assert_eq!(rule_suspected_bounded(std::slice::from_ref(&bad)).len(), 1);
        let ok = file(
            "crates/core/src/recovery.rs",
            "fn f(c: &C) { c.trace_phase(\"recovery-agree\");\n\
             let policy = opts.suspicion.unwrap_or_default();\n\
             if states[r] == RankState::Suspected && beats[r] >= policy.k_missed {\n\
             c.evict(r);\n\
             }\n\
             c.trace_phase(\"solve\"); }\n",
        );
        assert!(rule_suspected_bounded(std::slice::from_ref(&ok)).is_empty());
    }

    #[test]
    fn payload_clone_caught_arc_and_move_pass() {
        let bad = file(
            "crates/solver/src/dist_ldlt.rs",
            "fn f(c: &C) { for k in 0..me { c.send(k, TAG, x_me.clone()); } c.send(q, T2, rows.to_vec()); }\n",
        );
        let got = rule_payload_clone(std::slice::from_ref(&bad));
        assert_eq!(got.len(), 2, "{got:?}");
        let ok = file(
            "crates/solver/src/dist_ldlt.rs",
            "fn f(c: &C) { c.send(k, TAG, Arc::clone(&x)); c.send(q, T2, contrib); let y = x.clone(); }\n",
        );
        assert!(rule_payload_clone(std::slice::from_ref(&ok)).is_empty());
    }

    #[test]
    fn serve_apply_blocks_factorization_in_apply_path() {
        let bad = file(
            "crates/core/src/recovery.rs",
            "impl P { pub fn try_apply_on(&self, d: &D) -> R { let f = SparseLdlt::factor(&d.a, ord); self.solve(f) } }\n",
        );
        let got = rule_serve_apply(std::slice::from_ref(&bad));
        assert_eq!(got.len(), 1, "{got:?}");
        let ok = file(
            "crates/core/src/recovery.rs",
            "fn try_setup_partitioned(d: &D) -> R { let f = SparseLdlt::factor(&d.a, ord); }\n\
             fn other(&self) { self.resident.solve() }\n",
        );
        assert!(rule_serve_apply(std::slice::from_ref(&ok)).is_empty());
    }

    #[test]
    fn serve_apply_literal_region_scoped() {
        let bad = file(
            "crates/serve/src/server.rs",
            "fn f(c: &C, x: &X, a: &A, b: &B) { c.trace_phase(\"serve-apply\");\n\
             let f1 = x.refactor(a);\n\
             c.trace_phase(\"serve-setup\");\n\
             let g = x.refactor(b); }\n",
        );
        let got = rule_serve_apply(std::slice::from_ref(&bad));
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].line, 2);
    }
}
