//! Tier-1 gate: the real workspace must pass `dd-analyze`. Runs in
//! `cargo test`, so a planted wall-clock read, a raw mutex in the runtime,
//! a rank-divergent collective, or an allocation in a `dd:hot` region
//! fails the build before review.

#[test]
fn workspace_is_clean() {
    let root = dd_lint::workspace_root();
    let result = dd_lint::analyze(&root).expect("analyze pass must run");
    assert!(
        result.files_scanned > 20,
        "suspiciously few files scanned ({}) — wrong root {}?",
        result.files_scanned,
        root.display()
    );
    let report: Vec<String> = result.findings.iter().map(|f| f.to_string()).collect();
    assert!(
        report.is_empty(),
        "dd-analyze findings:\n{}",
        report.join("\n")
    );
    assert!(
        result.stale.is_empty(),
        "stale dd-analyze.baseline entries:\n{}",
        result
            .stale
            .iter()
            .map(|e| e.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The audited exceptions themselves must still exist.
    assert!(
        result.suppressed >= 3,
        "expected audited baseline exceptions to match"
    );
}

/// Self-check: the analyzer's own crate must satisfy the invariants it
/// enforces — no baseline, no markers, nothing to suppress.
#[test]
fn analyzer_is_clean_on_itself() {
    let root = dd_lint::workspace_root().join("crates/lint");
    let files = dd_lint::collect_models(&root).expect("lint crate must parse");
    assert!(
        files.iter().any(|f| f.path.ends_with("flow.rs")),
        "expected to scan the analyzer's own sources"
    );
    let findings = dd_lint::run_rules(&files);
    let report: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
    assert!(
        report.is_empty(),
        "dd-analyze flags its own crate:\n{}",
        report.join("\n")
    );
}
