//! Problem definitions: which PDE is discretized, with which coefficients,
//! element order, and essential boundary conditions.
//!
//! The two model problems match the paper's experiments:
//! * [`Problem::diffusion`] — scalar heterogeneous diffusion
//!   (weak scaling, §3.4, P4 in 2D / P2 in 3D);
//! * [`Problem::elasticity`] — heterogeneous linear elasticity
//!   (strong scaling, §3.4, P3 in 2D / P2 in 3D).

use dd_fem::{assembly, DofMap};
use dd_linalg::CsrMatrix;
use dd_mesh::Mesh;
use std::sync::Arc;

/// Scalar coefficient field.
pub type ScalarField = Arc<dyn Fn(&[f64]) -> f64 + Send + Sync>;
/// Lamé coefficient field returning `(λ, μ)`.
pub type LameField = Arc<dyn Fn(&[f64]) -> (f64, f64) + Send + Sync>;
/// Body force field writing into its output slice.
pub type VectorField = Arc<dyn Fn(&[f64], &mut [f64]) + Send + Sync>;
/// Predicate selecting Dirichlet-constrained locations.
pub type BoundaryPredicate = Arc<dyn Fn(&[f64]) -> bool + Send + Sync>;

/// The PDE being discretized.
#[derive(Clone)]
pub enum Pde {
    /// `−∇·(κ∇u) = f`.
    Diffusion { kappa: ScalarField, f: ScalarField },
    /// `−∇·σ(u) = f` with `σ = λ tr(ε) I + 2µε`.
    Elasticity { lame: LameField, body: VectorField },
}

/// A complete problem definition.
#[derive(Clone)]
pub struct Problem {
    pub pde: Pde,
    /// Lagrange element order.
    pub order: usize,
    /// Where essential (Dirichlet) conditions are imposed. The predicate
    /// receives dof coordinates; it should select a subset of the mesh
    /// boundary.
    pub dirichlet: BoundaryPredicate,
}

impl Problem {
    /// Heterogeneous diffusion with homogeneous Dirichlet conditions on the
    /// whole boundary of the unit box (the paper's weak-scaling problem).
    pub fn diffusion(order: usize, kappa: ScalarField, f: ScalarField) -> Self {
        Problem {
            pde: Pde::Diffusion { kappa, f },
            order,
            dirichlet: Arc::new(|x: &[f64]| {
                x.iter().any(|&c| c < 1e-12) || x.iter().any(|&c| c > 1.0 - 1e-12)
            }),
        }
    }

    /// Heterogeneous elasticity clamped on the `x = 0` face with a vertical
    /// body load (the paper's cantilever-style strong-scaling problem).
    pub fn elasticity(order: usize, lame: LameField, body: VectorField) -> Self {
        Problem {
            pde: Pde::Elasticity { lame, body },
            order,
            dirichlet: Arc::new(|x: &[f64]| x[0] < 1e-12),
        }
    }

    /// Unknowns per mesh node (1 scalar, `dim` for elasticity).
    pub fn components(&self, dim: usize) -> usize {
        match self.pde {
            Pde::Diffusion { .. } => 1,
            Pde::Elasticity { .. } => dim,
        }
    }

    /// Assemble the (Neumann/unconstrained) operator and load vector on a
    /// mesh. Returns the matrix on *vector* dofs (scalar dofs × components).
    pub fn assemble(&self, mesh: &Mesh, dm: &DofMap) -> (CsrMatrix, Vec<f64>) {
        match &self.pde {
            Pde::Diffusion { kappa, f } => assembly::assemble_diffusion(mesh, dm, &**kappa, &**f),
            Pde::Elasticity { lame, body } => {
                assembly::assemble_elasticity(mesh, dm, &**lame, &**body)
            }
        }
    }

    /// Vector-dof Dirichlet flags: all components of a scalar dof whose
    /// coordinates satisfy the predicate are constrained.
    pub fn dirichlet_flags(&self, mesh: &Mesh, dm: &DofMap) -> Vec<bool> {
        let dim = mesh.dim();
        let c = self.components(dim);
        let scalar = dm.dofs_where(|x| (self.dirichlet)(x));
        let mut flags = vec![false; dm.n_dofs() * c];
        // Only constrain dofs that are also on the mesh boundary, so the
        // predicate cannot accidentally pin interior dofs.
        let bnd = dm.boundary_dofs(mesh);
        for i in 0..dm.n_dofs() {
            if scalar[i] && bnd[i] {
                for k in 0..c {
                    flags[i * c + k] = true;
                }
            }
        }
        flags
    }
}

/// Ready-made paper problems (coefficients from `dd_fem::coeffs`).
pub mod presets {
    use super::*;
    use dd_fem::coeffs;

    /// Weak-scaling diffusion: κ with channels and inclusions ∈ [1, 3·10⁶],
    /// unit source, order `order` (paper: 4 in 2D, 2 in 3D).
    pub fn heterogeneous_diffusion(order: usize) -> Problem {
        Problem::diffusion(
            order,
            Arc::new(|x: &[f64]| coeffs::diffusivity_channels(x)),
            Arc::new(|_: &[f64]| 1.0),
        )
    }

    /// Homogeneous diffusion (baseline for tests).
    pub fn uniform_diffusion(order: usize) -> Problem {
        Problem::diffusion(order, Arc::new(|_: &[f64]| 1.0), Arc::new(|_: &[f64]| 1.0))
    }

    /// Strong-scaling elasticity: two-material stripes
    /// (E, ν) ∈ {(2·10¹¹, 0.25), (10⁷, 0.45)}, gravity body force,
    /// clamped at `x = 0` (paper: P3 in 2D, P2 in 3D).
    pub fn heterogeneous_elasticity(order: usize, dim: usize) -> Problem {
        let g = -9.81 * 7800.0; // gravity × density scale
        Problem::elasticity(
            order,
            Arc::new(|x: &[f64]| coeffs::elasticity_two_materials(x)),
            Arc::new(move |_: &[f64], f: &mut [f64]| {
                for v in f.iter_mut() {
                    *v = 0.0;
                }
                f[dim - 1] = g;
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_by_problem() {
        let d = presets::uniform_diffusion(2);
        assert_eq!(d.components(2), 1);
        assert_eq!(d.components(3), 1);
        let e = presets::heterogeneous_elasticity(1, 2);
        assert_eq!(e.components(2), 2);
    }

    #[test]
    fn diffusion_assembles_and_constrains() {
        let mesh = Mesh::unit_square(4, 4);
        let p = presets::uniform_diffusion(1);
        let dm = DofMap::new(&mesh, 1);
        let (a, rhs) = p.assemble(&mesh, &dm);
        assert_eq!(a.rows(), dm.n_dofs());
        assert_eq!(rhs.len(), dm.n_dofs());
        let flags = p.dirichlet_flags(&mesh, &dm);
        assert_eq!(flags.iter().filter(|&&f| f).count(), 16); // boundary of 5×5 grid
    }

    #[test]
    fn elasticity_clamps_only_left_face() {
        let mesh = Mesh::rectangle(4, 2, 2.0, 1.0);
        let p = presets::heterogeneous_elasticity(1, 2);
        let dm = DofMap::new(&mesh, 1);
        let flags = p.dirichlet_flags(&mesh, &dm);
        let n_clamped = flags.iter().filter(|&&f| f).count();
        assert_eq!(n_clamped, 3 * 2); // 3 vertices on x=0, 2 components each
    }
}
