//! Typed errors and per-rank outcome reporting for the SPMD driver.
//!
//! [`crate::spmd::try_run_spmd`] returns [`SpmdError`] instead of
//! panicking, and every [`crate::spmd::SpmdReport`] carries a [`RunReport`]
//! recording which phases ran as planned and which fell back along the
//! degradation lattice GenEO → Nicolaides → one-level RAS.

use dd_comm::{CommError, FaultStats};
use dd_krylov::SolveStatus;
use dd_solver::LdltError;
use std::fmt;

/// Structured failure of one rank of an SPMD run.
#[derive(Clone, Debug, PartialEq)]
pub enum SpmdError {
    /// A communication operation failed (deadlock, timeout, dead rank).
    Comm(CommError),
    /// The local Dirichlet factorization failed — unrecoverable for this
    /// rank: without `A_i⁻¹` there is no RAS contribution at all.
    LocalFactorization { rank: usize, source: LdltError },
    /// The rank was killed by a fault plan at the named phase boundary.
    Killed { rank: usize, phase: String },
    /// The rank was evicted by its peers' suspicion policy (straggler
    /// removal) — distinguishable from [`SpmdError::Killed`]: the rank was
    /// alive and computing, but too far behind the world's progress
    /// watermark to keep.
    Evicted { rank: usize },
    /// A solver-level integrity guard classified the run as silently
    /// corrupted: the residual the Krylov recurrence carried and a
    /// recomputation of the true residual disagreed beyond the guard's
    /// drift bound ([`dd_krylov::SdcGuard`]). The world is healthy but the
    /// solve state is poisoned — the remedy is a rollback to the newest
    /// verified checkpoint and a replay on the *same* membership (no
    /// shrink), bounded by [`crate::RecoveryOpts::max_replays`].
    SuspectedCorruption {
        rank: usize,
        /// Krylov iteration (cumulative) at which the drift was detected.
        iteration: usize,
        /// Relative residual the solver's recurrence claimed.
        recurred: f64,
        /// Relative residual recomputed from `b − Ax`.
        recomputed: f64,
    },
    /// `Comm::split` did not return a communicator for this rank's color.
    SplitFailed { rank: usize },
    /// Building or factoring a coarse operator failed (singular `E`, e.g.
    /// linearly dependent deflation columns). In the SPMD driver this is
    /// recovered by the one-level fallback; the sequential builders surface
    /// it through their `try_build` constructors.
    CoarseFactorization { what: String },
    /// An internal collective-protocol invariant was violated (e.g. a
    /// gather root received no result). Indicates a bug, not a fault.
    Protocol { rank: usize, what: String },
}

impl From<CommError> for SpmdError {
    fn from(e: CommError) -> Self {
        SpmdError::Comm(e)
    }
}

impl fmt::Display for SpmdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpmdError::Comm(e) => write!(f, "communication failure: {e}"),
            SpmdError::LocalFactorization { rank, source } => {
                write!(f, "local factorization failed on rank {rank}: {source}")
            }
            SpmdError::Killed { rank, phase } => {
                write!(f, "rank {rank} killed at failpoint \"{phase}\"")
            }
            SpmdError::Evicted { rank } => {
                write!(f, "rank {rank} evicted as a suspected straggler")
            }
            SpmdError::SuspectedCorruption {
                rank,
                iteration,
                recurred,
                recomputed,
            } => write!(
                f,
                "suspected silent data corruption on rank {rank}: recurred residual \
                 {recurred:.3e} vs recomputed {recomputed:.3e} at iteration {iteration}"
            ),
            SpmdError::SplitFailed { rank } => {
                write!(f, "communicator split failed on rank {rank}")
            }
            SpmdError::CoarseFactorization { what } => {
                write!(f, "coarse operator factorization failed: {what}")
            }
            SpmdError::Protocol { rank, what } => {
                write!(f, "protocol invariant violated on rank {rank}: {what}")
            }
        }
    }
}

impl std::error::Error for SpmdError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpmdError::Comm(e) => Some(e),
            SpmdError::LocalFactorization { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Outcome of one setup phase on one rank.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PhaseOutcome {
    /// The phase completed as planned.
    Ok,
    /// The phase failed but a documented fallback took over.
    Degraded { reason: String },
}

/// Where this rank's deflation vectors came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DeflationSource {
    /// The GenEO eigensolve succeeded (the paper's method).
    #[default]
    Geneo,
    /// The eigensolve failed; the partition-of-unity-weighted kernel modes
    /// (Nicolaides) were substituted for this subdomain.
    NicolaidesFallback,
    /// No deflation vectors (one-level run, or no overlap).
    None,
}

/// How the coarse level ended up.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CoarseOutcome {
    /// The coarse operator was assembled and factored: full A-DEF1.
    #[default]
    TwoLevel,
    /// The caller asked for the one-level baseline (`one_level_only`).
    OneLevelRequested,
    /// The coarse factorization failed on a master; every rank dropped to
    /// the one-level RAS preconditioner and kept iterating.
    OneLevelFallback,
    /// The coarse space is empty (`dim E = 0`, e.g. a single subdomain);
    /// one-level RAS is used.
    EmptyCoarse,
}

/// One membership change survived by a rank — a shrink (deaths and/or
/// evictions removed), a grow (joiners admitted), or both at once — with
/// the repartitioning it caused and the virtual-time cost of each recovery
/// phase.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveryRecord {
    /// Revocation epoch of the communicator this recovery committed
    /// (strictly increasing across recoveries).
    pub epoch: usize,
    /// World ranks dead at the time of the agreement, ascending.
    pub dead: Vec<usize>,
    /// World ranks *evicted* by the suspicion policy (stragglers removed
    /// alive), ascending — disjoint from `dead`.
    pub evicted: Vec<usize>,
    /// World ranks admitted through [`dd_comm::Communicator::try_grow`],
    /// ascending (every joiner of the world up to this epoch).
    pub joined: Vec<usize>,
    /// `(orphaned subdomain, adopting world rank)` for every subdomain
    /// re-homed by this recovery, ascending by subdomain.
    pub adopted: Vec<(usize, usize)>,
    /// Subdomains whose coarse rows were recomputed by their (possibly
    /// new) owner this epoch; the complement of `reused`.
    pub moved: Vec<usize>,
    /// Subdomains whose coarse basis and rows were reused from the coarse
    /// cache — the incremental re-assembly at work.
    pub reused: Vec<usize>,
    /// Iteration the Krylov solve resumed from, when a globally complete
    /// checkpoint existed (`None`: the solve restarted from zero).
    pub resume_iteration: Option<usize>,
    /// Virtual-time cost of the membership agreement (shrink/grow commit).
    pub t_agreement: f64,
    /// Virtual-time cost of re-assembling the coarse operator `E`
    /// (adoption, deflation, and row exchange; refactorization excluded).
    pub t_reassembly: f64,
    /// Virtual-time cost of refactorizing `E` on the new master set.
    pub t_refactorization: f64,
    /// Corruption detections this rank had observed when the record was
    /// written: comm-layer envelope checksum failures
    /// ([`dd_comm::FaultStats::corruptions_detected`]) plus solver-guard
    /// drift trips. Zero on pure membership-change records unless the run
    /// also saw corruption.
    pub corruptions_detected: u64,
    /// Rollback-and-replay ordinal at this membership: 0 for
    /// membership-change records, `k ≥ 1` for the k-th replay after a
    /// detected (or suspected) corruption.
    pub replays: usize,
    /// Virtual-time cost of the attempt this replay rolled back — the
    /// work the corruption destroyed (0 on membership-change records).
    pub t_replay: f64,
}

/// Per-rank record of what actually happened during a run — which phases
/// degraded, which fallbacks fired, how the Krylov solve ended, and what
/// faults the runtime observed.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// `(phase name, outcome)` in execution order.
    pub phases: Vec<(&'static str, PhaseOutcome)>,
    pub deflation: DeflationSource,
    pub coarse: CoarseOutcome,
    pub solve_status: SolveStatus,
    /// Breakdown-recovery restarts the Krylov solver took.
    pub breakdown_restarts: usize,
    /// Fault-injection counters observed by this rank.
    pub faults: FaultStats,
    /// Shrink-and-continue recoveries this rank survived, in order.
    pub recoveries: Vec<RecoveryRecord>,
}

impl RunReport {
    /// Did every phase complete without a fallback?
    pub fn fully_nominal(&self) -> bool {
        self.phases
            .iter()
            .all(|(_, o)| matches!(o, PhaseOutcome::Ok))
            && self.breakdown_restarts == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_chain() {
        let e = SpmdError::LocalFactorization {
            rank: 3,
            source: LdltError::ZeroPivot {
                step: 7,
                pivot: 0.0,
            },
        };
        let s = format!("{e}");
        assert!(s.contains("rank 3") && s.contains("step 7"), "{s}");
        assert!(std::error::Error::source(&e).is_some());
        let c: SpmdError = CommError::RankDead { rank: 1 }.into();
        assert_eq!(c, SpmdError::Comm(CommError::RankDead { rank: 1 }));
    }

    #[test]
    fn suspected_corruption_display_names_both_residuals() {
        let e = SpmdError::SuspectedCorruption {
            rank: 2,
            iteration: 17,
            recurred: 1e-9,
            recomputed: 3e-4,
        };
        let s = format!("{e}");
        assert!(
            s.contains("rank 2") && s.contains("iteration 17") && s.contains("3.000e-4"),
            "{s}"
        );
    }

    #[test]
    fn nominal_report_detection() {
        let mut r = RunReport::default();
        r.phases.push(("factorization", PhaseOutcome::Ok));
        assert!(r.fully_nominal());
        r.phases.push((
            "deflation",
            PhaseOutcome::Degraded {
                reason: "eigensolve failed".into(),
            },
        ));
        assert!(!r.fully_nominal());
    }
}
