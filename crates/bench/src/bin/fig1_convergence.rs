//! Figure 1: convergence of GMRES preconditioned by a "basic" (one-level
//! RAS) vs an "advanced" (two-level A-DEF1 with GenEO) domain decomposition
//! method on 16 subdomains of a highly heterogeneous diffusion problem.
//!
//! Expected shape (paper): the basic method crawls/stalls, the advanced
//! method converges in a few tens of iterations regardless of the
//! 3·10⁶ coefficient contrast.

use dd_core::{decompose, problem::presets, two_level, GeneoOpts, RasPrecond, TwoLevelOpts};
use dd_krylov::{gmres, GmresOpts, SeqDot};
use dd_mesh::Mesh;
use dd_part::partition_mesh_rcb;
use dd_solver::Ordering;

fn main() {
    let mesh = Mesh::unit_square(96, 96);
    let n_sub = 16;
    let part = partition_mesh_rcb(&mesh, n_sub);
    let problem = presets::heterogeneous_diffusion(1);
    let decomp = decompose(&mesh, &problem, &part, n_sub, 1);
    println!(
        "# Figure 1 reproduction: {} dofs, {} subdomains, κ ∈ [1, 3e6]",
        decomp.n_global, n_sub
    );

    // The paper stops GMRES at a relative 1e-6 residual decrease.
    let opts = GmresOpts {
        tol: 1e-6,
        max_iters: 130,
        ..Default::default()
    };
    let x0 = vec![0.0; decomp.n_global];

    let ras = RasPrecond::build(&decomp, Ordering::MinDegree);
    let basic = gmres(
        &decomp.a_global,
        &ras,
        &SeqDot,
        &decomp.rhs_global,
        &x0,
        &opts,
    );

    let tl = two_level(
        &decomp,
        &TwoLevelOpts {
            geneo: GeneoOpts {
                nev: 12,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let advanced = gmres(
        &decomp.a_global,
        &tl,
        &SeqDot,
        &decomp.rhs_global,
        &x0,
        &opts,
    );

    println!("# iteration  basic(RAS)  advanced(A-DEF1)");
    let len = basic.history.len().max(advanced.history.len());
    for k in 0..len {
        println!(
            "{:4}  {}  {}",
            k,
            basic
                .history
                .get(k)
                .map_or("         ".into(), |v| format!("{v:9.3e}")),
            advanced
                .history
                .get(k)
                .map_or("         ".into(), |v| format!("{v:9.3e}")),
        );
    }
    println!(
        "# basic: {} iterations (converged = {}); advanced: {} iterations (converged = {})",
        basic.iterations, basic.converged, advanced.iterations, advanced.converged
    );
    assert!(advanced.converged, "the advanced method must converge");
    assert!(
        advanced.iterations * 2 <= basic.iterations || !basic.converged,
        "shape check failed: advanced ({}) not clearly ahead of basic ({})",
        advanced.iterations,
        basic.iterations
    );
    println!("# SHAPE OK: advanced ≪ basic");
}
