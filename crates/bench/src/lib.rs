//! # dd-bench
//!
//! Benchmark harness reproducing every table and figure of the paper's
//! evaluation (§3.4–§3.5). Each `fig*` binary regenerates one artifact;
//! `cargo bench -p dd-bench` runs the std-only micro-benchmarks of the
//! individual kernels (see `benches/micro.rs`).
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig1_convergence` | Fig. 1 — basic vs advanced preconditioning |
//! | `fig3_sparsity` | Figs. 3–4 — Z and E sparsity patterns |
//! | `fig5_masters` | Fig. 5 — master elections and load balance |
//! | `fig7_elasticity_convergence` | Fig. 7 — GMRES(40), RAS vs A-DEF1 |
//! | `fig8_strong_scaling` | Fig. 8 — strong scaling tables (2D & 3D elasticity) |
//! | `fig10_weak_scaling` | Fig. 10 — weak scaling tables (2D & 3D diffusion) |
//! | `fig11_coarse_operator` | Fig. 11 — coarse operator assembly statistics |
//! | `fig12_pipelined` | §3.5 — classical vs pipelined vs fused GMRES |
//! | `ablation_overlap` | overlap width δ sweep |
//! | `ablation_nu` | deflation count ν sweep |
//! | `ablation_assembly` | index-free vs natural gatherv assembly |
//! | `ablation_coarse_space` | GenEO vs Nicolaides coarse spaces |
//! | `ablation_adef` | A-DEF1 vs A-DEF2 coarse-solve cost |
//! | `ablation_ritz` | §4 outlook — a-posteriori Ritz deflation |
//! | `ablation_eigensolver` | Lanczos vs subspace iteration on GenEO pencils |
//! | `ablation_network` | α–β network sensitivity of the phases |
//!
//! Absolute times are *virtual* (see `dd-comm`): the paper ran on 16384
//! Curie cores; this harness models the same communication patterns with an
//! α–β network model and per-rank thread-CPU compute time. Shapes (who
//! wins, where crossovers fall) are the reproduction target, not absolute
//! seconds.

pub mod alloc_count;
pub mod summary;

use dd_comm::{World, WorldTrace};
use dd_core::{
    decompose, problem::presets, run_spmd, Decomposition, Problem, SpmdOpts, SpmdReport,
};
use dd_mesh::{refine::uniform_refine_n, Mesh};
use dd_part::partition_mesh_rcb;
use std::sync::Arc;

pub use summary::{compare, markdown_table, Summary, Tolerances};

/// A named, decomposed problem instance.
pub struct Workload {
    pub name: String,
    pub decomp: Arc<Decomposition>,
    pub nparts: usize,
}

/// Build a 2D heterogeneous-diffusion workload (the paper's weak-scaling
/// problem; paper order: P4 in 2D).
pub fn diffusion_2d(
    cells: usize,
    refines: usize,
    order: usize,
    nparts: usize,
    delta: usize,
) -> Workload {
    let mesh = uniform_refine_n(&Mesh::unit_square(cells, cells), refines);
    let part = partition_mesh_rcb(&mesh, nparts);
    let problem = presets::heterogeneous_diffusion(order);
    build(
        mesh,
        problem,
        part,
        nparts,
        delta,
        format!("2D-P{order} diffusion"),
    )
}

/// 3D heterogeneous diffusion (paper order: P2 in 3D).
pub fn diffusion_3d(cells: usize, order: usize, nparts: usize, delta: usize) -> Workload {
    let mesh = Mesh::unit_cube(cells, cells, cells);
    let part = partition_mesh_rcb(&mesh, nparts);
    let problem = presets::heterogeneous_diffusion(order);
    build(
        mesh,
        problem,
        part,
        nparts,
        delta,
        format!("3D-P{order} diffusion"),
    )
}

/// 2D heterogeneous elasticity on a cantilever (paper: P3 in 2D).
pub fn elasticity_2d(
    cells_x: usize,
    cells_y: usize,
    order: usize,
    nparts: usize,
    delta: usize,
) -> Workload {
    let mesh = Mesh::rectangle(cells_x, cells_y, 5.0, 1.0);
    let part = partition_mesh_rcb(&mesh, nparts);
    let problem = presets::heterogeneous_elasticity(order, 2);
    build(
        mesh,
        problem,
        part,
        nparts,
        delta,
        format!("2D-P{order} elasticity"),
    )
}

/// 3D heterogeneous elasticity on a bar (paper: tripod, P2).
pub fn elasticity_3d(cells: usize, order: usize, nparts: usize, delta: usize) -> Workload {
    let mesh = Mesh::box3d(2 * cells, cells, cells, 2.0, 1.0, 1.0);
    let part = partition_mesh_rcb(&mesh, nparts);
    let problem = presets::heterogeneous_elasticity(order, 3);
    build(
        mesh,
        problem,
        part,
        nparts,
        delta,
        format!("3D-P{order} elasticity"),
    )
}

fn build(
    mesh: Mesh,
    problem: Problem,
    part: Vec<u32>,
    nparts: usize,
    delta: usize,
    name: String,
) -> Workload {
    let decomp = Arc::new(decompose(&mesh, &problem, &part, nparts, delta));
    Workload {
        name,
        decomp,
        nparts,
    }
}

/// One row of the Figure 8 / Figure 10 scaling tables, aggregated over
/// ranks (max virtual time per phase = modeled parallel time).
#[derive(Clone, Debug)]
pub struct ScalingRow {
    pub n: usize,
    pub factorization: f64,
    pub deflation: f64,
    pub solution: f64,
    pub coarse: f64,
    pub iterations: usize,
    pub total: f64,
    pub dofs: usize,
    pub dim_e: usize,
    pub nnz_e_factor: usize,
    pub avg_neighbors: f64,
    pub converged: bool,
}

/// Aggregate per-rank reports into a table row.
pub fn aggregate(reports: &[SpmdReport], dofs: usize) -> ScalingRow {
    let fmax = |f: fn(&SpmdReport) -> f64| reports.iter().map(f).fold(0.0f64, f64::max);
    ScalingRow {
        n: reports.len(),
        factorization: fmax(|r| r.t_factorization),
        deflation: fmax(|r| r.t_deflation),
        solution: fmax(|r| r.t_solution),
        coarse: fmax(|r| r.t_coarse),
        iterations: reports[0].iterations,
        total: fmax(|r| r.t_total),
        dofs,
        dim_e: reports[0].dim_e,
        nnz_e_factor: reports.iter().map(|r| r.nnz_e_factor).max().unwrap_or(0),
        avg_neighbors: reports.iter().map(|r| r.n_neighbors as f64).sum::<f64>()
            / reports.len() as f64,
        converged: reports.iter().all(|r| r.converged),
    }
}

/// Print a Figure 8/10 style table.
pub fn print_scaling_table(title: &str, rows: &[ScalingRow]) {
    println!("\n== {title} ==");
    println!(
        "{:>5} {:>14} {:>11} {:>10} {:>5} {:>10} {:>12}",
        "N", "Factorization", "Deflation", "Solution", "#it.", "Total", "#d.o.f."
    );
    for r in rows {
        println!(
            "{:>5} {:>13.2}s {:>10.2}s {:>9.2}s {:>5} {:>9.2}s {:>12} {}",
            r.n,
            r.factorization,
            r.deflation,
            r.solution,
            r.iterations,
            r.total,
            r.dofs,
            if r.converged { "" } else { "(NOT CONVERGED)" },
        );
    }
}

/// Print a Figure 11 style coarse-operator table.
pub fn print_coarse_table(title: &str, rows: &[(ScalingRow, usize)]) {
    println!("\n== {title} ==");
    println!(
        "{:>5} {:>3} {:>8} {:>14} {:>12} {:>10}",
        "N", "P", "dim(E)", "|O_i| (avg)", "nnz(E⁻¹)", "Time"
    );
    for (r, p) in rows {
        println!(
            "{:>5} {:>3} {:>8} {:>14.1} {:>12} {:>9.3}s",
            r.n, p, r.dim_e, r.avg_neighbors, r.nnz_e_factor, r.coarse
        );
    }
}

/// Pick a master count like the paper's Figure 11 (a few masters, growing
/// slowly with N).
pub fn masters_for(n: usize) -> usize {
    (n / 8).clamp(1, 16).max(if n >= 4 { 2 } else { 1 })
}

/// Run a workload through the SPMD driver (one thread per subdomain) and
/// return the per-rank reports.
pub fn run_workload(w: &Workload, opts: &SpmdOpts) -> Vec<SpmdReport> {
    run_workload_with_model(w, opts, dd_comm::CostModel::default())
}

/// [`run_workload`] with an explicit network cost model (used by the
/// network-sensitivity ablation).
pub fn run_workload_with_model(
    w: &Workload,
    opts: &SpmdOpts,
    model: dd_comm::CostModel,
) -> Vec<SpmdReport> {
    let decomp = Arc::clone(&w.decomp);
    let opts = opts.clone();
    World::run(w.nparts, model, move |comm| {
        run_spmd(&decomp, comm, &opts).report
    })
}

/// [`run_workload`] with telemetry: returns the per-rank reports plus the
/// merged deterministic [`WorldTrace`] (see `dd_comm::trace`).
pub fn run_workload_traced(w: &Workload, opts: &SpmdOpts) -> (Vec<SpmdReport>, WorldTrace) {
    let decomp = Arc::clone(&w.decomp);
    let opts = opts.clone();
    World::run_traced(w.nparts, dd_comm::CostModel::default(), move |comm| {
        run_spmd(&decomp, comm, &opts).report
    })
}

/// Print the per-phase communication telemetry of a traced run: message
/// and byte counts summed over ranks, split by point-to-point vs
/// collective and by collective class (§3.2).
pub fn print_telemetry_table(title: &str, trace: &WorldTrace) {
    println!("\n== {title} (telemetry, N = {}) ==", trace.n_ranks());
    println!(
        "{:>18} {:>9} {:>12} {:>9} {:>9} {:>12} {:>14}",
        "Phase", "P2P msgs", "P2P bytes", "Coll(eq)", "Coll(v)", "Coll bytes", "Flops"
    );
    for name in trace.phase_names() {
        let c = trace.phase_totals(&name);
        println!(
            "{:>18} {:>9} {:>12} {:>9} {:>9} {:>12} {:>14}",
            name,
            c.sends,
            c.send_bytes,
            c.collectives_eq,
            c.collectives_v,
            c.collective_bytes,
            c.flops,
        );
    }
}

/// Root of the bench output tree: `$DD_BENCH_OUT` when set, else
/// `bench_results` relative to the current directory. The env var lets CI
/// (and anyone invoking the benches from outside the workspace root)
/// redirect the output instead of scattering files under the CWD.
pub fn bench_out_dir() -> std::path::PathBuf {
    match std::env::var_os("DD_BENCH_OUT") {
        Some(dir) if !dir.is_empty() => std::path::PathBuf::from(dir),
        _ => std::path::PathBuf::from("bench_results"),
    }
}

/// Write the full telemetry JSON of a traced run to
/// `<out>/telemetry/<stem>.json` (created as needed; see
/// [`bench_out_dir`]), returning the path. Full JSON includes virtual
/// times; use [`WorldTrace::canonical_json`] for the deterministic subset.
pub fn write_telemetry(stem: &str, trace: &WorldTrace) -> std::io::Result<std::path::PathBuf> {
    let dir = bench_out_dir().join("telemetry");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{stem}.json"));
    std::fs::write(&path, trace.to_json())?;
    Ok(path)
}

/// Write a compact metric summary to `<out>/summaries/<stem>.json` (see
/// [`bench_out_dir`]), returning the path. These are the files the perf
/// gate diffs against the committed baselines in `bench_results/baselines`.
pub fn write_summary(stem: &str, summary: &Summary) -> std::io::Result<std::path::PathBuf> {
    let dir = bench_out_dir().join("summaries");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{stem}.json"));
    std::fs::write(&path, summary.to_json())?;
    Ok(path)
}

/// Minimal ASCII line chart for the bench binaries' "figure" outputs: one
/// row per series point, bar length proportional to the value.
pub fn ascii_chart(title: &str, series: &[(&str, Vec<(usize, f64)>)], unit: &str) {
    println!("\n-- {title} --");
    let max = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().map(|&(_, v)| v))
        .fold(0.0f64, f64::max)
        .max(1e-300);
    for (name, pts) in series {
        println!("{name}:");
        for &(x, v) in pts {
            let w = ((v / max) * 50.0).round() as usize;
            println!("  {x:>6} | {} {v:.2} {unit}", "#".repeat(w));
        }
    }
}
