//! # dd-linalg
//!
//! Dense and sparse linear algebra kernels for the domain decomposition
//! workspace — the from-scratch replacement for the dense/sparse BLAS the
//! paper obtains from Intel MKL.
//!
//! * [`vector`] — level-1 kernels (`dot`, `axpy`, norms, diagonal scaling).
//! * [`dense`] — column-major [`dense::DMat`] with `gemm`/`gemv`, dense
//!   Cholesky, LDLᵀ, LU, and Householder QR.
//! * [`sparse`] — [`sparse::CsrMatrix`] with `spmv`, `csrmm`, Gustavson
//!   `spmm`, principal submatrices (the `R_i A R_iᵀ` extraction of §2),
//!   and symmetric permutations.
//! * [`bsr`] — [`bsr::BsrMatrix`] block sparse row storage for the dense
//!   `dim × dim` node blocks of vector-valued (elasticity) operators.
//! * [`smallgemm`] — register-blocked dense micro-kernels backing the
//!   supernodal LDLᵀ trailing updates in `dd-solver`.
//! * [`givens`] — Givens rotations for incremental Hessenberg QR in GMRES.
//! * [`jacobi`] — dense (generalized) symmetric eigensolvers used as exact
//!   references for the iterative eigensolver in `dd-eigen`.

// Triangular solves, factorizations and stencil loops read most
// naturally with explicit indices; iterator rewrites obscure the math.
#![allow(clippy::needless_range_loop)]

pub mod bsr;
pub mod dense;
pub mod givens;
pub mod jacobi;
pub mod matrix_market;
pub mod smallgemm;
pub mod sparse;
pub mod vector;

pub use bsr::{BsrAbft, BsrMatrix};
pub use dense::{DMat, DenseCholesky, DenseLdlt, DenseLu, DenseQr, FactorError};
pub use givens::Givens;
pub use matrix_market::{read_matrix_market, write_matrix_market, MmError};
pub use sparse::{CooBuilder, CsrMatrix};
