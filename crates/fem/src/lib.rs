//! # dd-fem
//!
//! Lagrange finite elements on simplicial meshes — the workspace's
//! replacement for the FreeFem++ discretizations of the paper. Supports
//! P1–P4 triangles and P1–P2 tetrahedra, matching the element orders of the
//! paper's experiments (2D elasticity: P3, 2D diffusion: P4, 3D: P2).
//!
//! * [`quadrature`] — Dunavant/Keast simplex rules up to the needed degree;
//! * [`basis`] — Lagrange shape functions of arbitrary order via a
//!   Vandermonde construction on the lattice nodes;
//! * [`dofmap`] — global degree-of-freedom numbering keyed by integer
//!   lattice coordinates (exact, orientation-independent);
//! * [`assembly`] — stiffness/mass/load assembly for heterogeneous
//!   diffusion and linear elasticity, with symmetric Dirichlet elimination;
//! * [`coeffs`] — the paper's heterogeneous coefficient fields (channels
//!   and inclusions κ ∈ [1, 3·10⁶]; two-material (E, ν) elasticity).

// Numerical kernels and assembly loops read most naturally with
// explicit indices; complex intermediate types are local plumbing.
#![allow(clippy::needless_range_loop, clippy::type_complexity)]

pub mod assembly;
pub mod basis;
pub mod coeffs;
pub mod dofmap;
pub mod quadrature;

pub use assembly::{
    apply_dirichlet, assemble_boundary_load, assemble_diffusion, assemble_elasticity, assemble_mass,
};
pub use basis::LagrangeBasis;
pub use dofmap::DofMap;
pub use quadrature::Quadrature;
