//! # dd-krylov
//!
//! Krylov solvers for the domain decomposition workspace: left-
//! preconditioned restarted GMRES(m) (the paper's solver of choice),
//! preconditioned CG, and the pipelined / fused p1-GMRES variants of §3.5
//! that trade standalone global reductions for communication piggy-backed
//! on the coarse correction.
//!
//! Solvers are generic over [`Operator`], [`Preconditioner`] and
//! [`InnerProduct`], so the same code runs sequentially (`SeqDot`) and in
//! the SPMD runtime (a partition-of-unity weighted dot + allreduce,
//! provided by `dd-core`).

pub mod cg;
pub mod checkpoint;
pub mod gmres;
pub mod operator;
pub mod pipelined;
pub mod recycle;
pub mod sdc;

pub use cg::{cg, try_cg, CgOpts};
pub use checkpoint::{CheckpointCfg, CheckpointSink, SolveCheckpoint};
pub use gmres::{
    gmres, try_gmres, try_gmres_with, GmresOpts, GmresWorkspace, Ortho, Side, SolveResult,
    SolveStatus,
};
pub use operator::{
    FnOperator, FnPrecond, IdentityPrecond, InnerProduct, Operator, Preconditioner, SeqDot,
    SolveInterrupt,
};
pub use pipelined::{fused_pipelined_gmres, pipelined_gmres, FusedPreconditioner};
pub use recycle::{try_gmres_multi, RecycleSpace};
pub use sdc::{SdcGuard, SdcSuspected};
