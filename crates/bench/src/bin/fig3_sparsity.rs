//! Figures 3–4: sparsity structure of the deflation matrix `Z` and the
//! coarse operator `E` for the paper's 4-subdomain toy chain
//! (`O_1 = {2}, O_2 = {1,3}, O_3 = {2,4}, O_4 = {3}`), plus the block
//! classification of Figure 4: blue blocks need only local computation,
//! red blocks need peer-to-peer transfers.

use dd_core::{decompose, problem::presets, two_level, GeneoOpts, TwoLevelOpts};
use dd_mesh::Mesh;
use dd_part::partition_rcb;

fn main() {
    // A long thin strip split along x gives the chain topology.
    let mesh = Mesh::rectangle(40, 2, 20.0, 1.0);
    let pts: Vec<f64> = (0..mesh.n_elements())
        .flat_map(|e| mesh.element_centroid(e))
        .collect();
    let part = partition_rcb(&pts, 2, 4);
    let problem = presets::uniform_diffusion(1);
    let decomp = decompose(&mesh, &problem, &part, 4, 1);

    println!("# Figures 3-4 reproduction: 4-subdomain chain");
    for (i, s) in decomp.subdomains.iter().enumerate() {
        let nbrs: Vec<usize> = s.neighbors.iter().map(|l| l.j + 1).collect();
        println!("O_{} = {:?}", i + 1, nbrs);
    }
    let chain_ok = decomp.subdomains[0].neighbors.len() == 1
        && decomp.subdomains[1].neighbors.len() == 2
        && decomp.subdomains[2].neighbors.len() == 2
        && decomp.subdomains[3].neighbors.len() == 1;
    assert!(chain_ok, "decomposition is not the paper's chain");

    // Z pattern: rows = global dofs, 4 column blocks; report per-block
    // support and the duplicated rows (overlap).
    println!("\n# Z structure (Figure 3): per-block row support");
    let mut multiplicity = vec![0usize; decomp.n_global];
    for s in &decomp.subdomains {
        for &g in &s.l2g {
            multiplicity[g as usize] += 1;
        }
    }
    for (i, s) in decomp.subdomains.iter().enumerate() {
        let dup = s
            .l2g
            .iter()
            .filter(|&&g| multiplicity[g as usize] > 1)
            .count();
        println!(
            "block {}: {} rows, {} shared with neighbors (grey overlap rows)",
            i + 1,
            s.n_local(),
            dup
        );
    }

    // E pattern with blue/red classification (Figure 4).
    let tl = two_level(
        &decomp,
        &TwoLevelOpts {
            geneo: GeneoOpts {
                nev: 2,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let e = &tl.coarse().e;
    let offs = &tl.coarse().space.offsets;
    println!("\n# E block pattern (Figure 4): B = local only, R = needs p2p, . = zero");
    let mut blue = 0;
    let mut red = 0;
    for i in 0..4 {
        let mut row = String::new();
        for j in 0..4 {
            let mut nz = false;
            for p in offs[i]..offs[i + 1] {
                for (c, v) in e.row(p) {
                    if c >= offs[j] && c < offs[j + 1] && v != 0.0 {
                        nz = true;
                    }
                }
            }
            row.push_str(if !nz {
                " . "
            } else if i == j {
                blue += 1;
                " B "
            } else {
                red += 1;
                " R "
            });
        }
        println!("  {row}");
    }
    println!("\n{blue} local (blue) blocks, {red} p2p (red) blocks");
    // Expected for the chain: 4 diagonal + 2×3 couplings.
    assert_eq!(blue, 4);
    assert_eq!(red, 6);
    println!("# SHAPE OK: matches the paper's toy pattern");
}
