//! Ablation: the eigensolver behind GenEO. The paper uses ARPACK
//! (shift-invert Arnoldi/Lanczos); the framework only needs *some* solver
//! for the smallest pencil eigenpairs. We compare our Lanczos (the ARPACK
//! stand-in) against inverse subspace iteration on the actual GenEO
//! pencils of a heterogeneous decomposition: same eigenvalues, different
//! cost profiles — Lanczos needs one `K⁻¹` application per step, subspace
//! iteration `m` per sweep.

use dd_core::geneo::overlap_weighted_matrix;
use dd_core::{decompose, problem::presets};
use dd_eigen::{smallest_generalized, smallest_generalized_si, LanczosOpts, SubspaceOpts};
use dd_mesh::Mesh;
use dd_part::partition_mesh_rcb;
use std::time::Instant;

fn main() {
    println!("# Ablation: GenEO eigensolver — Lanczos vs subspace iteration");
    let mesh = Mesh::unit_square(40, 40);
    let n_sub = 8;
    let part = partition_mesh_rcb(&mesh, n_sub);
    let problem = presets::heterogeneous_diffusion(1);
    let d = decompose(&mesh, &problem, &part, n_sub, 1);
    let nev = 6;

    println!(
        "{:>4} {:>8} {:>22} {:>22} {:>10}",
        "sub", "n_i", "Lanczos λ (steps, ms)", "SubspIt λ (steps, ms)", "max |Δλ|"
    );
    let mut worst: f64 = 0.0;
    for (i, s) in d.subdomains.iter().enumerate() {
        let b = overlap_weighted_matrix(s);
        let t0 = Instant::now();
        let lz = smallest_generalized(&s.a_neumann, &b, nev, &LanczosOpts::default()).unwrap();
        let t_lz = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        let si = smallest_generalized_si(&s.a_neumann, &b, nev, &SubspaceOpts::default()).unwrap();
        let t_si = t0.elapsed().as_secs_f64() * 1e3;
        let k = lz.values.len().min(si.values.len());
        let dmax = (0..k)
            .filter(|&j| lz.values[j].is_finite() && si.values[j].is_finite())
            .map(|j| (lz.values[j] - si.values[j]).abs() / lz.values[j].abs().max(1e-8))
            .fold(0.0f64, f64::max);
        worst = worst.max(dmax);
        println!(
            "{:>4} {:>8} {:>14.3e} ({:>3},{:>5.1}) {:>14.3e} ({:>3},{:>5.1}) {:>10.1e}",
            i,
            s.n_local(),
            lz.values[0],
            lz.steps,
            t_lz,
            si.values[0],
            si.steps,
            t_si,
            dmax
        );
    }
    assert!(
        worst < 1e-4,
        "eigensolvers disagree: max relative Δλ = {worst:.2e}"
    );
    println!("\n# SHAPE OK: independent eigensolvers agree on the GenEO spectra");
}
