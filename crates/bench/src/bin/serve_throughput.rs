//! Solve-as-a-service throughput: one resident setup amortized over a
//! 32-RHS stream vs. 32 fresh one-shot runs of `try_run_spmd` on the same
//! right-hand sides (the acceptance benchmark of the serving PR).
//!
//! The stream mixes single requests, multi-RHS batches, and admissible
//! perturbations (θ inside the default admissibility ball, so the server
//! answers them by preconditioner reuse, never a re-setup). Every quantity
//! compared is *virtual* time from the deterministic cost model, so the
//! table is machine-independent; the committed baseline
//! `bench_results/baselines/serve.json` additionally gates the
//! deterministic counters (solves, reuse, phase telemetry) exactly, while
//! the `time/*` scalars get a wide tolerance in `tolerances.json` because
//! virtual clocks fold in measured compute time.

use dd_bench::{diffusion_2d, print_telemetry_table, write_summary, write_telemetry, Summary};
use dd_comm::{CostModel, World};
use dd_core::{try_run_spmd, CoarseCache, GeneoOpts, SpmdOpts};
use dd_krylov::GmresOpts;
use dd_serve::{try_serve, Payload, ResponseStore, ServeOpts, StreamCfg, Workload as Stream};
use std::sync::Arc;

/// Total right-hand sides in the stream (the ISSUE's 32-RHS benchmark).
const N_RHS: usize = 32;

fn opts() -> ServeOpts {
    ServeOpts {
        spmd: SpmdOpts {
            geneo: GeneoOpts {
                nev: 8,
                ..Default::default()
            },
            gmres: GmresOpts {
                tol: 1e-10,
                max_iters: 500,
                ..Default::default()
            },
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Seeded stream trimmed to exactly [`N_RHS`] right-hand sides: singles,
/// batches, and admissible perturbations, arriving densely (the stream is
/// compute-bound, not arrival-bound, so throughput measures the solver).
fn stream_of(n_global: usize) -> Stream {
    let cfg = StreamCfg {
        n_requests: 2 * N_RHS,
        mean_interarrival: 1e-3,
        batch_fraction: 0.3,
        max_rhs_per_request: 3,
        perturb_fraction: 0.3,
        theta_max: 0.04, // inside the default 0.05 admissibility ball
    };
    let full = Stream::generate(9, n_global, &cfg);
    let mut requests = Vec::new();
    let mut total = 0usize;
    for mut r in full.requests {
        if total == N_RHS {
            break;
        }
        if let Payload::Batch(b) = &mut r.payload {
            b.truncate(N_RHS - total);
            if b.len() == 1 {
                r.payload = Payload::Rhs(b.remove(0));
            }
        }
        total += r.n_rhs();
        r.id = requests.len();
        requests.push(r);
    }
    assert_eq!(total, N_RHS, "stream trim must land exactly on {N_RHS}");
    Stream::from_requests(requests)
}

fn main() {
    println!("# serve: resident setup amortized over a {N_RHS}-RHS stream");
    let n = 8;
    let w = diffusion_2d(20, 0, 2, n, 1);
    println!(
        "workload: {} ({} dofs, {} ranks)",
        w.name, w.decomp.n_global, n
    );
    let stream = stream_of(w.decomp.n_global);
    println!(
        "stream: {} requests, {} RHS, {} distinct perturbations\n",
        stream.requests.len(),
        stream.n_rhs_total(),
        stream.thetas().len()
    );
    let o = opts();

    // ---- the resident server, traced --------------------------------
    let (reports, trace) = {
        let d = Arc::clone(&w.decomp);
        let o = o.clone();
        let s = stream.clone();
        let cache = Arc::new(CoarseCache::new());
        let store = Arc::new(ResponseStore::new());
        World::run_traced(n, CostModel::default(), move |comm| {
            try_serve(&d, comm, &o, &s, &cache, &store).expect("fault-free serve must succeed")
        })
    };
    let report = &reports[0];
    let t_serve = reports.iter().map(|r| r.t_total).fold(0.0f64, f64::max);
    assert_eq!(report.responses.len(), N_RHS, "stream not fully answered");
    assert!(report.responses.iter().all(|r| r.converged));

    println!(
        "{:>4} {:>4} {:>9} {:>10} {:>10} {:>10} {:>6} {:>7}",
        "req", "rhs", "theta", "arrival", "completed", "latency", "#it.", "reused"
    );
    for r in &report.responses {
        println!(
            "{:>4} {:>4} {:>9.4} {:>10.4} {:>10.4} {:>10.4} {:>6} {:>7}",
            r.req, r.rhs, r.theta, r.arrival, r.completed, r.latency, r.iterations, r.reused
        );
    }

    // ---- the comparison: a fresh setup per right-hand side ----------
    let mut t_oneshot = 0.0f64;
    for r in &report.responses {
        let req = &stream.requests[r.req];
        let base = if req.theta() == 0.0 {
            (*w.decomp).clone()
        } else {
            w.decomp.perturb_diag(req.theta())
        };
        let d = Arc::new(base.with_rhs(req.rhs(r.rhs).to_vec()));
        let d2 = Arc::clone(&d);
        let so = o.spmd.clone();
        let sols = World::run(n, CostModel::default(), move |comm| {
            try_run_spmd(&d2, comm, &so).expect("one-shot run must succeed")
        });
        assert!(sols.iter().all(|s| s.report.converged));
        t_oneshot += sols.iter().map(|s| s.report.t_total).fold(0.0f64, f64::max);
    }

    let speedup = t_oneshot / t_serve;
    let iterations: usize = report.responses.iter().map(|r| r.iterations).sum();
    let (p50, p99) = (
        report.latency_percentile(50.0),
        report.latency_percentile(99.0),
    );
    println!(
        "\n{:>28}: {:.4}s (setup {:.4}s)",
        "server stream", t_serve, report.t_setup
    );
    println!("{:>28}: {:.4}s", "32 one-shot runs", t_oneshot);
    println!("{:>28}: {:.2}x", "amortized-setup speedup", speedup);
    println!("{:>28}: {:.2} RHS/s", "throughput", report.throughput());
    println!("{:>28}: p50 {:.4}s, p99 {:.4}s", "latency", p50, p99);
    println!(
        "{:>28}: {} solves, {} reused applies, {} re-setups",
        "counters", report.solves, report.reused_applies, report.resetups
    );

    print_telemetry_table("serve", &trace);
    match write_telemetry("serve", &trace) {
        Ok(p) => println!("telemetry: {}", p.display()),
        Err(e) => eprintln!("telemetry write failed: {e}"),
    }
    let mut summary = Summary::from_trace("serve", &trace);
    summary.insert("responses", report.responses.len() as f64);
    summary.insert("solves", report.solves as f64);
    summary.insert("reused_applies", report.reused_applies as f64);
    summary.insert("resetups", report.resetups as f64);
    summary.insert("iterations", iterations as f64);
    summary.insert("time/t_setup", report.t_setup);
    summary.insert("time/t_stream", t_serve);
    summary.insert("time/oneshot_total", t_oneshot);
    summary.insert("time/speedup", speedup);
    summary.insert("time/latency_p50", p50);
    summary.insert("time/latency_p99", p99);
    summary.insert("time/throughput", report.throughput());
    match write_summary("serve", &summary) {
        Ok(p) => println!("summary: {}", p.display()),
        Err(e) => eprintln!("summary write failed: {e}"),
    }

    // Shape checks — the PR's acceptance criterion is the 2x line.
    assert_eq!(report.resetups, 0, "admissible stream must never re-setup");
    assert!(
        report.reused_applies > 0,
        "perturbed requests must be answered by reuse"
    );
    assert!(
        speedup >= 2.0,
        "amortized setup must beat repeated one-shot runs 2x: got {speedup:.2}x"
    );
    println!("\n# SHAPE OK: one resident setup, {N_RHS} answers, {speedup:.2}x over one-shot");
}
