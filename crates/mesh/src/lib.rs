//! # dd-mesh
//!
//! Simplicial meshes (triangles in 2D, tetrahedra in 3D) — the workspace's
//! replacement for the Gmsh-generated meshes of the paper. Meshes are
//! generated structurally on boxes, then refined uniformly; the paper uses
//! the same strategy ("each local mesh is refined concurrently by splitting
//! each triangle or tetrahedron into multiple smaller elements").
//!
//! * [`Mesh`] — vertices + elements with adjacency queries;
//! * [`Mesh::unit_square`] / [`Mesh::rectangle`] — 2D triangulations;
//! * [`Mesh::unit_cube`] / [`Mesh::box3d`] — 3D Kuhn tetrahedralizations;
//! * [`refine`] — red uniform refinement (tri → 4, tet → 8);
//! * [`Mesh::dual_graph`] — facet-adjacency graph for partitioning;
//! * [`Mesh::boundary_vertices`] — essential boundary condition support.

// Triangular solves, factorizations and stencil loops read most
// naturally with explicit indices; iterator rewrites obscure the math.
#![allow(clippy::needless_range_loop)]

pub mod refine;
pub mod vtk;

use std::collections::HashMap;

/// A conforming simplicial mesh in dimension 2 or 3.
///
/// Coordinates are stored interleaved (`dim` doubles per vertex), elements
/// as `dim + 1` vertex indices each.
#[derive(Clone, Debug)]
pub struct Mesh {
    dim: usize,
    coords: Vec<f64>,
    elems: Vec<u32>,
}

impl Mesh {
    /// Build from raw parts.
    ///
    /// # Panics
    /// Panics if the array lengths are inconsistent with `dim`.
    pub fn from_parts(dim: usize, coords: Vec<f64>, elems: Vec<u32>) -> Self {
        assert!(dim == 2 || dim == 3, "only 2D and 3D supported");
        assert_eq!(coords.len() % dim, 0);
        assert_eq!(elems.len() % (dim + 1), 0);
        let n = (coords.len() / dim) as u32;
        assert!(elems.iter().all(|&v| v < n), "element vertex out of range");
        Mesh { dim, coords, elems }
    }

    /// Spatial dimension (2 or 3).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Vertices per element (3 for triangles, 4 for tetrahedra).
    pub fn verts_per_elem(&self) -> usize {
        self.dim + 1
    }

    pub fn n_vertices(&self) -> usize {
        self.coords.len() / self.dim
    }

    pub fn n_elements(&self) -> usize {
        self.elems.len() / self.verts_per_elem()
    }

    /// Coordinates of vertex `v` (`dim` entries).
    #[inline]
    pub fn vertex(&self, v: usize) -> &[f64] {
        &self.coords[v * self.dim..(v + 1) * self.dim]
    }

    /// Vertex indices of element `e`.
    #[inline]
    pub fn element(&self, e: usize) -> &[u32] {
        let k = self.verts_per_elem();
        &self.elems[e * k..(e + 1) * k]
    }

    /// All element connectivity, flattened.
    pub fn elements_flat(&self) -> &[u32] {
        &self.elems
    }

    /// All coordinates, flattened.
    pub fn coords_flat(&self) -> &[f64] {
        &self.coords
    }

    /// Structured triangulation of `[0, lx] × [0, ly]` with `nx × ny` cells,
    /// each split into two triangles. Produces `2·nx·ny` elements and
    /// `(nx+1)(ny+1)` vertices.
    pub fn rectangle(nx: usize, ny: usize, lx: f64, ly: f64) -> Self {
        assert!(nx > 0 && ny > 0);
        let nvx = nx + 1;
        let mut coords = Vec::with_capacity((nx + 1) * (ny + 1) * 2);
        for j in 0..=ny {
            for i in 0..=nx {
                coords.push(lx * i as f64 / nx as f64);
                coords.push(ly * j as f64 / ny as f64);
            }
        }
        let id = |i: usize, j: usize| (i + j * nvx) as u32;
        let mut elems = Vec::with_capacity(nx * ny * 6);
        for j in 0..ny {
            for i in 0..nx {
                // Alternate diagonals for isotropy (union-jack style).
                if (i + j) % 2 == 0 {
                    elems.extend_from_slice(&[id(i, j), id(i + 1, j), id(i + 1, j + 1)]);
                    elems.extend_from_slice(&[id(i, j), id(i + 1, j + 1), id(i, j + 1)]);
                } else {
                    elems.extend_from_slice(&[id(i, j), id(i + 1, j), id(i, j + 1)]);
                    elems.extend_from_slice(&[id(i + 1, j), id(i + 1, j + 1), id(i, j + 1)]);
                }
            }
        }
        Mesh::from_parts(2, coords, elems)
    }

    /// Unit square `[0,1]²` triangulation.
    pub fn unit_square(nx: usize, ny: usize) -> Self {
        Self::rectangle(nx, ny, 1.0, 1.0)
    }

    /// Kuhn tetrahedralization of `[0,lx] × [0,ly] × [0,lz]` with
    /// `nx × ny × nz` cubes, each split into 6 tetrahedra.
    pub fn box3d(nx: usize, ny: usize, nz: usize, lx: f64, ly: f64, lz: f64) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0);
        let (nvx, nvy) = (nx + 1, ny + 1);
        let mut coords = Vec::with_capacity((nx + 1) * (ny + 1) * (nz + 1) * 3);
        for k in 0..=nz {
            for j in 0..=ny {
                for i in 0..=nx {
                    coords.push(lx * i as f64 / nx as f64);
                    coords.push(ly * j as f64 / ny as f64);
                    coords.push(lz * k as f64 / nz as f64);
                }
            }
        }
        let id = |i: usize, j: usize, k: usize| (i + j * nvx + k * nvx * nvy) as u32;
        // The 6 tetrahedra of the Kuhn subdivision of the unit cube, as
        // monotone corner paths 000 → 111. All pairs of neighboring cubes
        // make conforming faces because the subdivision is translation
        // invariant.
        const KUHN: [[usize; 4]; 6] = [
            [0b000, 0b001, 0b011, 0b111],
            [0b000, 0b001, 0b101, 0b111],
            [0b000, 0b010, 0b011, 0b111],
            [0b000, 0b010, 0b110, 0b111],
            [0b000, 0b100, 0b101, 0b111],
            [0b000, 0b100, 0b110, 0b111],
        ];
        let mut elems = Vec::with_capacity(nx * ny * nz * 24);
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    for tet in &KUHN {
                        for &corner in tet {
                            let di = corner & 1;
                            let dj = (corner >> 1) & 1;
                            let dk = (corner >> 2) & 1;
                            elems.push(id(i + di, j + dj, k + dk));
                        }
                    }
                }
            }
        }
        Mesh::from_parts(3, coords, elems)
    }

    /// Unit cube `[0,1]³` tetrahedralization.
    pub fn unit_cube(nx: usize, ny: usize, nz: usize) -> Self {
        Self::box3d(nx, ny, nz, 1.0, 1.0, 1.0)
    }

    /// Signed volume (area in 2D) of element `e`.
    pub fn element_volume(&self, e: usize) -> f64 {
        let el = self.element(e);
        match self.dim {
            2 => {
                let a = self.vertex(el[0] as usize);
                let b = self.vertex(el[1] as usize);
                let c = self.vertex(el[2] as usize);
                0.5 * ((b[0] - a[0]) * (c[1] - a[1]) - (c[0] - a[0]) * (b[1] - a[1]))
            }
            3 => {
                let a = self.vertex(el[0] as usize);
                let b = self.vertex(el[1] as usize);
                let c = self.vertex(el[2] as usize);
                let d = self.vertex(el[3] as usize);
                let u = [b[0] - a[0], b[1] - a[1], b[2] - a[2]];
                let v = [c[0] - a[0], c[1] - a[1], c[2] - a[2]];
                let w = [d[0] - a[0], d[1] - a[1], d[2] - a[2]];
                (u[0] * (v[1] * w[2] - v[2] * w[1]) - u[1] * (v[0] * w[2] - v[2] * w[0])
                    + u[2] * (v[0] * w[1] - v[1] * w[0]))
                    / 6.0
            }
            _ => unreachable!(),
        }
    }

    /// Barycenter of element `e`.
    pub fn element_centroid(&self, e: usize) -> Vec<f64> {
        let el = self.element(e);
        let mut c = vec![0.0; self.dim];
        for &v in el {
            for (ci, xi) in c.iter_mut().zip(self.vertex(v as usize)) {
                *ci += xi;
            }
        }
        for ci in &mut c {
            *ci /= el.len() as f64;
        }
        c
    }

    /// Total mesh volume.
    pub fn total_volume(&self) -> f64 {
        (0..self.n_elements())
            .map(|e| self.element_volume(e).abs())
            .sum()
    }

    /// The facets (edges in 2D, triangular faces in 3D) of element `e`,
    /// each returned as a sorted vertex tuple.
    fn element_facets(&self, e: usize) -> Vec<Vec<u32>> {
        let el = self.element(e);
        let k = self.verts_per_elem();
        (0..k)
            .map(|skip| {
                let mut f: Vec<u32> = el
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != skip)
                    .map(|(_, &v)| v)
                    .collect();
                f.sort_unstable();
                f
            })
            .collect()
    }

    /// Dual graph: for each element, the elements sharing a facet with it.
    /// This is the graph handed to the partitioner (the paper's METIS input).
    pub fn dual_graph(&self) -> Vec<Vec<u32>> {
        let ne = self.n_elements();
        let mut facet_map: HashMap<Vec<u32>, (u32, u32)> = HashMap::new();
        const NONE: u32 = u32::MAX;
        for e in 0..ne {
            for f in self.element_facets(e) {
                facet_map
                    .entry(f)
                    .and_modify(|p| p.1 = e as u32)
                    .or_insert((e as u32, NONE));
            }
        }
        let mut adj = vec![Vec::new(); ne];
        for (_, (a, b)) in facet_map {
            if b != NONE {
                adj[a as usize].push(b);
                adj[b as usize].push(a);
            }
        }
        for l in &mut adj {
            l.sort_unstable();
            l.dedup();
        }
        adj
    }

    /// Element adjacency through shared vertices (used for overlap growth:
    /// "T_i^δ is obtained by including all elements of T_i^{δ−1} plus all
    /// adjacent elements" — adjacency through any shared vertex gives the
    /// standard algebraic overlap).
    pub fn vertex_adjacency(&self) -> Vec<Vec<u32>> {
        let nv = self.n_vertices();
        let ne = self.n_elements();
        let mut v2e: Vec<Vec<u32>> = vec![Vec::new(); nv];
        for e in 0..ne {
            for &v in self.element(e) {
                v2e[v as usize].push(e as u32);
            }
        }
        let mut adj = vec![Vec::new(); ne];
        for e in 0..ne {
            for &v in self.element(e) {
                adj[e].extend_from_slice(&v2e[v as usize]);
            }
            adj[e].sort_unstable();
            adj[e].dedup();
            adj[e].retain(|&o| o != e as u32);
        }
        adj
    }

    /// Map vertex → incident elements.
    pub fn vertex_to_elements(&self) -> Vec<Vec<u32>> {
        let mut v2e: Vec<Vec<u32>> = vec![Vec::new(); self.n_vertices()];
        for e in 0..self.n_elements() {
            for &v in self.element(e) {
                v2e[v as usize].push(e as u32);
            }
        }
        v2e
    }

    /// Vertices lying on the boundary (vertices of facets that belong to
    /// exactly one element).
    pub fn boundary_vertices(&self) -> Vec<bool> {
        let mut facet_count: HashMap<Vec<u32>, u32> = HashMap::new();
        for e in 0..self.n_elements() {
            for f in self.element_facets(e) {
                *facet_count.entry(f).or_insert(0) += 1;
            }
        }
        let mut on_boundary = vec![false; self.n_vertices()];
        for (f, c) in facet_count {
            if c == 1 {
                for v in f {
                    on_boundary[v as usize] = true;
                }
            }
        }
        on_boundary
    }

    /// Merge two meshes into one conforming mesh, identifying vertices that
    /// coincide geometrically (within `tol`). Used to compose geometries
    /// from box primitives — e.g. the paper's tripod (Figure 6) built from
    /// a plate and three legs whose interfaces share identical grids.
    ///
    /// # Panics
    /// Panics if the meshes have different dimensions.
    pub fn merge(a: &Mesh, b: &Mesh, tol: f64) -> Mesh {
        assert_eq!(a.dim(), b.dim(), "merge: dimension mismatch");
        let dim = a.dim();
        let key = |p: &[f64]| -> Vec<i64> { p.iter().map(|&x| (x / tol).round() as i64).collect() };
        let mut coords = a.coords_flat().to_vec();
        let mut lookup: HashMap<Vec<i64>, u32> = (0..a.n_vertices())
            .map(|v| (key(a.vertex(v)), v as u32))
            .collect();
        // map b's vertices into the merged numbering
        let bmap: Vec<u32> = (0..b.n_vertices())
            .map(|v| {
                let k = key(b.vertex(v));
                if let Some(&id) = lookup.get(&k) {
                    id
                } else {
                    let id = (coords.len() / dim) as u32;
                    coords.extend_from_slice(b.vertex(v));
                    lookup.insert(k, id);
                    id
                }
            })
            .collect();
        let mut elems = a.elements_flat().to_vec();
        elems.extend(b.elements_flat().iter().map(|&v| bmap[v as usize]));
        Mesh::from_parts(dim, coords, elems)
    }

    /// Translate all vertices by the given offset (returns a new mesh).
    pub fn translated(&self, offset: &[f64]) -> Mesh {
        assert_eq!(offset.len(), self.dim);
        let mut coords = self.coords.clone();
        for v in 0..self.n_vertices() {
            for d in 0..self.dim {
                coords[v * self.dim + d] += offset[d];
            }
        }
        Mesh::from_parts(self.dim, coords, self.elems.clone())
    }

    /// The paper's 3D strong-scaling geometry in miniature: a tripod — a
    /// horizontal plate standing on three legs (Figure 6). `res` controls
    /// the cells per unit length.
    pub fn tripod(res: usize) -> Mesh {
        let r = res.max(1);
        // Plate: 3 × 3 × 0.5 at height z ∈ [1, 1.5].
        let plate =
            Mesh::box3d(3 * r, 3 * r, r.div_ceil(2), 3.0, 3.0, 0.5).translated(&[0.0, 0.0, 1.0]);
        // Three legs 0.5 × 0.5 × 1 under the plate. Leg grids align with
        // the plate grid (cells per unit length match), so merge() glues
        // them conformingly.
        let leg = |x0: f64, y0: f64| {
            Mesh::box3d(r.div_ceil(2), r.div_ceil(2), r, 0.5, 0.5, 1.0).translated(&[x0, y0, 0.0])
        };
        let mut m = Mesh::merge(&plate, &leg(0.0, 0.0), 1e-9);
        m = Mesh::merge(&m, &leg(2.5, 0.0), 1e-9);
        m = Mesh::merge(&m, &leg(1.0, 2.5), 1e-9);
        m
    }

    /// Boundary facets (each a sorted vertex tuple).
    pub fn boundary_facets(&self) -> Vec<Vec<u32>> {
        let mut facet_count: HashMap<Vec<u32>, u32> = HashMap::new();
        for e in 0..self.n_elements() {
            for f in self.element_facets(e) {
                *facet_count.entry(f).or_insert(0) += 1;
            }
        }
        let mut out: Vec<Vec<u32>> = facet_count
            .into_iter()
            .filter(|&(_, c)| c == 1)
            .map(|(f, _)| f)
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_square_counts_and_volume() {
        let m = Mesh::unit_square(4, 3);
        assert_eq!(m.n_vertices(), 5 * 4);
        assert_eq!(m.n_elements(), 2 * 4 * 3);
        assert!((m.total_volume() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unit_cube_counts_and_volume() {
        let m = Mesh::unit_cube(2, 2, 2);
        assert_eq!(m.n_vertices(), 27);
        assert_eq!(m.n_elements(), 6 * 8);
        assert!((m.total_volume() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn elements_positively_oriented_2d() {
        let m = Mesh::unit_square(3, 3);
        for e in 0..m.n_elements() {
            assert!(m.element_volume(e) > 0.0, "element {e} inverted");
        }
    }

    #[test]
    fn tet_volumes_nonzero() {
        let m = Mesh::unit_cube(1, 1, 1);
        for e in 0..m.n_elements() {
            assert!(
                (m.element_volume(e).abs() - 1.0 / 6.0).abs() < 1e-12,
                "Kuhn tets each fill 1/6 of the cube"
            );
        }
    }

    #[test]
    fn dual_graph_2d_interior_counts() {
        let m = Mesh::unit_square(2, 2);
        let g = m.dual_graph();
        // every triangle has between 1 and 3 facet neighbors
        for (e, nbrs) in g.iter().enumerate() {
            assert!(!nbrs.is_empty() && nbrs.len() <= 3, "element {e}: {nbrs:?}");
            // symmetry
            for &o in nbrs {
                assert!(g[o as usize].contains(&(e as u32)));
            }
        }
    }

    #[test]
    fn dual_graph_3d_symmetric() {
        let m = Mesh::unit_cube(2, 2, 2);
        let g = m.dual_graph();
        for (e, nbrs) in g.iter().enumerate() {
            assert!(nbrs.len() <= 4);
            for &o in nbrs {
                assert!(g[o as usize].contains(&(e as u32)));
            }
        }
    }

    #[test]
    fn boundary_vertices_square() {
        let m = Mesh::unit_square(3, 3);
        let b = m.boundary_vertices();
        let mut count = 0;
        for v in 0..m.n_vertices() {
            let p = m.vertex(v);
            let on_edge = p[0] < 1e-12 || p[0] > 1.0 - 1e-12 || p[1] < 1e-12 || p[1] > 1.0 - 1e-12;
            assert_eq!(b[v], on_edge, "vertex {v} at {p:?}");
            count += b[v] as usize;
        }
        assert_eq!(count, 12); // 4×4 grid: all but the 2×2 interior
    }

    #[test]
    fn boundary_vertices_cube() {
        let m = Mesh::unit_cube(3, 3, 3);
        let b = m.boundary_vertices();
        let interior = b.iter().filter(|&&x| !x).count();
        assert_eq!(interior, 8); // 4×4×4 grid: 2×2×2 interior
    }

    #[test]
    fn vertex_adjacency_superset_of_dual() {
        let m = Mesh::unit_square(3, 2);
        let dual = m.dual_graph();
        let vadj = m.vertex_adjacency();
        for e in 0..m.n_elements() {
            for n in &dual[e] {
                assert!(vadj[e].contains(n));
            }
        }
    }

    #[test]
    fn merge_dedupes_shared_interface() {
        // Two unit squares sharing the x = 1 edge.
        let a = Mesh::unit_square(2, 2);
        let b = Mesh::unit_square(2, 2).translated(&[1.0, 0.0]);
        let m = Mesh::merge(&a, &b, 1e-9);
        // 9 + 9 − 3 shared vertices
        assert_eq!(m.n_vertices(), 15);
        assert_eq!(m.n_elements(), 16);
        assert!((m.total_volume() - 2.0).abs() < 1e-12);
        // The interface is interior now: its edge midpoint vertex is not
        // on the boundary.
        let b_flags = m.boundary_vertices();
        let interior_interface = (0..m.n_vertices()).any(|v| {
            let p = m.vertex(v);
            (p[0] - 1.0).abs() < 1e-12 && (p[1] - 0.5).abs() < 1e-12 && !b_flags[v]
        });
        assert!(interior_interface, "interface was not merged conformingly");
    }

    #[test]
    fn tripod_is_connected_and_sane() {
        let m = Mesh::tripod(2);
        assert_eq!(m.dim(), 3);
        // volume = plate 4.5 + 3 legs × 0.25
        assert!(
            (m.total_volume() - (4.5 + 0.75)).abs() < 1e-9,
            "volume {}",
            m.total_volume()
        );
        // connected dual graph
        let adj = m.dual_graph();
        let mut seen = vec![false; m.n_elements()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(e) = stack.pop() {
            for &o in &adj[e] {
                if !seen[o as usize] {
                    seen[o as usize] = true;
                    count += 1;
                    stack.push(o as usize);
                }
            }
        }
        assert_eq!(count, m.n_elements(), "tripod mesh is disconnected");
    }

    #[test]
    fn translated_shifts_coordinates() {
        let m = Mesh::unit_square(1, 1).translated(&[2.0, -1.0]);
        assert!((m.vertex(0)[0] - 2.0).abs() < 1e-15);
        assert!((m.vertex(0)[1] + 1.0).abs() < 1e-15);
        assert!((m.total_volume() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rectangle_anisotropic() {
        let m = Mesh::rectangle(10, 2, 5.0, 1.0);
        assert!((m.total_volume() - 5.0).abs() < 1e-12);
        let max_x = (0..m.n_vertices())
            .map(|v| m.vertex(v)[0])
            .fold(0.0, f64::max);
        assert!((max_x - 5.0).abs() < 1e-12);
    }
}
