//! Flow through porous media — the paper's weak-scaling workload — run on
//! the full SPMD stack: one rank per subdomain, Algorithms 1–2 for the
//! coarse operator, distributed GMRES, virtual-time phase breakdown.
//!
//! ```sh
//! cargo run --release --example porous_media
//! ```

use dd_geneo::comm::World;
use dd_geneo::core::{decompose, problem::presets, run_spmd, GeneoOpts, SpmdOpts};
use dd_geneo::krylov::GmresOpts;
use dd_geneo::mesh::Mesh;
use dd_geneo::part::partition_mesh_rcb;
use std::sync::Arc;

fn main() {
    let n_sub = 8;
    let mesh = Mesh::unit_square(32, 32);
    let part = partition_mesh_rcb(&mesh, n_sub);
    // κ ∈ [1, 3·10⁶] with channels and inclusions (paper Figure 9).
    let problem = presets::heterogeneous_diffusion(2);
    let decomp = Arc::new(decompose(&mesh, &problem, &part, n_sub, 1));
    println!(
        "porous media: {} dofs (P2), {} ranks, κ contrast 3e6\n",
        decomp.n_global, n_sub
    );

    let opts = SpmdOpts {
        geneo: GeneoOpts {
            nev: 8,
            ..Default::default()
        },
        n_masters: 2,
        gmres: GmresOpts {
            tol: 1e-6,
            max_iters: 300,
            ..Default::default()
        },
        ..Default::default()
    };

    let d = Arc::clone(&decomp);
    let sols = World::run_default(n_sub, move |comm| {
        let s = run_spmd(&d, comm, &opts);
        (s.report, s.x_local)
    });

    // Per-rank virtual-time breakdown (the Figure 8/10 columns).
    println!("rank  factor[s]  deflation[s]  coarse[s]  solution[s]  total[s]  |O_i|");
    for (r, _) in &sols {
        println!(
            "{:4}  {:9.4}  {:12.4}  {:9.4}  {:11.4}  {:8.4}  {:5}",
            r.rank,
            r.t_factorization,
            r.t_deflation,
            r.t_coarse,
            r.t_solution,
            r.t_total,
            r.n_neighbors
        );
    }
    let r0 = &sols[0].0;
    println!(
        "\niterations = {}, dim(E) = {}, converged = {}",
        r0.iterations, r0.dim_e, r0.converged
    );
    assert!(r0.converged);

    // Verify against the sequential reference solution.
    let locals: Vec<Vec<f64>> = sols.into_iter().map(|(_, x)| x).collect();
    let x = decomp.from_locals(&locals);
    let mut ax = vec![0.0; decomp.n_global];
    decomp.a_global.spmv(&x, &mut ax);
    let num: f64 = ax
        .iter()
        .zip(&decomp.rhs_global)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt();
    let den: f64 = decomp.rhs_global.iter().map(|b| b * b).sum::<f64>().sqrt();
    println!(
        "true relative residual of the SPMD solution: {:.2e}",
        num / den
    );
}
