//! Seeded-deadlock suites: programs with *genuine* wait cycles must be
//! degraded gracefully by the runtime (a `CommError::Deadlock` /
//! `RankDead` on some rank) in **every** explored schedule — never an
//! undetected hang (a `Stuck` abort from the scheduler). Conversely, the
//! detector must never confirm a deadlock on a correct program, which the
//! PR 3 oversubscribed-host regression pins down.

use dd_check::{
    check_world, explore, replay, run_threads, scaled, Budget, Config, FailureKind, Report,
    STUCK_MSG,
};
use dd_comm::sync::SyncMutex;
use dd_comm::{CommError, RetryPolicy};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Outcomes are schedule-dependent for seeded deadlocks (which rank
/// confirms first decides who reports `Deadlock` vs `RankDead`), so
/// divergence checking is off; graceful degradation is the property.
fn budget(max: usize) -> Budget {
    Budget {
        max_schedules: scaled(max),
        check_divergence: false,
    }
}

fn encode(r: Result<u64, CommError>) -> Vec<u8> {
    match r {
        Ok(v) => {
            let mut out = vec![0u8];
            out.extend_from_slice(&v.to_le_bytes());
            out
        }
        Err(CommError::Deadlock { .. }) => vec![1],
        Err(CommError::RankDead { .. }) => vec![2],
        Err(CommError::Timeout { .. }) => vec![3],
        Err(CommError::Revoked { .. }) => vec![4],
        Err(CommError::Corrupt { .. }) => vec![5],
    }
}

fn assert_graceful(r: &Report, what: &str) {
    for f in &r.failures {
        assert_ne!(
            f.kind,
            FailureKind::Stuck,
            "{what}: undetected deadlock (stuck schedule), replay script {:?}",
            f.script
        );
        assert_ne!(
            f.kind,
            FailureKind::Panic,
            "{what}: panic instead of graceful error: {}",
            f.message
        );
    }
    r.assert_clean();
}

/// r0 and r1 each wait for a message the other never sends. Every
/// schedule must end with both ranks getting a typed error — the runtime
/// confirming the cycle — and the scheduler must never have to abort.
#[test]
fn recv_recv_cycle_is_confirmed_in_every_schedule() {
    let deadlocks = Arc::new(AtomicUsize::new(0));
    let seen = Arc::clone(&deadlocks);
    let report = check_world(2, Config::default(), budget(3000), move |comm| {
        let peer = 1 - comm.rank();
        let r = comm.try_recv_timeout::<u64>(peer, 5, &RetryPolicy::unbounded());
        if matches!(r, Err(CommError::Deadlock { .. })) {
            seen.fetch_add(1, Ordering::SeqCst);
        }
        encode(r)
    });
    assert_graceful(&report, "recv/recv cycle");
    assert!(report.schedules > 10, "explored {}", report.schedules);
    assert!(
        deadlocks.load(Ordering::SeqCst) > 0,
        "no schedule ever confirmed the recv/recv cycle as a deadlock"
    );
}

/// r0 enters a barrier r1 will never join; r1 waits for a message r0
/// will never send. A cross-primitive cycle: collective wait against
/// point-to-point wait.
#[test]
fn collective_recv_cycle_is_confirmed_in_every_schedule() {
    let deadlocks = Arc::new(AtomicUsize::new(0));
    let seen = Arc::clone(&deadlocks);
    let report = check_world(2, Config::default(), budget(3000), move |comm| {
        let r = if comm.rank() == 0 {
            comm.try_barrier().map(|()| 0u64)
        } else {
            comm.try_recv_timeout::<u64>(0, 5, &RetryPolicy::unbounded())
        };
        if matches!(r, Err(CommError::Deadlock { .. })) {
            seen.fetch_add(1, Ordering::SeqCst);
        }
        encode(r)
    });
    assert_graceful(&report, "collective/recv cycle");
    assert!(
        deadlocks.load(Ordering::SeqCst) > 0,
        "no schedule ever confirmed the collective/recv cycle as a deadlock"
    );
}

/// Regression for the PR 3 oversubscribed-host false positive: a rank
/// parked in `recv` with its message *already enqueued* (the sender ran,
/// delivered, and moved on — or exited — before the receiver ever woke)
/// must never be confirmed as deadlocked, no matter how many stall ticks
/// other waiting ranks accumulate.
///
/// r1 delivers r0's message and exits; r0 forwards to r2. The dangerous
/// interleavings — r0 and r2 both parked, r1 gone, r2 burning all six
/// stall ticks and running the confirmation sweep while r0's message sits
/// deliverable in its mailbox — are all in the explored tree, because
/// parking order and every timeout wake are explicit scheduler choices.
/// `complete` asserts the tree was exhausted, so the scenario was checked.
#[test]
fn pr3_enqueued_message_is_never_a_false_positive() {
    let report = check_world(
        3,
        Config::default(),
        Budget {
            max_schedules: scaled(20_000),
            check_divergence: true,
        },
        |comm| match comm.rank() {
            0 => {
                let v = comm.recv::<u64>(1, 1);
                comm.send(2, 2, v + 10);
                Vec::new()
            }
            1 => {
                comm.send(0, 1, 7u64);
                Vec::new()
            }
            _ => comm.recv::<u64>(0, 2).to_le_bytes().to_vec(),
        },
    );
    report.assert_clean();
    assert!(
        report.complete,
        "schedule tree not exhausted ({} schedules) — raise the cap",
        report.schedules
    );
}

/// A deliberate lock-order inversion in a test-only program: t0 takes
/// a→b, t1 takes b→a. The runtime has no probes for raw mutexes, so the
/// deadlock is undetectable there — the *explorer* must find the
/// interleaving and flag it as a stuck schedule, with a replayable script.
#[test]
fn swapped_lock_order_is_found_as_stuck() {
    let program = |backend: Arc<dyn dd_comm::sync::SyncBackend>| {
        let a = Arc::new(SyncMutex::new(&backend, 0u32));
        let b = Arc::new(SyncMutex::new(&backend, 0u32));
        let (a0, b0) = (Arc::clone(&a), Arc::clone(&b));
        let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
        let r = run_threads(
            &backend,
            vec![
                Box::new(move || {
                    let ga = a0.lock();
                    let gb = b0.lock();
                    drop((ga, gb));
                }),
                Box::new(move || {
                    let gb = b1.lock();
                    let ga = a1.lock();
                    drop((gb, ga));
                }),
            ],
        );
        r.unwrap_or_else(|e| panic!("{e}"));
        Vec::new()
    };
    let report = explore(2, Config::default(), budget(2000), program);
    let stuck: Vec<_> = report
        .failures
        .iter()
        .filter(|f| f.kind == FailureKind::Stuck)
        .collect();
    assert!(
        !stuck.is_empty(),
        "explorer missed the lock-order inversion in {} schedules",
        report.schedules
    );
    // The printed script replays the exact deadlocking schedule.
    let script = stuck[0].script.clone();
    let replayed = replay(2, Config::default(), script, program);
    let msg = replayed.expect_err("replayed schedule must still deadlock");
    assert!(msg.contains(STUCK_MSG), "unexpected replay failure: {msg}");
}

/// Replay determinism: the same script yields byte-identical output.
#[test]
fn replay_is_deterministic() {
    let program = |backend: Arc<dyn dd_comm::sync::SyncBackend>| {
        dd_comm::World::run_with_backend(
            2,
            dd_comm::CostModel::default(),
            dd_comm::FaultPlan::default(),
            backend,
            |comm| {
                if comm.rank() == 0 {
                    comm.send(1, 1, 99u64);
                    0
                } else {
                    comm.recv::<u64>(0, 1)
                }
            },
        )
        .into_iter()
        .flat_map(|v: u64| v.to_le_bytes())
        .collect()
    };
    let a = replay(2, Config::default(), vec![], program);
    let b = replay(2, Config::default(), vec![], program);
    assert_eq!(a, b, "default-policy replays diverged");
}
