//! Deterministic, seeded fault injection for the SPMD runtime.
//!
//! A [`FaultPlan`] decides — as a pure function of `(seed, src, dest, tag,
//! message index)` — whether a point-to-point message is delayed or dropped
//! on the wire, and whether a rank dies at a named phase boundary
//! ([`crate::Communicator::failpoint`]) or a named recoverable operation
//! "fails" ([`crate::Communicator::should_fail`]). Because every decision
//! is a hash of the message identity rather than a draw from shared mutable
//! RNG state, a plan replays identically regardless of thread scheduling:
//! chaos tests are exactly reproducible.
//!
//! Fail-stop faults (drops, delays, kills, straggles) perturb only
//! *virtual* time and control flow, never payload contents, so a run that
//! recovers from them computes bit-identical numerics to the fault-free
//! run. *Corruption* faults ([`FaultPlan::with_corrupt`]) are the one
//! deliberate exception: they flip a deterministic bit in the wire image of
//! matching payloads, and the checksummed envelope layer detects the flip
//! on receive and recovers it with an end-to-end retransmit — so a run that
//! survives corruption is *still* bit-identical to the fault-free run, only
//! costlier in virtual time.

use std::fmt;

/// Structured failure of a communication operation — the typed replacement
/// for the runtime's former "all threads blocked" hang.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommError {
    /// Every live rank of the world was simultaneously blocked for several
    /// consecutive observation ticks: no progress is possible.
    Deadlock {
        /// World rank that observed the deadlock.
        rank: usize,
    },
    /// A receive exhausted its [`RetryPolicy`] against repeated drops.
    Timeout {
        /// Source rank (within the receiving communicator).
        src: usize,
        /// Message tag.
        tag: u64,
        /// Failed delivery attempts, including the final one.
        attempts: u32,
    },
    /// The operation waited on a rank that died (killed by a fault plan,
    /// exited early, or abandoned the run after its own error).
    RankDead {
        /// World rank of the dead peer (or of the rank itself when a kill
        /// fault fires at a failpoint).
        rank: usize,
    },
    /// The communicator was revoked ([`crate::Communicator::revoke`])
    /// while this operation was in flight: a peer initiated recovery and
    /// every wait on the pre-shrink communicator must abort instead of
    /// hanging. `epoch` is the revocation epoch of the communicator the
    /// operation ran on; a shrunk successor carries a higher epoch.
    Revoked {
        /// Revocation epoch of the communicator the failed operation used.
        epoch: usize,
    },
    /// A received payload repeatedly failed end-to-end checksum
    /// verification and the [`RetryPolicy::max_retransmits`] budget was
    /// exhausted before an intact copy arrived. Distinct from
    /// [`CommError::Timeout`] (which counts deliveries that never arrived):
    /// here the message arrived, but its bytes cannot be trusted — the
    /// payload is *never* handed to the caller.
    Corrupt {
        /// Source rank (within the receiving communicator).
        src: usize,
        /// Message tag.
        tag: u64,
        /// Revocation epoch of the receiving communicator. The envelope
        /// checksum is salted with the communicator identity and epoch, so
        /// a stale-epoch replay can never alias a current checksum.
        epoch: usize,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Deadlock { rank } => {
                write!(
                    f,
                    "deadlock: all live ranks blocked (observed by rank {rank})"
                )
            }
            CommError::Timeout { src, tag, attempts } => write!(
                f,
                "timeout: recv from rank {src} tag {tag} failed after {attempts} attempts"
            ),
            CommError::RankDead { rank } => write!(f, "rank {rank} is dead"),
            CommError::Revoked { epoch } => {
                write!(
                    f,
                    "communicator revoked (epoch {epoch}): recovery in progress"
                )
            }
            CommError::Corrupt { src, tag, epoch } => write!(
                f,
                "corrupt payload: recv from rank {src} tag {tag} (epoch {epoch}) \
                 failed checksum verification and exhausted its retransmit budget"
            ),
        }
    }
}

impl std::error::Error for CommError {}

/// Retry/timeout/backoff policy for fault-tolerant receives. All durations
/// are **virtual seconds**: each failed delivery attempt charges
/// `timeout · backoff^attempt` to the receiving rank's clock, so the cost
/// model stays honest about the price of recovery.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Failed attempts tolerated before [`CommError::Timeout`].
    pub max_retries: u32,
    /// Virtual seconds charged for the first failed attempt.
    pub timeout: f64,
    /// Multiplier applied to the charge of each subsequent attempt.
    pub backoff: f64,
    /// Relative jitter amplitude in `[0, 1]`: each attempt's charge is
    /// scaled by a factor in `[1 − jitter/2, 1 + jitter/2]` drawn
    /// deterministically from the message identity, decorrelating the
    /// retry storms of ranks that lose the same collective round. `0`
    /// (the default) disables jitter.
    pub jitter: f64,
    /// End-to-end retransmit budget: checksum-failed deliveries tolerated
    /// per message before [`CommError::Corrupt`]. A retransmit charges like
    /// a retry (same backoff schedule) *plus* the payload's transfer time —
    /// the sender's pristine buffer re-crosses the wire. Always bounded,
    /// even under [`RetryPolicy::unbounded`]: a persistently corrupting
    /// channel must surface typed, not spin.
    pub max_retransmits: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 8,
            timeout: 1e-4,
            backoff: 2.0,
            jitter: 0.0,
            max_retransmits: 4,
        }
    }
}

impl RetryPolicy {
    /// Retry for as long as deliveries keep failing (blocking-`recv`
    /// semantics; drops are bounded per message, so this terminates).
    /// The retransmit budget stays bounded — see
    /// [`RetryPolicy::max_retransmits`].
    pub fn unbounded() -> Self {
        RetryPolicy {
            max_retries: u32::MAX,
            timeout: 1e-4,
            backoff: 1.0,
            jitter: 0.0,
            max_retransmits: 4,
        }
    }

    /// A bounded policy with backoff and seeded jitter enabled — the
    /// recommended policy for waits on possibly-dead peers (recovery
    /// paths must never wait unboundedly).
    pub fn bounded_jittered() -> Self {
        RetryPolicy {
            jitter: 0.5,
            ..Default::default()
        }
    }

    /// Virtual-time charge of failed attempt number `attempt` (0-based).
    pub(crate) fn charge(&self, attempt: u32) -> f64 {
        self.timeout * self.backoff.powi(attempt.min(64) as i32)
    }

    /// [`RetryPolicy::charge`] with the seeded jitter applied: `salt`
    /// identifies the message (or collective contribution) being retried,
    /// so the draw is a pure function of the retry identity and replays
    /// identically under virtual time.
    pub(crate) fn charge_jittered(&self, attempt: u32, salt: u64) -> f64 {
        let base = self.charge(attempt);
        if self.jitter == 0.0 {
            return base;
        }
        let draw = unit(splitmix64(salt ^ u64::from(attempt).rotate_left(23)));
        base * (1.0 + self.jitter * (draw - 0.5))
    }
}

/// Which traffic class a corruption spec targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TagClass {
    /// Point-to-point messages and collective contributions alike.
    Any,
    /// Point-to-point messages only.
    P2p,
    /// Collective contributions only.
    Collective,
}

/// One seeded payload-corruption spec (see [`FaultPlan::with_corrupt`]).
#[derive(Clone, Debug)]
struct CorruptSpec {
    /// Telemetry phase the sender must be in for the spec to fire.
    phase: String,
    /// Sending world rank (`None`: any sender).
    rank: Option<usize>,
    class: TagClass,
    /// Seed of the bit-selection hash, independent of the plan seed so
    /// corruption scenarios compose with an existing drop/delay climate
    /// without reshuffling it.
    seed: u64,
    /// `false`: only the first delivery is corrupted (the retransmit
    /// recovers it transparently). `true`: every retransmit is corrupted
    /// too, so the receive exhausts its budget and surfaces
    /// [`CommError::Corrupt`].
    persistent: bool,
}

/// A seeded, deterministic fault plan. Built with the `with_*` combinators;
/// the default plan injects nothing.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    /// Probability that a p2p message is delayed, and the virtual delay.
    delay_prob: f64,
    delay_dt: f64,
    /// Probability that a p2p message is dropped, and how many delivery
    /// attempts fail before the runtime redelivers it.
    drop_prob: f64,
    drop_count: u32,
    /// `(world rank, failpoint label)`: the rank dies when it reaches the
    /// labeled [`crate::Communicator::failpoint`].
    kills: Vec<(usize, String)>,
    /// `(world rank or all, label)`: the labeled recoverable operation
    /// reports failure on the matching rank(s).
    failures: Vec<(Option<usize>, String)>,
    /// `(reserve world rank, failpoint label)`: the reserve rank becomes a
    /// pending joiner when any rank reaches the labeled failpoint
    /// (elastic worlds, [`crate::World::run_elastic`]).
    joins: Vec<(usize, String)>,
    /// `(world rank, failpoint label)`: the rank's heartbeats are
    /// suppressed from the labeled failpoint on — it keeps computing but
    /// looks stalled to its peers' suspicion policy (straggler injection).
    straggles: Vec<(usize, String)>,
    /// Payload-corruption specs, first match wins.
    corruptions: Vec<CorruptSpec>,
}

impl FaultPlan {
    /// A plan with the given seed and no faults.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..Default::default()
        }
    }

    /// Delay each p2p message with probability `prob` by `dt` virtual
    /// seconds.
    pub fn with_delays(mut self, prob: f64, dt: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob) && dt >= 0.0);
        self.delay_prob = prob;
        self.delay_dt = dt;
        self
    }

    /// Drop each p2p message with probability `prob`; the first `count`
    /// delivery attempts fail before the runtime redelivers it.
    pub fn with_drops(mut self, prob: f64, count: u32) -> Self {
        assert!((0.0..=1.0).contains(&prob) && count >= 1);
        self.drop_prob = prob;
        self.drop_count = count;
        self
    }

    /// Kill world rank `rank` when it reaches the failpoint labeled
    /// `phase`.
    pub fn with_kill(mut self, rank: usize, phase: &str) -> Self {
        self.kills.push((rank, phase.to_string()));
        self
    }

    /// Make the recoverable operation labeled `label` fail on world rank
    /// `rank` (`None` = on every rank).
    pub fn with_failure(mut self, rank: Option<usize>, label: &str) -> Self {
        self.failures.push((rank, label.to_string()));
        self
    }

    /// Make reserve world rank `rank` announce itself as a pending joiner
    /// when any rank reaches the failpoint labeled `phase` (elastic
    /// worlds only — see [`crate::World::run_elastic`]).
    pub fn with_join(mut self, rank: usize, phase: &str) -> Self {
        self.joins.push((rank, phase.to_string()));
        self
    }

    /// Suppress world rank `rank`'s heartbeats from the failpoint labeled
    /// `phase` on: the rank keeps running, but its progress watermark
    /// freezes, so peers running a suspicion policy classify it
    /// `Suspected` and can evict it. Suppression (rather than injected
    /// slowness) keeps the victim's own numerics and program order
    /// untouched, so chaos runs stay deterministic.
    pub fn with_straggle(mut self, rank: usize, phase: &str) -> Self {
        self.straggles.push((rank, phase.to_string()));
        self
    }

    /// Corrupt the wire image of every matching payload: messages of class
    /// `class` sent by world rank `rank` (`None`: any sender) while the
    /// sender's telemetry phase is `phase` have one deterministic bit
    /// flipped — which bit is a pure hash of `(seed, message identity)`.
    /// The checksummed envelope detects the flip on receive, and the first
    /// end-to-end retransmit (the sender's buffer is pristine) recovers it
    /// transparently, so the solve's numerics stay bit-identical to the
    /// fault-free run.
    pub fn with_corrupt(
        mut self,
        phase: &str,
        rank: Option<usize>,
        class: TagClass,
        seed: u64,
    ) -> Self {
        self.corruptions.push(CorruptSpec {
            phase: phase.to_string(),
            rank,
            class,
            seed,
            persistent: false,
        });
        self
    }

    /// [`FaultPlan::with_corrupt`], but every retransmit is corrupted too:
    /// the receive exhausts [`RetryPolicy::max_retransmits`] and surfaces
    /// [`CommError::Corrupt`] — the typed-failure arm of the SDC model.
    pub fn with_corrupt_persistent(
        mut self,
        phase: &str,
        rank: Option<usize>,
        class: TagClass,
        seed: u64,
    ) -> Self {
        self.corruptions.push(CorruptSpec {
            phase: phase.to_string(),
            rank,
            class,
            seed,
            persistent: true,
        });
        self
    }

    /// Does this plan inject anything at all?
    pub fn is_active(&self) -> bool {
        self.delay_prob > 0.0
            || self.drop_prob > 0.0
            || !self.kills.is_empty()
            || !self.failures.is_empty()
            || !self.joins.is_empty()
            || !self.straggles.is_empty()
            || !self.corruptions.is_empty()
    }

    /// Does this plan carry corruption specs? Gates the phase-name lookup
    /// on the send path, so fault-free (and fail-stop-only) runs never pay
    /// for it.
    pub fn has_corruptions(&self) -> bool {
        !self.corruptions.is_empty()
    }

    /// Should `rank` die at the failpoint labeled `phase`?
    pub fn kills(&self, rank: usize, phase: &str) -> bool {
        self.kills.iter().any(|(r, p)| *r == rank && p == phase)
    }

    /// Should the recoverable operation `label` fail on `rank`?
    pub fn should_fail(&self, rank: usize, label: &str) -> bool {
        self.failures
            .iter()
            .any(|(r, l)| r.is_none_or(|r| r == rank) && l == label)
    }

    /// Reserve world ranks that become pending joiners at the failpoint
    /// labeled `phase`.
    pub fn joins_at<'a>(&'a self, phase: &'a str) -> impl Iterator<Item = usize> + 'a {
        self.joins
            .iter()
            .filter(move |(_, p)| p == phase)
            .map(|(r, _)| *r)
    }

    /// Should `rank` stop heartbeating at the failpoint labeled `phase`?
    pub fn straggles(&self, rank: usize, phase: &str) -> bool {
        self.straggles.iter().any(|(r, p)| *r == rank && p == phase)
    }

    /// Fault decision for one p2p message, identified by its endpoints
    /// (world ranks), tag, and the sender's per-rank message index:
    /// `(failed delivery attempts, extra virtual delay)`.
    pub fn message_faults(&self, src: usize, dest: usize, tag: u64, index: u64) -> (u32, f64) {
        if self.delay_prob == 0.0 && self.drop_prob == 0.0 {
            return (0, 0.0);
        }
        let h = hash4(
            self.seed,
            src as u64,
            dest as u64,
            tag ^ index.rotate_left(17),
        );
        let drop_draw = unit(h);
        let delay_draw = unit(splitmix64(h ^ 0x9e37_79b9_7f4a_7c15));
        let drops = if drop_draw < self.drop_prob {
            self.drop_count
        } else {
            0
        };
        let delay = if delay_draw < self.delay_prob {
            self.delay_dt
        } else {
            0.0
        };
        (drops, delay)
    }

    /// Fault decision for one collective contribution, identified by the
    /// contributing world rank and its per-rank collective index:
    /// `(failed delivery attempts, extra virtual delay)`. Routed through
    /// the same seeded hash as [`FaultPlan::message_faults`] with a
    /// sentinel destination, so collective-internal deliveries see the
    /// same drop/delay climate as point-to-point traffic without
    /// correlating with it.
    pub fn collective_faults(&self, rank: usize, index: u64) -> (u32, f64) {
        if self.delay_prob == 0.0 && self.drop_prob == 0.0 {
            return (0, 0.0);
        }
        let h = hash4(self.seed, rank as u64, u64::MAX, index.rotate_left(29));
        let drops = if unit(h) < self.drop_prob {
            self.drop_count
        } else {
            0
        };
        let delay = if unit(splitmix64(h ^ 0x9e37_79b9_7f4a_7c15)) < self.delay_prob {
            self.delay_dt
        } else {
            0.0
        };
        (drops, delay)
    }

    /// Corruption decision for one p2p message sent while the sender's
    /// telemetry phase is `phase`: `Some((corrupted delivery attempts,
    /// bit-selection hash))` when a spec matches. The hash (reduced modulo
    /// the payload's wire bits by the runtime) picks which bit flips — a
    /// pure function of the spec seed and the message identity, so chaos
    /// runs replay byte-identically.
    pub fn corrupt_p2p(
        &self,
        phase: &str,
        src: usize,
        dest: usize,
        tag: u64,
        index: u64,
    ) -> Option<(u32, u64)> {
        let spec = self.corruptions.iter().find(|s| {
            s.class != TagClass::Collective && s.rank.is_none_or(|r| r == src) && s.phase == phase
        })?;
        let h = hash4(
            spec.seed,
            src as u64,
            dest as u64,
            tag ^ index.rotate_left(17),
        );
        Some((if spec.persistent { u32::MAX } else { 1 }, h))
    }

    /// Corruption decision for one collective contribution: the number of
    /// corrupted delivery attempts when a spec matches. Like
    /// [`FaultPlan::collective_faults`], collective corruption is modeled
    /// as pure time and counter effects — collectives are all-or-nothing,
    /// so the corrupted contribution is retransmitted until intact (or the
    /// budget exhausts into a recorded timeout) and the recovery cost lands
    /// in the contributor's clock instead of stranding its peers.
    pub fn corrupt_collective(&self, phase: &str, rank: usize) -> Option<u32> {
        let spec = self.corruptions.iter().find(|s| {
            s.class != TagClass::P2p && s.rank.is_none_or(|r| r == rank) && s.phase == phase
        })?;
        Some(if spec.persistent { u32::MAX } else { 1 })
    }

    /// Deterministic salt for the seeded retry jitter of one message
    /// identity (see [`RetryPolicy::charge_jittered`]). The salt is a pure
    /// function of the plan seed and a stable identity — the communicator's
    /// fault id plus `(src, tag)` for point-to-point retries, the
    /// communicator's fault id plus its collective sequence number for
    /// collective retries — never a free-running counter, so two
    /// identically-seeded runs replay byte-identical retry schedules.
    pub(crate) fn retry_salt(&self, src: usize, tag: u64, index: u64) -> u64 {
        hash4(self.seed, src as u64, tag, index)
    }
}

/// Counters of faults observed by one rank, reported alongside the run so
/// chaos tests can assert that injection actually happened.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages sent by this rank that the plan delayed.
    pub delays_injected: u64,
    /// Messages sent by this rank that the plan marked for dropping.
    pub drops_injected: u64,
    /// Failed delivery attempts this rank retried on receive.
    pub retries: u64,
    /// Receives that exhausted their retry policy.
    pub timeouts: u64,
    /// Payloads sent by this rank whose wire image the plan corrupted.
    pub corruptions_injected: u64,
    /// Checksum-verification failures this rank detected on receive.
    pub corruptions_detected: u64,
    /// End-to-end retransmits this rank requested after a failed
    /// verification.
    pub retransmits: u64,
}

pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn hash4(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut h = splitmix64(seed);
    h = splitmix64(h ^ a);
    h = splitmix64(h ^ b);
    h = splitmix64(h ^ c);
    h
}

/// Map a hash to a uniform draw in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let p = FaultPlan::new(42)
            .with_delays(0.5, 1e-3)
            .with_drops(0.25, 2);
        for msg in 0..100 {
            assert_eq!(
                p.message_faults(0, 1, 7, msg),
                p.message_faults(0, 1, 7, msg)
            );
        }
    }

    #[test]
    fn probabilities_are_roughly_respected() {
        let p = FaultPlan::new(7).with_delays(0.5, 1e-3).with_drops(0.2, 1);
        let n = 10_000;
        let mut delayed = 0;
        let mut dropped = 0;
        for msg in 0..n {
            let (d, dt) = p.message_faults(3, 5, 11, msg);
            if d > 0 {
                dropped += 1;
            }
            if dt > 0.0 {
                delayed += 1;
            }
        }
        let fd = dropped as f64 / n as f64;
        let fl = delayed as f64 / n as f64;
        assert!((fd - 0.2).abs() < 0.03, "drop rate {fd}");
        assert!((fl - 0.5).abs() < 0.03, "delay rate {fl}");
    }

    #[test]
    fn seeds_decorrelate() {
        let a = FaultPlan::new(1).with_drops(0.5, 1);
        let b = FaultPlan::new(2).with_drops(0.5, 1);
        let differs = (0..64).any(|m| a.message_faults(0, 1, 0, m) != b.message_faults(0, 1, 0, m));
        assert!(differs);
    }

    #[test]
    fn kill_and_failure_matching() {
        let p = FaultPlan::new(0)
            .with_kill(2, "post-assembly")
            .with_failure(Some(1), "eigensolve")
            .with_failure(None, "coarse-factor");
        assert!(p.kills(2, "post-assembly"));
        assert!(!p.kills(2, "post-solve"));
        assert!(!p.kills(1, "post-assembly"));
        assert!(p.should_fail(1, "eigensolve"));
        assert!(!p.should_fail(0, "eigensolve"));
        assert!(p.should_fail(0, "coarse-factor") && p.should_fail(3, "coarse-factor"));
    }

    #[test]
    fn join_and_straggle_matching() {
        let p = FaultPlan::new(0)
            .with_join(4, "solve-iteration-3")
            .with_join(5, "solve-iteration-3")
            .with_straggle(2, "ras");
        assert!(p.is_active());
        assert_eq!(p.joins_at("solve-iteration-3").collect::<Vec<_>>(), [4, 5]);
        assert_eq!(p.joins_at("ras").count(), 0);
        assert!(p.straggles(2, "ras"));
        assert!(!p.straggles(2, "deflation"));
        assert!(!p.straggles(1, "ras"));
    }

    #[test]
    fn inactive_plan_is_free() {
        let p = FaultPlan::new(123);
        assert!(!p.is_active());
        assert_eq!(p.message_faults(0, 1, 2, 3), (0, 0.0));
    }

    #[test]
    fn retry_charge_backs_off() {
        let pol = RetryPolicy {
            max_retries: 3,
            timeout: 1e-4,
            backoff: 2.0,
            jitter: 0.0,
            max_retransmits: 4,
        };
        assert!((pol.charge(0) - 1e-4).abs() < 1e-18);
        assert!((pol.charge(2) - 4e-4).abs() < 1e-18);
    }

    #[test]
    fn jitter_is_deterministic_bounded_and_off_by_default() {
        let plain = RetryPolicy::default();
        assert_eq!(plain.charge_jittered(3, 77), plain.charge(3));
        let pol = RetryPolicy::bounded_jittered();
        for attempt in 0..6 {
            for salt in [1u64, 99, 12345] {
                let a = pol.charge_jittered(attempt, salt);
                let b = pol.charge_jittered(attempt, salt);
                assert_eq!(a, b, "jitter must replay identically");
                let base = pol.charge(attempt);
                assert!(a >= base * (1.0 - pol.jitter / 2.0) - 1e-18);
                assert!(a <= base * (1.0 + pol.jitter / 2.0) + 1e-18);
            }
        }
        // Different salts must actually decorrelate somewhere.
        let varies = (0..64).any(|s| pol.charge_jittered(1, s) != pol.charge_jittered(1, s + 64));
        assert!(varies);
    }

    #[test]
    fn collective_faults_are_deterministic_and_gated() {
        let off = FaultPlan::new(9);
        assert_eq!(off.collective_faults(2, 5), (0, 0.0));
        let p = FaultPlan::new(9).with_drops(0.5, 2).with_delays(0.25, 1e-3);
        let mut dropped = 0;
        for idx in 0..1000 {
            let d = p.collective_faults(1, idx);
            assert_eq!(d, p.collective_faults(1, idx));
            if d.0 > 0 {
                dropped += 1;
            }
        }
        let rate = dropped as f64 / 1000.0;
        assert!((rate - 0.5).abs() < 0.08, "collective drop rate {rate}");
    }

    #[test]
    fn corrupt_specs_match_phase_rank_and_class() {
        let p = FaultPlan::new(7).with_corrupt("exchange", Some(1), TagClass::P2p, 42);
        assert!(p.is_active());
        assert!(p.has_corruptions());
        // Matching phase + sender rank fires exactly once (non-persistent).
        let hit = p.corrupt_p2p("exchange", 1, 0, 5, 0);
        assert!(hit.is_some());
        assert_eq!(hit.unwrap().0, 1);
        // Wrong phase, wrong sender, or collective class: no corruption.
        assert!(p.corrupt_p2p("coarse-gather", 1, 0, 5, 0).is_none());
        assert!(p.corrupt_p2p("exchange", 2, 0, 5, 0).is_none());
        assert!(p.corrupt_collective("exchange", 1).is_none());
    }

    #[test]
    fn corrupt_bit_choice_is_deterministic_and_seeded() {
        let p = FaultPlan::new(7).with_corrupt("exchange", None, TagClass::Any, 42);
        let a = p.corrupt_p2p("exchange", 0, 1, 9, 3).unwrap();
        let b = p.corrupt_p2p("exchange", 0, 1, 9, 3).unwrap();
        assert_eq!(a, b, "same message identity must replay identically");
        let c = p.corrupt_p2p("exchange", 0, 1, 9, 4).unwrap();
        assert_ne!(a.1, c.1, "message index must vary the flipped bit");
        let q = FaultPlan::new(7).with_corrupt("exchange", None, TagClass::Any, 43);
        let d = q.corrupt_p2p("exchange", 0, 1, 9, 3).unwrap();
        assert_ne!(a.1, d.1, "seed must vary the flipped bit");
        // Any-class plans also corrupt collectives.
        assert!(p.corrupt_collective("exchange", 0).is_some());
    }

    #[test]
    fn persistent_corruption_exhausts_any_budget() {
        let p = FaultPlan::new(7).with_corrupt_persistent("gather", None, TagClass::Collective, 1);
        assert_eq!(p.corrupt_collective("gather", 3), Some(u32::MAX));
        assert!(p.corrupt_p2p("gather", 0, 1, 2, 0).is_none());
        let (n, _) = FaultPlan::new(7)
            .with_corrupt_persistent("gather", None, TagClass::P2p, 1)
            .corrupt_p2p("gather", 0, 1, 2, 0)
            .unwrap();
        assert_eq!(n, u32::MAX);
    }
}
