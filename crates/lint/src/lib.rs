//! # dd-lint
//!
//! Syntax-level invariant checks for the runtime crates. These are rules
//! the compiler cannot express — they encode *project* contracts:
//!
//! * **wallclock** — no `Instant::now` / `SystemTime` outside
//!   `crates/comm/src/time.rs`: the runtime is deterministic under virtual
//!   time; wall-clock reads anywhere else break replay and the model
//!   checker. (Benches are audited exceptions in `dd-lint.allow`.)
//! * **unwrap-expect** — no `.unwrap()` / `.expect(` in the runtime paths
//!   (`crates/core/src/spmd.rs`, `crates/comm/src/comm.rs`) outside test
//!   code: recoverable conditions must flow through typed errors; the few
//!   true invariant panics are centralized in audited helpers.
//! * **phase-balance** — every telemetry phase saved with
//!   `trace_phase_name()` must be restored with `trace_phase(&saved)`:
//!   an unbalanced scope silently misattributes all later telemetry.
//! * **wire-size** — a `WireSize` impl for a struct with heap-carrying
//!   fields (`Vec`, `String`, boxes, maps) must mention every such field:
//!   an under-counted wire size silently corrupts the α–β cost model.
//!   (Impl *existence* for sent types is already enforced by trait bounds.)
//! * **std-sync** — no construction of raw `std::sync` blocking primitives
//!   (`Mutex`, `Condvar`, `RwLock`) in the runtime crates outside
//!   `crates/comm/src/sync.rs`: blocking must route through `SyncBackend`
//!   or it is invisible to dd-check's scheduler.
//! * **recovery-retry** — inside a `recovery-*` telemetry phase every
//!   wait must be fallible and bounded: the infallible blocking
//!   primitives (`.recv(`, `.barrier()`, plain collectives) and
//!   `RetryPolicy::unbounded` are banned there. Recovery runs on a world
//!   that has already lost a rank; an unbounded wait can hang the
//!   survivors on a second death instead of surfacing a typed error.
//! * **suspected-bounded** — `Suspected` handling inside a `recovery-*`
//!   phase must be visibly bounded (a `deadline` / `k_missed` /
//!   `SuspicionPolicy` budget or an explicitly bounded/timeout wait
//!   nearby): a suspected straggler may still make progress, and waiting
//!   for it without a budget turns suspicion back into a hang.
//! * **payload-clone** — no `.clone()` / `.to_vec()` on the payload
//!   expression of a `send(` call in the runtime crates: a buffer copied
//!   per destination turns an O(1) fan-out into O(P) memory traffic the
//!   α–β model never sees. Share the buffer instead (`Arc<Vec<f64>>`
//!   payloads are zero-copy and charge identical wire bytes — see
//!   `WireSize for Arc<T>` in dd-comm) or move the vector into the send.
//! * **serve-apply** — no re-factorization inside the resident apply
//!   path: `trace_phase("serve-apply")` scopes and the bodies of the
//!   `try_apply*` entry points the solve server routes that phase
//!   through. The serving contract is that applies reuse the resident
//!   setup (re-setups run under `serve-setup`); a factorization smuggled
//!   into the apply path silently turns every request back into a
//!   one-shot run and voids the amortization the server exists for.
//!
//! Audited exceptions live in `dd-lint.allow` at the workspace root, one
//! per line: `rule path-substring code-substring # justification`. The
//! justification is mandatory; entries that stop matching anything are
//! reported so the file cannot rot.

use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based.
    pub line: usize,
    pub snippet: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule,
            self.snippet.trim()
        )
    }
}

/// A source file presented to the rules.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Raw text, used for snippets and allowlist matching.
    pub raw: String,
    /// Comment- and string-stripped text (line structure preserved), used
    /// for all pattern matching so prose never trips a rule.
    pub code: String,
}

impl SourceFile {
    pub fn new(path: impl Into<String>, raw: impl Into<String>) -> Self {
        let raw = raw.into();
        let code = strip_comments_and_strings(&raw);
        SourceFile {
            path: path.into(),
            raw,
            code,
        }
    }

    fn raw_line(&self, line: usize) -> &str {
        self.raw.lines().nth(line - 1).unwrap_or("")
    }
}

/// Replace comment bodies and string-literal contents with spaces,
/// preserving line breaks (and therefore line numbers). Handles `//`,
/// nested `/* */`, `"…"` with escapes, `r"…"`/`r#"…"#`, and char
/// literals; lifetimes (`'a`) are left alone.
pub fn strip_comments_and_strings(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    let n = b.len();
    let keep_or_blank = |c: char| if c == '\n' { '\n' } else { ' ' };
    while i < n {
        let c = b[i];
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            while i < n && b[i] != '\n' {
                out.push(' ');
                i += 1;
            }
        } else if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 1;
            out.push_str("  ");
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    out.push_str("  ");
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(keep_or_blank(b[i]));
                    i += 1;
                }
            }
        } else if c == 'r' && i + 1 < n && (b[i + 1] == '"' || b[i + 1] == '#') {
            // Raw string: r"…" or r#"…"# (any hash count).
            let mut j = i + 1;
            let mut hashes = 0;
            while j < n && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < n && b[j] == '"' {
                out.push('r');
                for _ in 0..hashes {
                    out.push('#');
                }
                out.push('"');
                i = j + 1;
                'raw: while i < n {
                    if b[i] == '"' {
                        let mut k = i + 1;
                        let mut seen = 0;
                        while k < n && b[k] == '#' && seen < hashes {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            out.push('"');
                            for _ in 0..hashes {
                                out.push('#');
                            }
                            i = k;
                            break 'raw;
                        }
                    }
                    out.push(keep_or_blank(b[i]));
                    i += 1;
                }
            } else {
                out.push(c);
                i += 1;
            }
        } else if c == '"' {
            out.push('"');
            i += 1;
            while i < n {
                if b[i] == '\\' && i + 1 < n {
                    out.push_str("  ");
                    i += 2;
                } else if b[i] == '"' {
                    out.push('"');
                    i += 1;
                    break;
                } else {
                    out.push(keep_or_blank(b[i]));
                    i += 1;
                }
            }
        } else if c == '\'' {
            // Char literal ('x', '\n', '\u{…}') vs lifetime ('a). A char
            // literal always has a closing quote within a few chars.
            let close = (i + 1..n.min(i + 12)).find(|&k| b[k] == '\'' && b[k - 1] != '\\');
            match close {
                Some(k) if k > i + 1 || b[i + 1] == '\\' => {
                    out.push('\'');
                    for _ in i + 1..k {
                        out.push(' ');
                    }
                    out.push('\'');
                    i = k + 1;
                }
                _ => {
                    out.push(c);
                    i += 1;
                }
            }
        } else {
            out.push(c);
            i += 1;
        }
    }
    out
}

/// True when the match at `pos` is not preceded by an identifier char —
/// so `Mutex::new` does not match `SyncMutex::new`.
fn token_start(code: &str, pos: usize) -> bool {
    code[..pos]
        .chars()
        .next_back()
        .is_none_or(|c| !c.is_alphanumeric() && c != '_')
}

/// Yield the line of each occurrence of `needle` in the stripped code.
/// Identifier-like needles only match at a token boundary, so
/// `Mutex::new` does not match `SyncMutex::new`; needles starting with
/// punctuation (`.unwrap()`) are inherently anchored already.
fn occurrences<'a>(file: &'a SourceFile, needle: &'a str) -> impl Iterator<Item = usize> + 'a {
    let anchored = needle
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_');
    let mut from = 0;
    std::iter::from_fn(move || {
        while let Some(rel) = file.code[from..].find(needle) {
            let pos = from + rel;
            from = pos + needle.len();
            if !anchored || token_start(&file.code, pos) {
                let line = file.code[..pos].matches('\n').count() + 1;
                return Some(line);
            }
        }
        None
    })
}

fn finding(rule: &'static str, file: &SourceFile, line: usize) -> Finding {
    Finding {
        rule,
        path: file.path.clone(),
        line,
        snippet: file.raw_line(line).to_string(),
    }
}

/// First line of the file's `#[cfg(test)]` region (the runtime files keep
/// tests at the tail), or `usize::MAX` when there is none.
fn test_region_start(file: &SourceFile) -> usize {
    file.code
        .lines()
        .position(|l| l.contains("#[cfg(test)]"))
        .map_or(usize::MAX, |idx| idx + 1)
}

/// Rule: no wall-clock reads outside `crates/comm/src/time.rs`.
pub fn rule_wallclock(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        if f.path.ends_with("comm/src/time.rs") {
            continue;
        }
        for needle in ["Instant::now", "SystemTime"] {
            for line in occurrences(f, needle) {
                out.push(finding("wallclock", f, line));
            }
        }
    }
    out
}

/// Files whose non-test code must stay free of `.unwrap()` / `.expect(`.
const RUNTIME_PATHS: [&str; 2] = ["crates/core/src/spmd.rs", "crates/comm/src/comm.rs"];

/// Rule: typed errors only in the runtime paths.
pub fn rule_unwrap_expect(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        if !RUNTIME_PATHS.iter().any(|p| f.path.ends_with(p)) {
            continue;
        }
        let tests_at = test_region_start(f);
        for needle in [".unwrap()", ".expect("] {
            for line in occurrences(f, needle) {
                if line < tests_at {
                    out.push(finding("unwrap-expect", f, line));
                }
            }
        }
    }
    out
}

/// Rule: every `let saved = …trace_phase_name();` must be matched by a
/// later `trace_phase(&saved)` in the same file.
pub fn rule_phase_balance(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        for (idx, l) in f.code.lines().enumerate() {
            if !l.contains("trace_phase_name()") {
                continue;
            }
            let Some(eq) = l.find('=') else { continue };
            let Some(let_pos) = l.find("let ") else {
                continue;
            };
            let var = l[let_pos + 4..eq].trim().trim_end_matches(':').trim();
            if var.is_empty() || !var.chars().all(|c| c.is_alphanumeric() || c == '_') {
                continue;
            }
            let rest: String = f.code.lines().skip(idx + 1).collect::<Vec<_>>().join("\n");
            let restored = rest.contains(&format!("trace_phase(&{var})"))
                || rest.contains(&format!("trace_phase({var}"));
            if !restored {
                out.push(finding("phase-balance", f, idx + 1));
            }
        }
    }
    out
}

/// Extract the `{…}` block starting at the first `{` at or after `pos`.
fn brace_block(code: &str, pos: usize) -> Option<&str> {
    let open = pos + code[pos..].find('{')?;
    let mut depth = 0;
    for (off, c) in code[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&code[open..open + off + 1]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Field names of `struct name` whose types carry heap data the α–β model
/// must see (`Vec`, `String`, `Box`, maps, queues).
fn heap_fields(files: &[SourceFile], name: &str) -> Vec<String> {
    const HEAP: [&str; 6] = ["Vec<", "String", "Box<", "HashMap", "BTreeMap", "VecDeque"];
    for f in files {
        for pat in [format!("struct {name} {{"), format!("struct {name}<")] {
            let Some(pos) = f.code.find(&pat) else {
                continue;
            };
            let Some(body) = brace_block(&f.code, pos) else {
                continue;
            };
            return body
                .split(['\n', ','])
                .filter_map(|l| {
                    let (field, ty) = l.split_once(':')?;
                    let field = field
                        .trim()
                        .trim_start_matches('{')
                        .trim()
                        .trim_start_matches("pub ")
                        .trim();
                    if field.chars().all(|c| c.is_alphanumeric() || c == '_')
                        && !field.is_empty()
                        && HEAP.iter().any(|h| ty.contains(h))
                    {
                        Some(field.to_string())
                    } else {
                        None
                    }
                })
                .collect();
        }
    }
    Vec::new()
}

/// Rule: a `WireSize` impl for a struct with heap-carrying fields must
/// mention every such field in its body.
pub fn rule_wire_size(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        let mut from = 0;
        while let Some(rel) = f.code[from..].find("impl WireSize for ") {
            let pos = from + rel;
            from = pos + 1;
            let after = &f.code[pos + "impl WireSize for ".len()..];
            let name: String = after
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if name.is_empty() {
                continue;
            }
            let Some(body) = brace_block(&f.code, pos) else {
                continue;
            };
            for field in heap_fields(files, &name) {
                if !body.contains(&field) {
                    let line = f.code[..pos].matches('\n').count() + 1;
                    let mut fnd = finding("wire-size", f, line);
                    fnd.snippet = format!("impl WireSize for {name} ignores heap field `{field}`");
                    out.push(fnd);
                }
            }
        }
    }
    out
}

/// Crates whose blocking must route through `SyncBackend`.
const SYNC_SCOPED: [&str; 2] = ["crates/comm/src/", "crates/core/src/"];

/// Rule: no raw `std::sync` blocking primitives in the runtime crates
/// outside the backend seam itself — neither constructed (`Mutex::new(`)
/// nor named in type position (`Mutex<`, which also catches primitives
/// smuggled in through `#[derive(Default)]` with no construction
/// expression at all).
pub fn rule_std_sync(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        if !SYNC_SCOPED.iter().any(|p| f.path.contains(p)) || f.path.ends_with("comm/src/sync.rs") {
            continue;
        }
        for needle in [
            "Mutex::new(",
            "Condvar::new(",
            "RwLock::new(",
            "Mutex<",
            "RwLock<",
        ] {
            for line in occurrences(f, needle) {
                out.push(finding("std-sync", f, line));
            }
        }
    }
    out
}

/// Infallible blocking waits banned inside `recovery-*` phases (their
/// `try_` counterparts honor the ambient [`dd_comm::RetryPolicy`]).
const BLOCKING_WAITS: [&str; 11] = [
    ".recv(",
    ".recv::<",
    ".barrier()",
    ".allreduce_sum(",
    ".allreduce_sum_vec(",
    ".allreduce_max(",
    ".allgather(",
    ".gather(",
    ".gatherv(",
    ".scatter(",
    ".wait_reduce(",
];

/// Per-line flags marking the `recovery-*` telemetry regions of a file: a
/// region runs from a `trace_phase("recovery-…")` call to the next
/// `trace_phase(` call (the restore or the next phase) — string contents
/// are blanked in the stripped code, so the marker is located on the raw
/// line, gated by the stripped line still containing the call (prose
/// never trips it). This is a lexical approximation of the dynamic phase
/// scope: helpers called from a recovery phase are out of reach, but
/// everything *written* in one is covered.
fn recovery_regions(f: &SourceFile) -> Vec<bool> {
    let mut in_recovery = Vec::with_capacity(f.code.lines().count());
    let mut inside = false;
    for (code_l, raw_l) in f.code.lines().zip(f.raw.lines()) {
        if code_l.contains("trace_phase(") {
            inside = raw_l.contains("trace_phase(\"recovery-");
        }
        in_recovery.push(inside);
    }
    in_recovery
}

/// Rule: no infallible blocking waits and no `RetryPolicy::unbounded`
/// lexically inside a `recovery-*` telemetry phase (see
/// `recovery_regions` for the region definition).
pub fn rule_recovery_retry(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        let in_recovery = recovery_regions(f);
        if !in_recovery.iter().any(|&b| b) {
            continue;
        }
        let tests_at = test_region_start(f);
        for needle in BLOCKING_WAITS
            .iter()
            .chain(std::iter::once(&"RetryPolicy::unbounded"))
        {
            for line in occurrences(f, needle) {
                if line < tests_at && in_recovery.get(line - 1).copied().unwrap_or(false) {
                    out.push(finding("recovery-retry", f, line));
                }
            }
        }
    }
    out
}

/// Markers that make a `Suspected` handling site visibly bounded: a
/// suspicion budget (`deadline`, `k_missed`, a `SuspicionPolicy` in
/// hand) or an explicitly bounded wait (`bounded`, `timeout`).
const BOUND_MARKERS: [&str; 5] = [
    "deadline",
    "k_missed",
    "SuspicionPolicy",
    "bounded",
    "timeout",
];

/// Rule: `Suspected` handling inside a `recovery-*` telemetry phase must
/// be visibly bounded. A straggler is *suspected* precisely because it
/// still might make progress; recovery code that reacts to `Suspected`
/// by waiting for it (rather than under a budget that can evict) turns
/// the suspicion layer back into an unbounded hang. Lexically: every
/// line mentioning `Suspected` inside a recovery region must carry one
/// of `BOUND_MARKERS` within two lines.
pub fn rule_suspected_bounded(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        let in_recovery = recovery_regions(f);
        if !in_recovery.iter().any(|&b| b) {
            continue;
        }
        let tests_at = test_region_start(f);
        let lines: Vec<&str> = f.code.lines().collect();
        for line in occurrences(f, "Suspected") {
            if line >= tests_at || !in_recovery.get(line - 1).copied().unwrap_or(false) {
                continue;
            }
            let lo = line.saturating_sub(3);
            let hi = (line + 2).min(lines.len());
            let window = &lines[lo..hi];
            let bounded = window
                .iter()
                .any(|l| BOUND_MARKERS.iter().any(|m| l.contains(m)));
            if !bounded {
                out.push(finding("suspected-bounded", f, line));
            }
        }
    }
    out
}

/// Extract the `(…)` argument block starting at the `(` at `open`.
fn paren_block(code: &str, open: usize) -> Option<&str> {
    if code.as_bytes().get(open) != Some(&b'(') {
        return None;
    }
    let mut depth = 0;
    for (off, c) in code[open..].char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&code[open..open + off + 1]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Crates whose `send(` payloads must not be freshly copied buffers.
const PAYLOAD_SCOPED: [&str; 4] = [
    "crates/comm/src/",
    "crates/core/src/",
    "crates/solver/src/",
    "crates/serve/src/",
];

/// Rule: no `.clone()` / `.to_vec()` inside the argument list of a
/// `send(` call in the runtime crates (outside test code). The payload of
/// a send should move or be `Arc`-shared; a per-send buffer copy is heap
/// traffic invisible to the α–β cost model, and on a fan-out it multiplies
/// by the destination count. `Arc::clone(&x)` (a pointer bump) passes.
pub fn rule_payload_clone(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        if !PAYLOAD_SCOPED.iter().any(|p| f.path.contains(p))
            || f.path.ends_with("/tests.rs")
            || f.path.contains("/tests/")
        {
            continue;
        }
        let tests_at = test_region_start(f);
        let mut from = 0;
        while let Some(rel) = f.code[from..].find("send(") {
            let pos = from + rel;
            from = pos + 1;
            if !token_start(&f.code, pos) && f.code.as_bytes().get(pos - 1) != Some(&b'.') {
                continue;
            }
            let Some(args) = paren_block(&f.code, pos + "send".len()) else {
                continue;
            };
            for needle in [".clone()", ".to_vec()"] {
                let mut inner = 0;
                while let Some(r) = args[inner..].find(needle) {
                    let abs = pos + "send".len() + inner + r;
                    inner += r + needle.len();
                    let line = f.code[..abs].matches('\n').count() + 1;
                    if line < tests_at {
                        out.push(finding("payload-clone", f, line));
                    }
                }
            }
        }
    }
    out
}

/// Factorization entry points banned in the resident apply path (the
/// solve-server contract: applies reuse the resident setup, re-setups run
/// under the `serve-setup` phase).
const REFACTOR_TOKENS: [&str; 6] = [
    "SparseLdlt::factor",
    "DistLdlt::factor",
    "DistLdlt::try_factor",
    "DenseLdlt::factor",
    ".refactor(",
    "try_setup",
];

/// Per-line flags marking the resident apply path of a file: lexical
/// `serve-apply` telemetry regions (a `trace_phase("serve-apply")` /
/// `trace_scope("serve-apply")` call up to the next trace call, the same
/// approximation as `recovery_regions`) plus the brace-bodies of every
/// `fn try_apply*` — the reentrant entry points the server routes the
/// `serve-apply` phase through as a parameter, invisible to a purely
/// literal region scan.
fn serve_apply_regions(f: &SourceFile) -> Vec<bool> {
    let n_lines = f.code.lines().count();
    let mut region = vec![false; n_lines];
    let mut inside = false;
    for (i, (code_l, raw_l)) in f.code.lines().zip(f.raw.lines()).enumerate() {
        if code_l.contains("trace_phase(") || code_l.contains("trace_scope(") {
            inside = raw_l.contains("\"serve-apply\"");
        }
        if inside {
            region[i] = true;
        }
    }
    let mut from = 0;
    while let Some(rel) = f.code[from..].find("fn try_apply") {
        let pos = from + rel;
        from = pos + 1;
        if !token_start(&f.code, pos) {
            continue;
        }
        let Some(open_rel) = f.code[pos..].find('{') else {
            continue;
        };
        let Some(body) = brace_block(&f.code, pos) else {
            continue;
        };
        let first = f.code[..pos + open_rel].matches('\n').count();
        let last = first + body.matches('\n').count();
        for flag in region.iter_mut().take((last + 1).min(n_lines)).skip(first) {
            *flag = true;
        }
    }
    region
}

/// Rule: no factorization inside the resident apply path (see
/// `serve_apply_regions` for the region definition).
pub fn rule_serve_apply(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        let region = serve_apply_regions(f);
        if !region.iter().any(|&b| b) {
            continue;
        }
        let tests_at = test_region_start(f);
        for needle in REFACTOR_TOKENS {
            for line in occurrences(f, needle) {
                if line < tests_at && region.get(line - 1).copied().unwrap_or(false) {
                    out.push(finding("serve-apply", f, line));
                }
            }
        }
    }
    out
}

/// Run every rule.
pub fn run_rules(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    out.extend(rule_wallclock(files));
    out.extend(rule_unwrap_expect(files));
    out.extend(rule_phase_balance(files));
    out.extend(rule_wire_size(files));
    out.extend(rule_std_sync(files));
    out.extend(rule_recovery_retry(files));
    out.extend(rule_suspected_bounded(files));
    out.extend(rule_payload_clone(files));
    out.extend(rule_serve_apply(files));
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out
}

/// One audited exception.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub rule: String,
    pub path_sub: String,
    pub code_sub: String,
    pub justification: String,
    pub line: usize,
}

/// The parsed `dd-lint.allow` file.
#[derive(Debug, Default)]
pub struct Allowlist {
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parse the allowlist format; malformed lines (no justification,
    /// fewer than three fields) are hard errors so the file stays honest.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (spec, justification) = line
                .split_once(" # ")
                .ok_or_else(|| format!("dd-lint.allow:{}: missing ` # justification`", idx + 1))?;
            let mut parts = spec.split_whitespace();
            let (Some(rule), Some(path_sub), Some(code_sub)) =
                (parts.next(), parts.next(), parts.next())
            else {
                return Err(format!(
                    "dd-lint.allow:{}: expected `rule path-substring code-substring # why`",
                    idx + 1
                ));
            };
            entries.push(AllowEntry {
                rule: rule.to_string(),
                path_sub: path_sub.to_string(),
                code_sub: code_sub.to_string(),
                justification: justification.trim().to_string(),
                line: idx + 1,
            });
        }
        Ok(Allowlist { entries })
    }

    fn matches(&self, f: &Finding, used: &mut [bool]) -> bool {
        let mut hit = false;
        for (i, e) in self.entries.iter().enumerate() {
            if e.rule == f.rule && f.path.contains(&e.path_sub) && f.snippet.contains(&e.code_sub) {
                used[i] = true;
                hit = true;
            }
        }
        hit
    }
}

/// Outcome of a full lint pass.
pub struct LintResult {
    /// Findings not covered by the allowlist — the failures.
    pub findings: Vec<Finding>,
    /// Findings suppressed by audited exceptions.
    pub suppressed: usize,
    /// Allowlist entries (1-based line numbers) that matched nothing —
    /// stale audits to clean up.
    pub stale_allows: Vec<usize>,
    pub files_scanned: usize,
}

/// Collect `.rs` sources under `<root>/src` and `<root>/crates`, skipping
/// `target/`.
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    for top in ["src", "crates"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(root, &dir, &mut out)?;
        }
    }
    out.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name != "target" && !name.starts_with('.') {
                walk(root, &path, out)?;
            }
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile::new(rel, std::fs::read_to_string(&path)?));
        }
    }
    Ok(())
}

/// Full pass: scan `root`, apply rules, subtract `root/dd-lint.allow`.
pub fn lint(root: &Path) -> Result<LintResult, String> {
    let files = collect_sources(root).map_err(|e| format!("scanning {}: {e}", root.display()))?;
    let allow_path = root.join("dd-lint.allow");
    let allow = match std::fs::read_to_string(&allow_path) {
        Ok(text) => Allowlist::parse(&text)?,
        Err(_) => Allowlist::default(),
    };
    let mut used = vec![false; allow.entries.len()];
    let mut findings = Vec::new();
    let mut suppressed = 0;
    for f in run_rules(&files) {
        if allow.matches(&f, &mut used) {
            suppressed += 1;
        } else {
            findings.push(f);
        }
    }
    let stale_allows = used
        .iter()
        .enumerate()
        .filter(|(_, u)| !**u)
        .map(|(i, _)| allow.entries[i].line)
        .collect();
    Ok(LintResult {
        findings,
        suppressed,
        stale_allows,
        files_scanned: files.len(),
    })
}

/// Workspace root, assuming this crate stays at `crates/lint`.
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, raw: &str) -> SourceFile {
        SourceFile::new(path, raw)
    }

    #[test]
    fn stripper_blanks_comments_and_strings_preserving_lines() {
        let src = "let a = \"Instant::now\"; // Instant::now\n/* SystemTime */ let b = 1;\n";
        let code = strip_comments_and_strings(src);
        assert_eq!(code.lines().count(), src.lines().count());
        assert!(!code.contains("Instant::now"));
        assert!(!code.contains("SystemTime"));
        assert!(code.contains("let b = 1;"));
    }

    #[test]
    fn stripper_handles_raw_strings_and_chars() {
        let src = "let s = r#\"Instant::now \" still\"#; let c = ':'; let l: &'static str = x;\n";
        let code = strip_comments_and_strings(src);
        assert!(!code.contains("Instant::now"));
        assert!(code.contains("&'static str"));
    }

    #[test]
    fn planted_wallclock_in_core_is_caught() {
        let files = [file(
            "crates/core/src/spmd.rs",
            "fn f() { let t = std::time::Instant::now(); }\n",
        )];
        let got = rule_wallclock(&files);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].rule, "wallclock");
        assert_eq!(got[0].line, 1);
    }

    #[test]
    fn wallclock_allowed_in_time_rs_and_comments() {
        let files = [
            file("crates/comm/src/time.rs", "let t = Instant::now();\n"),
            file("crates/core/src/spmd.rs", "// uses Instant::now upstream\n"),
        ];
        assert!(rule_wallclock(&files).is_empty());
    }

    #[test]
    fn unwrap_in_runtime_path_is_caught_but_tests_are_exempt() {
        let files = [file(
            "crates/comm/src/comm.rs",
            "fn f() { x.unwrap(); y.expect(\"boom\"); }\n#[cfg(test)]\nmod tests { fn g() { z.unwrap(); } }\n",
        )];
        let got = rule_unwrap_expect(&files);
        assert_eq!(got.len(), 2, "{got:?}");
        assert!(got.iter().all(|f| f.line == 1));
    }

    #[test]
    fn unwrap_outside_runtime_paths_is_ignored() {
        let files = [file("crates/linalg/src/lib.rs", "x.unwrap();\n")];
        assert!(rule_unwrap_expect(&files).is_empty());
    }

    #[test]
    fn unbalanced_phase_scope_is_caught() {
        let bad = file(
            "crates/core/src/spmd.rs",
            "let prev = comm.trace_phase_name();\ncomm.trace_phase(\"inner\");\n",
        );
        let got = rule_phase_balance(std::slice::from_ref(&bad));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].rule, "phase-balance");

        let good = file(
            "crates/core/src/spmd.rs",
            "let prev = comm.trace_phase_name();\ncomm.trace_phase(\"inner\");\ncomm.trace_phase(&prev);\n",
        );
        assert!(rule_phase_balance(std::slice::from_ref(&good)).is_empty());
    }

    #[test]
    fn under_counted_wire_size_is_caught() {
        let files = [file(
            "crates/core/src/msg.rs",
            "pub struct Panel { pub rows: Vec<f64>, pub tag: u64 }\n\
             impl WireSize for Panel { fn wire_bytes(&self) -> usize { 8 } }\n",
        )];
        let got = rule_wire_size(&files);
        assert_eq!(got.len(), 1);
        assert!(got[0].snippet.contains("rows"), "{got:?}");

        let ok = [file(
            "crates/core/src/msg.rs",
            "pub struct Panel { pub rows: Vec<f64>, pub tag: u64 }\n\
             impl WireSize for Panel { fn wire_bytes(&self) -> usize { 8 + self.rows.len() * 8 } }\n",
        )];
        assert!(rule_wire_size(&ok).is_empty());
    }

    #[test]
    fn raw_sync_primitive_in_runtime_crate_is_caught() {
        let files = [
            file("crates/comm/src/comm.rs", "let m = Mutex::new(0);\n"),
            file(
                "crates/comm/src/comm.rs",
                "let m = SyncMutex::new(&b, 0);\n",
            ),
            file("crates/comm/src/sync.rs", "let m = Mutex::new(0);\n"),
            file("crates/linalg/src/lib.rs", "let m = Mutex::new(0);\n"),
        ];
        let got = rule_std_sync(&files);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].path, "crates/comm/src/comm.rs");
    }

    #[test]
    fn derived_default_mutex_field_is_caught_in_type_position() {
        let files = [
            file(
                "crates/core/src/recovery.rs",
                "#[derive(Default)]\nstruct Store { slots: Mutex<Vec<u8>> }\n",
            ),
            file(
                "crates/core/src/recovery.rs",
                "struct Ok2 { slots: SyncMutex<Vec<u8>> }\n",
            ),
        ];
        let got = rule_std_sync(&files);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].line, 2);
    }

    #[test]
    fn unbounded_wait_in_recovery_phase_is_caught() {
        let bad = file(
            "crates/core/src/recovery.rs",
            "comm.trace_phase(\"recovery-adopt\");\n\
             let v = comm.recv::<u64>(0, 1);\n\
             let p = RetryPolicy::unbounded();\n\
             comm.trace_phase(\"solve\");\n\
             comm.barrier();\n",
        );
        let got = rule_recovery_retry(std::slice::from_ref(&bad));
        assert_eq!(got.len(), 2, "{got:?}");
        assert!(got.iter().all(|f| f.rule == "recovery-retry"));
        assert_eq!((got[0].line, got[1].line), (2, 3));
    }

    #[test]
    fn bounded_waits_and_other_phases_pass_recovery_rule() {
        let ok = file(
            "crates/core/src/recovery.rs",
            "comm.trace_phase(\"recovery-assembly\");\n\
             let v = comm.try_recv_timeout::<u64>(0, 1, &comm.retry_policy())?;\n\
             let w = split.try_gatherv(0, rows)?;\n\
             comm.trace_phase(&prev);\n\
             comm.recv::<u64>(0, 1);\n\
             // comm.trace_phase(\"recovery-x\"); prose never opens a region\n\
             comm.barrier();\n",
        );
        assert!(rule_recovery_retry(std::slice::from_ref(&ok)).is_empty());
    }

    #[test]
    fn recovery_rule_exempts_test_regions() {
        let ok = file(
            "crates/core/src/recovery.rs",
            "comm.trace_phase(\"recovery-adopt\");\n\
             let v = comm.try_recv_timeout::<u64>(0, 1, &p)?;\n\
             #[cfg(test)]\n\
             mod tests { fn f() { comm.recv::<u64>(0, 1); } }\n",
        );
        assert!(rule_recovery_retry(std::slice::from_ref(&ok)).is_empty());
    }

    #[test]
    fn unbounded_suspected_handling_in_recovery_phase_is_caught() {
        let bad = file(
            "crates/core/src/recovery.rs",
            "comm.trace_phase(\"recovery-agree\");\n\
             while states.iter().any(|s| *s == RankState::Suspected) {\n\
             comm.probe();\n\
             }\n\
             comm.trace_phase(\"solve\");\n",
        );
        let got = rule_suspected_bounded(std::slice::from_ref(&bad));
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].rule, "suspected-bounded");
        assert_eq!(got[0].line, 2);
    }

    #[test]
    fn budgeted_suspected_handling_passes() {
        let ok = file(
            "crates/core/src/recovery.rs",
            "comm.trace_phase(\"recovery-agree\");\n\
             let policy = opts.suspicion.unwrap_or_default();\n\
             if states[r] == RankState::Suspected && beats[r] >= policy.k_missed {\n\
             comm.evict(r);\n\
             }\n\
             comm.trace_phase(\"solve\");\n",
        );
        assert!(rule_suspected_bounded(std::slice::from_ref(&ok)).is_empty());
    }

    #[test]
    fn suspected_outside_recovery_regions_and_in_tests_is_ignored() {
        let ok = file(
            "crates/core/src/recovery.rs",
            "comm.trace_phase(\"recovery-agree\");\n\
             comm.trace_phase(\"solve\");\n\
             let s = RankState::Suspected;\n\
             #[cfg(test)]\n\
             mod tests { fn f() { assert_eq!(s, RankState::Suspected); } }\n",
        );
        assert!(rule_suspected_bounded(std::slice::from_ref(&ok)).is_empty());
        // No recovery region at all: the rule never fires.
        let none = file("crates/comm/src/comm.rs", "let s = RankState::Suspected;\n");
        assert!(rule_suspected_bounded(std::slice::from_ref(&none)).is_empty());
    }

    #[test]
    fn cloned_send_payload_is_caught() {
        let bad = file(
            "crates/solver/src/dist_ldlt.rs",
            "for k in 0..me {\n\
             comm.send(k, TAG_BWD, x_me.clone());\n\
             }\n\
             comm.send(\n\
             q,\n\
             TAG_FWD,\n\
             rows.to_vec(),\n\
             );\n",
        );
        let got = rule_payload_clone(std::slice::from_ref(&bad));
        assert_eq!(got.len(), 2, "{got:?}");
        assert!(got.iter().all(|f| f.rule == "payload-clone"));
        assert_eq!((got[0].line, got[1].line), (2, 7));
    }

    #[test]
    fn arc_shared_and_moved_send_payloads_pass() {
        let ok = file(
            "crates/solver/src/dist_ldlt.rs",
            "comm.send(k, TAG_BWD, Arc::clone(&x_shared));\n\
             comm.send(q, TAG_FWD, contrib);\n\
             let copy = x.clone();\n\
             resend(&copy);\n",
        );
        assert!(rule_payload_clone(std::slice::from_ref(&ok)).is_empty());
    }

    #[test]
    fn payload_clone_exempts_tests_and_out_of_scope_crates() {
        let files = [
            file(
                "crates/comm/src/comm/tests.rs",
                "comm.send(0, 8, doubled.clone());\n",
            ),
            file("crates/bench/src/lib.rs", "tx.send(v.clone());\n"),
            file(
                "crates/core/src/spmd.rs",
                "#[cfg(test)]\nmod tests { fn f() { comm.send(0, 1, v.clone()); } }\n",
            ),
        ];
        assert!(rule_payload_clone(&files).is_empty());
    }

    #[test]
    fn refactorization_in_apply_body_is_caught() {
        let bad = file(
            "crates/core/src/recovery.rs",
            "pub fn try_apply_on(&self, d: &Decomposition) -> R {\n\
             let f = SparseLdlt::factor(&d.a, ord);\n\
             self.solve(f)\n\
             }\n",
        );
        let got = rule_serve_apply(std::slice::from_ref(&bad));
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].rule, "serve-apply");
        assert_eq!(got[0].line, 2);
    }

    #[test]
    fn refactorization_outside_the_apply_path_passes() {
        let ok = file(
            "crates/core/src/recovery.rs",
            "pub fn try_setup_partitioned(d: &Decomposition) -> R {\n\
             let f = SparseLdlt::factor(&d.a, ord);\n\
             let e = DistLdlt::try_factor(m, b, s);\n\
             }\n\
             pub fn try_apply(&self, rhs: &[f64]) -> R {\n\
             self.resident.solve(rhs)\n\
             }\n",
        );
        assert!(rule_serve_apply(std::slice::from_ref(&ok)).is_empty());
    }

    #[test]
    fn refactorization_in_literal_serve_apply_region_is_caught() {
        let bad = file(
            "crates/serve/src/server.rs",
            "comm.trace_phase(\"serve-apply\");\n\
             let f = x.refactor(&a);\n\
             comm.trace_phase(\"serve-setup\");\n\
             let g = y.refactor(&b);\n",
        );
        let got = rule_serve_apply(std::slice::from_ref(&bad));
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].line, 2, "the re-setup region is legal");
    }

    #[test]
    fn serve_apply_rule_exempts_test_regions() {
        let ok = file(
            "crates/core/src/spmd.rs",
            "pub fn try_apply(&self) -> R { self.solve() }\n\
             #[cfg(test)]\n\
             mod tests { fn f() { let _ = SparseLdlt::factor(&a, o); } }\n",
        );
        assert!(rule_serve_apply(std::slice::from_ref(&ok)).is_empty());
    }

    #[test]
    fn allowlist_suppresses_and_reports_stale_entries() {
        let allow = Allowlist::parse(
            "wallclock crates/bench Instant::now # benches measure real elapsed time\n\
             std-sync crates/comm/src/nonexistent.rs Mutex::new # stale\n",
        )
        .unwrap();
        assert_eq!(allow.entries.len(), 2);
        let f = Finding {
            rule: "wallclock",
            path: "crates/bench/benches/micro.rs".into(),
            line: 3,
            snippet: "let t0 = Instant::now();".into(),
        };
        let mut used = vec![false; 2];
        assert!(allow.matches(&f, &mut used));
        assert!(used[0] && !used[1]);
    }

    #[test]
    fn allowlist_without_justification_is_rejected() {
        assert!(Allowlist::parse("wallclock crates/bench Instant::now\n").is_err());
    }
}
