//! Fingerprinted finding baseline.
//!
//! Replaces the substring-matched `dd-lint.allow` with a machine-checked
//! format: each entry names a rule and the FNV-1a fingerprint of one
//! specific finding. Fingerprints hash `rule | path | witness` — the
//! witness carries the enclosing item and a token-rendered snippet but
//! **no line number**, so entries survive unrelated edits that shift
//! lines yet go stale the moment the underlying code changes shape.
//! Stale entries fail CI, exactly as before.
//!
//! File format (one entry per line):
//!
//! ```text
//! rule fp:0123456789abcdef path # justification
//! ```

use crate::Finding;

/// FNV-1a 64-bit — stable, dependency-free, good enough for a few dozen
/// baseline entries.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of a finding: hash of `rule|path|witness` (line-free).
pub fn fingerprint(rule: &str, path: &str, witness: &str) -> String {
    format!(
        "{:016x}",
        fnv1a(format!("{rule}|{path}|{witness}").as_bytes())
    )
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    pub rule: String,
    pub fp: String,
    pub path: String,
    pub justification: String,
}

impl BaselineEntry {
    pub fn render(&self) -> String {
        format!(
            "{} fp:{} {} # {}",
            self.rule, self.fp, self.path, self.justification
        )
    }
}

/// Parse the baseline file. Lines starting with `#` and blank lines are
/// comments; anything else must parse or the whole run fails (a silently
/// ignored entry is a silently disabled suppression).
pub fn parse(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let mut out = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (head, justification) = match line.split_once(" # ") {
            Some((h, j)) => (h.trim(), j.trim().to_string()),
            None => (line, String::new()),
        };
        let parts: Vec<&str> = head.split_whitespace().collect();
        let [rule, fp, path] = parts[..] else {
            return Err(format!(
                "baseline line {}: expected `rule fp:HEX path`",
                ln + 1
            ));
        };
        let Some(fp) = fp.strip_prefix("fp:") else {
            return Err(format!(
                "baseline line {}: fingerprint must start with `fp:`",
                ln + 1
            ));
        };
        if fp.len() != 16 || !fp.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(format!(
                "baseline line {}: malformed fingerprint `{fp}`",
                ln + 1
            ));
        }
        out.push(BaselineEntry {
            rule: rule.to_string(),
            fp: fp.to_ascii_lowercase(),
            path: path.to_string(),
            justification,
        });
    }
    Ok(out)
}

/// Outcome of matching findings against the baseline.
pub struct Applied {
    /// Findings not covered by any entry — these fail the gate.
    pub active: Vec<Finding>,
    /// Number of findings suppressed by entries.
    pub suppressed: usize,
    /// Entries that matched nothing — these also fail the gate.
    pub stale: Vec<BaselineEntry>,
}

/// Split findings into active vs. suppressed and report stale entries.
pub fn apply(findings: Vec<Finding>, entries: &[BaselineEntry]) -> Applied {
    let mut used = vec![false; entries.len()];
    let mut active = Vec::new();
    let mut suppressed = 0usize;
    for f in findings {
        let hit = entries
            .iter()
            .position(|e| e.rule == f.rule && e.fp == f.fingerprint);
        match hit {
            Some(i) => {
                used[i] = true;
                suppressed += 1;
            }
            None => active.push(f),
        }
    }
    let stale = entries
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(e, _)| e.clone())
        .collect();
    Applied {
        active,
        suppressed,
        stale,
    }
}

/// One-shot converter from the legacy `dd-lint.allow` format
/// (`rule path-substring code-substring # justification`) to the
/// fingerprinted baseline: each legacy entry adopts every current
/// finding it would have suppressed, carrying its justification over.
/// Returns the rendered baseline plus legacy entries that matched
/// nothing (candidates for deletion, not for blind conversion).
pub fn migrate_allow(allow_text: &str, findings: &[Finding]) -> (Vec<BaselineEntry>, Vec<String>) {
    let mut entries: Vec<BaselineEntry> = Vec::new();
    let mut unmatched = Vec::new();
    for line in allow_text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (head, justification) = match line.split_once(" # ") {
            Some((h, j)) => (h.trim(), j.trim().to_string()),
            None => (line, String::new()),
        };
        let mut parts = head.splitn(3, char::is_whitespace);
        let (Some(rule), Some(path_sub), Some(code_sub)) =
            (parts.next(), parts.next(), parts.next())
        else {
            unmatched.push(line.to_string());
            continue;
        };
        let mut hit = false;
        for f in findings {
            if f.rule == rule && f.path.contains(path_sub) && f.snippet.contains(code_sub) {
                hit = true;
                if !entries
                    .iter()
                    .any(|e| e.fp == f.fingerprint && e.rule == f.rule)
                {
                    entries.push(BaselineEntry {
                        rule: f.rule.to_string(),
                        fp: f.fingerprint.clone(),
                        path: f.path.clone(),
                        justification: justification.clone(),
                    });
                }
            }
        }
        if !hit {
            unmatched.push(line.to_string());
        }
    }
    (entries, unmatched)
}

/// Render a full baseline file with its header comment.
pub fn render(entries: &[BaselineEntry]) -> String {
    let mut s = String::from(
        "# Audited exceptions to the dd-analyze invariant pass.\n\
         # Format: rule fp:HEX path # justification\n\
         # Fingerprints hash rule|path|witness (line-free): entries survive line\n\
         # shifts but go stale when the flagged code changes shape. Stale entries\n\
         # fail CI. Regenerate one with: cargo run -p dd-lint --bin dd-analyze -- --print-fingerprints\n\n",
    );
    for e in entries {
        s.push_str(&e.render());
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rule: &'static str, path: &str, witness: &str) -> Finding {
        let fp = fingerprint(rule, path, witness);
        Finding {
            rule,
            path: path.to_string(),
            line: 10,
            snippet: format!("snippet for {witness}"),
            witness: witness.to_string(),
            fingerprint: fp,
        }
    }

    #[test]
    fn fingerprint_is_stable_and_line_free() {
        let a = f("wallclock", "crates/bench/src/x.rs", "W::f: Instant::now");
        let mut b = a.clone();
        b.line = 999; // unrelated edit shifted lines
        assert_eq!(a.fingerprint, b.fingerprint);
        let c = f("wallclock", "crates/bench/src/x.rs", "W::g: Instant::now");
        assert_ne!(a.fingerprint, c.fingerprint);
    }

    #[test]
    fn parse_roundtrip_and_rejects_malformed() {
        let e = BaselineEntry {
            rule: "std-sync".into(),
            fp: "0123456789abcdef".into(),
            path: "crates/comm/src/comm.rs".into(),
            justification: "audited result cells".into(),
        };
        let parsed = parse(&render(std::slice::from_ref(&e))).unwrap();
        assert_eq!(parsed, vec![e]);
        assert!(parse("std-sync nofp crates/x.rs # j").is_err());
        assert!(parse("std-sync fp:xyz crates/x.rs # j").is_err());
    }

    #[test]
    fn apply_splits_active_suppressed_stale() {
        let covered = f("std-sync", "crates/comm/src/comm.rs", "C::new: Mutex::new");
        let fresh = f(
            "wallclock",
            "crates/core/src/spmd.rs",
            "S::go: Instant::now",
        );
        let entries = vec![
            BaselineEntry {
                rule: "std-sync".into(),
                fp: covered.fingerprint.clone(),
                path: covered.path.clone(),
                justification: "ok".into(),
            },
            BaselineEntry {
                rule: "std-sync".into(),
                fp: "deadbeefdeadbeef".into(),
                path: "crates/gone.rs".into(),
                justification: "stale".into(),
            },
        ];
        let got = apply(vec![covered, fresh.clone()], &entries);
        assert_eq!(got.suppressed, 1);
        assert_eq!(got.active.len(), 1);
        assert_eq!(got.active[0].fingerprint, fresh.fingerprint);
        assert_eq!(got.stale.len(), 1);
        assert_eq!(got.stale[0].justification, "stale");
    }

    #[test]
    fn migrate_adopts_matches_and_reports_dead_entries() {
        let findings = vec![
            f(
                "wallclock",
                "crates/bench/benches/micro.rs",
                "bench: Instant::now",
            ),
            f("std-sync", "crates/comm/src/comm.rs", "Comm: Mutex::new("),
        ];
        // snippet contains the witness text (see helper), so substring
        // matching against code works as the legacy scanner did.
        let allow = "wallclock crates/bench/benches/micro.rs Instant::now # by design\n\
                     phase-balance crates/comm/src/comm.rs trace_phase_name # raii\n";
        let (entries, unmatched) = migrate_allow(allow, &findings);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].justification, "by design");
        assert_eq!(entries[0].fp, findings[0].fingerprint);
        assert_eq!(unmatched.len(), 1);
        assert!(unmatched[0].starts_with("phase-balance"));
    }
}
