//! The batcher: a pure planner that folds the request stream into solve
//! batches.
//!
//! Batching is *static* — a function of the workload's declared arrivals
//! and perturbations only, never of runtime clocks — so every rank plans
//! the identical batch sequence and the deterministic telemetry counters
//! stay machine-independent. A batch groups consecutive right-hand sides
//! that share an operator (same θ), up to `max_batch_rhs` of them, and
//! only while the arrival gap stays within `coalesce_window`; its dispatch
//! instant is the arrival of its last member.
//!
//! Within a batch the solves share one Krylov recycle space
//! (`dd_krylov::try_gmres_multi` processes the block sequentially,
//! harvesting each solution increment), so splitting or merging batches of
//! the same θ changes *scheduling* only: the per-RHS iteration counts are
//! identical either way — a property the test wall pins.

use crate::stream::Request;

/// One right-hand side of one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchItem {
    /// Index of the request in the workload.
    pub req: usize,
    /// Right-hand-side index within the request.
    pub rhs: usize,
}

/// A planned solve batch: items in stream order, one operator.
#[derive(Clone, Debug)]
pub struct Batch {
    /// Operator perturbation shared by every item (`0.0` = resident).
    pub theta: f64,
    /// Virtual instant the batch is dispatched: the latest member arrival.
    pub dispatch: f64,
    pub items: Vec<BatchItem>,
}

/// Batching policy.
#[derive(Clone, Debug)]
pub struct BatcherCfg {
    /// Most right-hand sides per batch (larger requests are split).
    pub max_batch_rhs: usize,
    /// Largest arrival gap (virtual seconds) coalesced into one batch.
    pub coalesce_window: f64,
}

impl Default for BatcherCfg {
    fn default() -> Self {
        BatcherCfg {
            max_batch_rhs: 8,
            coalesce_window: 0.1,
        }
    }
}

/// Fold the stream into batches, preserving stream order exactly: the
/// concatenation of `items` over the returned batches enumerates every
/// `(request, rhs)` pair once, in submission order.
pub fn plan_batches(requests: &[Request], cfg: &BatcherCfg) -> Vec<Batch> {
    let cap = cfg.max_batch_rhs.max(1);
    let mut batches: Vec<Batch> = Vec::new();
    let mut open: Option<(Batch, f64)> = None; // (batch, first-member arrival)
    for (ri, req) in requests.iter().enumerate() {
        let theta = req.theta();
        for j in 0..req.n_rhs() {
            let extend = open.as_ref().is_some_and(|(b, first)| {
                b.theta.to_bits() == theta.to_bits()
                    && b.items.len() < cap
                    && req.arrival - first <= cfg.coalesce_window
            });
            if !extend {
                if let Some((b, _)) = open.take() {
                    batches.push(b);
                }
                open = Some((
                    Batch {
                        theta,
                        dispatch: req.arrival,
                        items: Vec::new(),
                    },
                    req.arrival,
                ));
            }
            if let Some((b, _)) = open.as_mut() {
                b.dispatch = b.dispatch.max(req.arrival);
                b.items.push(BatchItem { req: ri, rhs: j });
            }
        }
    }
    if let Some((b, _)) = open.take() {
        batches.push(b);
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{Payload, Request, StreamCfg, Workload};

    fn items_flat(batches: &[Batch]) -> Vec<BatchItem> {
        batches.iter().flat_map(|b| b.items.clone()).collect()
    }

    fn expected_items(requests: &[Request]) -> Vec<BatchItem> {
        requests
            .iter()
            .enumerate()
            .flat_map(|(ri, r)| (0..r.n_rhs()).map(move |j| BatchItem { req: ri, rhs: j }))
            .collect()
    }

    /// Property: over many seeded workloads and policies, the plan is a
    /// faithful reordering-free cover — every (request, rhs) exactly once,
    /// in submission order — and every batch respects the size bound, has
    /// one operator, and dispatches no earlier than its members arrive.
    #[test]
    fn plan_is_order_preserving_exactly_once_and_bounded() {
        for seed in 0..40u64 {
            let cfg = StreamCfg {
                n_requests: 30,
                batch_fraction: 0.4,
                perturb_fraction: 0.3,
                ..Default::default()
            };
            let w = Workload::generate(seed, 3, &cfg);
            for (max, window) in [(1, 0.0), (3, 0.05), (8, 0.2), (64, f64::INFINITY)] {
                let bc = BatcherCfg {
                    max_batch_rhs: max,
                    coalesce_window: window,
                };
                let batches = plan_batches(&w.requests, &bc);
                assert_eq!(items_flat(&batches), expected_items(&w.requests));
                for b in &batches {
                    assert!(!b.items.is_empty());
                    assert!(b.items.len() <= max.max(1));
                    for it in &b.items {
                        assert_eq!(w.requests[it.req].theta().to_bits(), b.theta.to_bits());
                        assert!(b.dispatch >= w.requests[it.req].arrival);
                    }
                }
            }
        }
    }

    /// Any interleaving of single and multi-RHS submissions flattens back
    /// to submission order; a request larger than the cap is split without
    /// dropping or duplicating a right-hand side.
    #[test]
    fn splits_oversized_requests_without_loss() {
        let reqs = vec![
            Request {
                id: 0,
                arrival: 0.0,
                payload: Payload::Batch(vec![vec![1.0]; 5]),
            },
            Request {
                id: 1,
                arrival: 0.01,
                payload: Payload::Rhs(vec![2.0]),
            },
            Request {
                id: 2,
                arrival: 0.02,
                payload: Payload::Batch(vec![vec![3.0]; 3]),
            },
        ];
        let batches = plan_batches(
            &reqs,
            &BatcherCfg {
                max_batch_rhs: 4,
                coalesce_window: 1.0,
            },
        );
        assert_eq!(items_flat(&batches), expected_items(&reqs));
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].items.len(), 4);
        assert_eq!(batches[1].items.len(), 4); // 5th of req 0, req 1, 2 of req 2
        assert_eq!(batches[2].items.len(), 1);
    }

    /// A perturbation boundary always closes the batch: no batch mixes
    /// operators, even when the window and cap would allow coalescing.
    #[test]
    fn theta_change_closes_batch() {
        let reqs = vec![
            Request {
                id: 0,
                arrival: 0.0,
                payload: Payload::Rhs(vec![1.0]),
            },
            Request {
                id: 1,
                arrival: 0.001,
                payload: Payload::Perturbed {
                    theta: 0.05,
                    rhs: vec![1.0],
                },
            },
            Request {
                id: 2,
                arrival: 0.002,
                payload: Payload::Perturbed {
                    theta: 0.05,
                    rhs: vec![2.0],
                },
            },
            Request {
                id: 3,
                arrival: 0.003,
                payload: Payload::Rhs(vec![3.0]),
            },
        ];
        let batches = plan_batches(
            &reqs,
            &BatcherCfg {
                max_batch_rhs: 16,
                coalesce_window: 1.0,
            },
        );
        let thetas: Vec<f64> = batches.iter().map(|b| b.theta).collect();
        assert_eq!(thetas, vec![0.0, 0.05, 0.0]);
        assert_eq!(batches[1].items.len(), 2);
        assert_eq!(items_flat(&batches), expected_items(&reqs));
    }

    /// The window bounds coalescing: far-apart requests never share a
    /// batch, so no request waits on one that arrives much later.
    #[test]
    fn window_limits_coalescing() {
        let reqs: Vec<Request> = (0..4)
            .map(|i| Request {
                id: i,
                arrival: i as f64, // 1s apart
                payload: Payload::Rhs(vec![i as f64]),
            })
            .collect();
        let batches = plan_batches(
            &reqs,
            &BatcherCfg {
                max_batch_rhs: 16,
                coalesce_window: 0.5,
            },
        );
        assert_eq!(batches.len(), 4);
        for (i, b) in batches.iter().enumerate() {
            assert_eq!(b.dispatch, i as f64);
        }
    }
}
