//! The five flow-aware rules the string scanner could not express.
//!
//! All five work over [`crate::model::FileModel`] plus a workspace-wide
//! call graph ([`Workspace`]): intra-procedural control flow (branches,
//! loops, `let` taint) with one inter-procedural fact — the transitive
//! *collective footprint* of every workspace function — resolved by
//! unique name. That is deliberately modest: the SPMD invariants being
//! checked are structural (which collectives run on which control paths),
//! not semantic, and identifier-level resolution over one workspace is
//! both sound enough to find real divergence and simple enough to stay
//! predictable.
//!
//! * **collective-divergence** — a collective reachable under a
//!   rank-dependent condition without a matching collective on the other
//!   paths. The legal masters idiom (`if let Some(master) = master_comm {
//!   master.gather(…) }`) is carved out precisely: collectives whose
//!   receiver is bound *by the condition itself* run on the
//!   sub-communicator whose membership the condition tests.
//! * **lock-order** — the static `SyncMutex` acquisition graph: cycles
//!   between differently-named locks, and blocking comm calls while a
//!   guard is live (a parked rank holding a lock is invisible to the α–β
//!   model and can deadlock the world).
//! * **warm-loop-alloc** — allocating calls inside `// dd:hot` regions,
//!   statically enforcing PR 8's zero-alloc warm-iteration contract.
//! * **wallclock-taint** — values originating from `Instant`/`SystemTime`
//!   flowing into virtual-time or tag computations (nondeterminism the
//!   `wallclock` rule's site ban cannot see once a value crosses a `let`).
//! * **epoch-tag** — raw integer tags on `send`/`recv` that bypass the
//!   named-constant + epoch-salting discipline.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use crate::lexer::TokKind;
use crate::model::{Call, FileModel, FnItem};
use crate::Finding;

/// Collective operations: every rank of the communicator must call them
/// in the same order. (`neighbor_alltoall` is pairwise-complete on the
/// neighborhood topology, which is the same obligation.)
pub const COLLECTIVES: [&str; 29] = [
    "barrier",
    "try_barrier",
    "bcast",
    "try_bcast",
    "gather",
    "try_gather",
    "gatherv",
    "try_gatherv",
    "scatter",
    "try_scatter",
    "scatterv",
    "try_scatterv",
    "allgather",
    "try_allgather",
    "allreduce_sum",
    "try_allreduce_sum",
    "allreduce_sum_vec",
    "try_allreduce_sum_vec",
    "allreduce_max",
    "try_allreduce_max",
    "allreduce_max_usize",
    "try_allreduce_max_usize",
    "iallreduce_sum_vec",
    "wait_reduce",
    "split",
    "try_split",
    "try_shrink",
    "try_grow",
    "neighbor_alltoall",
];

/// Blocking comm calls that must not run while a `SyncMutex` guard is
/// live. (Condvar waits are exempt by construction: `wait_timeout`
/// releases the guard.)
const BLOCKING_COMM: [&str; 26] = [
    "recv",
    "try_recv_timeout",
    "barrier",
    "try_barrier",
    "bcast",
    "try_bcast",
    "gather",
    "try_gather",
    "gatherv",
    "try_gatherv",
    "scatter",
    "try_scatter",
    "scatterv",
    "try_scatterv",
    "allgather",
    "try_allgather",
    "allreduce_sum",
    "try_allreduce_sum",
    "allreduce_sum_vec",
    "try_allreduce_sum_vec",
    "allreduce_max",
    "try_allreduce_max",
    "allreduce_max_usize",
    "try_allreduce_max_usize",
    "wait_reduce",
    "try_shrink",
];

/// Crates analyzed by the flow rules (the SPMD runtime).
const RUNTIME_CRATES: [&str; 5] = [
    "crates/comm/src/",
    "crates/core/src/",
    "crates/solver/src/",
    "crates/serve/src/",
    "crates/krylov/src/",
];

fn in_runtime(path: &str) -> bool {
    RUNTIME_CRATES.iter().any(|p| path.contains(p))
}

fn finding(rule: &'static str, m: &FileModel, tok: usize, witness: String) -> Finding {
    let line = m.line_of(tok);
    Finding {
        rule,
        path: m.path.clone(),
        line,
        snippet: m.raw_line(line).trim().to_string(),
        witness,
        fingerprint: String::new(),
    }
}

fn fn_key(f: &FnItem) -> String {
    match &f.owner {
        Some(o) => format!("{o}::{}", f.name),
        None => f.name.clone(),
    }
}

// ---------------------------------------------------------------------------
// Workspace call graph
// ---------------------------------------------------------------------------

/// Transitive collective footprint of one function: collective name →
/// one witness call path.
type Footprint = BTreeMap<String, Vec<String>>;

/// Workspace-wide facts: for every function, its transitive collective
/// footprint (set of collective names plus one witness call path each).
pub struct Workspace {
    /// name → indices of fns with that bare name (across all files).
    by_name: HashMap<String, Vec<(usize, usize)>>,
    /// Memoized per-(file, fn) transitive footprints.
    footprints: Vec<Vec<Option<Footprint>>>,
}

impl Workspace {
    pub fn build(files: &[FileModel]) -> Self {
        let mut by_name: HashMap<String, Vec<(usize, usize)>> = HashMap::new();
        for (fi, m) in files.iter().enumerate() {
            for (gi, f) in m.fns.iter().enumerate() {
                by_name.entry(f.name.clone()).or_default().push((fi, gi));
            }
        }
        let footprints = files.iter().map(|m| vec![None; m.fns.len()]).collect();
        Workspace {
            by_name,
            footprints,
        }
    }

    /// Transitive collective footprint of fn `gi` in file `fi`:
    /// collective name → witness call path (fn names walked through).
    fn footprint(
        &mut self,
        files: &[FileModel],
        fi: usize,
        gi: usize,
        visiting: &mut HashSet<(usize, usize)>,
    ) -> Footprint {
        if let Some(done) = &self.footprints[fi][gi] {
            return done.clone();
        }
        if !visiting.insert((fi, gi)) {
            return BTreeMap::new(); // recursion cycle
        }
        let m = &files[fi];
        let f = &m.fns[gi];
        let mut out = BTreeMap::new();
        if let Some(body) = f.body {
            for c in m.calls_in(body) {
                if c.is_method && COLLECTIVES.contains(&c.name.as_str()) {
                    out.entry(c.name.clone()).or_insert_with(Vec::new);
                } else if !c.is_macro {
                    // Resolve by unique bare name only — ambiguity means
                    // no propagation, keeping the graph predictable.
                    if let Some(targets) = self.by_name.get(&c.name) {
                        if targets.len() == 1 {
                            let (tfi, tgi) = targets[0];
                            if (tfi, tgi) != (fi, gi) {
                                for (name, mut path) in self.footprint(files, tfi, tgi, visiting) {
                                    path.insert(0, files[tfi].fns[tgi].name.clone());
                                    out.entry(name).or_insert(path);
                                }
                            }
                        }
                    }
                }
            }
        }
        visiting.remove(&(fi, gi));
        self.footprints[fi][gi] = Some(out.clone());
        out
    }

    /// Collective footprint of an arbitrary token range inside file `fi`
    /// (direct collectives plus resolved unique-name calls), skipping
    /// calls whose receiver or arguments mention one of `exempt` — the
    /// if-let sub-communicator carve-out.
    fn range_footprint(
        &mut self,
        files: &[FileModel],
        fi: usize,
        range: (usize, usize),
        exempt: &[String],
    ) -> Footprint {
        let mut out = BTreeMap::new();
        let calls: Vec<Call> = files[fi].calls_in(range);
        for c in calls {
            let touches_exempt = c.recv.iter().any(|r| exempt.contains(r))
                || c.args.iter().any(|&(a, b)| {
                    (a..=b.min(files[fi].toks.len().saturating_sub(1))).any(|i| {
                        files[fi].toks[i].kind == TokKind::Ident
                            && exempt.contains(&files[fi].toks[i].text)
                    })
                });
            if touches_exempt {
                continue;
            }
            if c.is_method && COLLECTIVES.contains(&c.name.as_str()) {
                out.entry(c.name.clone()).or_insert_with(Vec::new);
            } else if !c.is_macro {
                if let Some(targets) = self.by_name.get(&c.name) {
                    if targets.len() == 1 {
                        let (tfi, tgi) = targets[0];
                        let mut visiting = HashSet::new();
                        for (name, mut path) in self.footprint(files, tfi, tgi, &mut visiting) {
                            path.insert(0, files[tfi].fns[tgi].name.clone());
                            out.entry(name).or_insert(path);
                        }
                    }
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Rank taint
// ---------------------------------------------------------------------------

/// Identifiers that carry rank-dependent values in a fn body: seeded by
/// `.rank()` / `.world_rank()` / `.is_joiner()` calls and the `is_master`
/// convention, propagated through `let` chains to a fixpoint.
pub fn rank_tainted(m: &FileModel, body: (usize, usize)) -> HashSet<String> {
    let lets = m.lets_in(body);
    let mut tainted: HashSet<String> = HashSet::new();
    for _ in 0..10 {
        let mut changed = false;
        for (idents, rhs) in &lets {
            if idents.iter().all(|i| tainted.contains(i)) {
                continue;
            }
            if range_rank_dep(m, *rhs, &tainted) {
                for i in idents {
                    changed |= tainted.insert(i.clone());
                }
            }
        }
        if !changed {
            break;
        }
    }
    tainted
}

/// Does the token range read a rank fact (directly or through taint)?
fn range_rank_dep(m: &FileModel, range: (usize, usize), tainted: &HashSet<String>) -> bool {
    let end = range.1.min(m.toks.len().saturating_sub(1));
    for i in range.0..=end {
        let t = &m.toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            // A *call* to rank()/world_rank()/is_joiner() — identifier
            // followed by `(` — or the is_master naming convention.
            "rank" | "world_rank" | "is_joiner"
                if m.toks.get(i + 1).is_some_and(|n| n.is_open('(')) =>
            {
                return true;
            }
            "is_master" => return true,
            _ => {}
        }
        if tainted.contains(&t.text) {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Rule: collective-divergence
// ---------------------------------------------------------------------------

fn footprint_diff(a: &Footprint, b: &Footprint) -> Vec<String> {
    let ka: BTreeSet<&String> = a.keys().collect();
    let kb: BTreeSet<&String> = b.keys().collect();
    ka.symmetric_difference(&kb)
        .map(|s| {
            let (src, path) = if ka.contains(*s) {
                ("then", a.get(*s))
            } else {
                ("else", b.get(*s))
            };
            match path {
                Some(p) if !p.is_empty() => format!("{s} ({src}, via {})", p.join(" → ")),
                _ => format!("{s} ({src})"),
            }
        })
        .collect()
}

/// Rule `collective-divergence`: see module docs.
pub fn rule_collective_divergence(files: &[FileModel], ws: &mut Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for (fi, m) in files.iter().enumerate() {
        if !in_runtime(&m.path) {
            continue;
        }
        for f in &m.fns {
            let Some(body) = f.body else { continue };
            if m.in_test(f.fn_tok) {
                continue;
            }
            let tainted = rank_tainted(m, body);
            // if/else divergence.
            for iff in m.ifs_in(body) {
                if !range_rank_dep(m, iff.cond, &tainted) {
                    continue;
                }
                let then_fp = ws.range_footprint(files, fi, iff.then_body, &iff.bindings);
                let else_fp = match iff.else_body {
                    Some(e) => ws.range_footprint(files, fi, e, &iff.bindings),
                    None => BTreeMap::new(),
                };
                let diff = footprint_diff(&then_fp, &else_fp);
                if !diff.is_empty() {
                    let w = format!(
                        "{}: rank-dependent `if` at line {} diverges on [{}]",
                        fn_key(f),
                        iff.line,
                        diff.join(", ")
                    );
                    out.push(finding("collective-divergence", m, iff.tok, w));
                }
            }
            // match-arm divergence.
            for ms in m.matches_in(body) {
                if !range_rank_dep(m, ms.scrutinee, &tainted) {
                    continue;
                }
                let fps: Vec<Footprint> = ms
                    .arms
                    .iter()
                    .map(|(_, body, bindings)| ws.range_footprint(files, fi, *body, bindings))
                    .collect();
                for pair in fps.windows(2) {
                    let diff = footprint_diff(&pair[0], &pair[1]);
                    if !diff.is_empty() {
                        let w = format!(
                            "{}: rank-dependent `match` at line {} diverges on [{}]",
                            fn_key(f),
                            ms.line,
                            diff.join(", ")
                        );
                        out.push(finding("collective-divergence", m, ms.tok, w));
                        break;
                    }
                }
            }
            // Loop-count divergence: a collective inside a loop whose
            // condition/range is rank-dependent runs a rank-dependent
            // number of times.
            for (i, t) in m.toks.iter().enumerate().take(body.1 + 1).skip(body.0) {
                if !(t.is_ident("while") || t.is_ident("for")) {
                    continue;
                }
                let Some(open) = (i + 1..=body.1).find(|&j| m.toks[j].is_open('{')) else {
                    continue;
                };
                // Header = tokens between keyword and the body brace,
                // conservatively (jumping groups is handled by ifs_in's
                // block_after; a `{` inside header parens is rare here).
                let header = (i + 1, open.saturating_sub(1));
                let close = m.close_of[open];
                if close == usize::MAX || close > body.1 {
                    continue;
                }
                if !range_rank_dep(m, header, &tainted) {
                    continue;
                }
                let fp = ws.range_footprint(files, fi, (open, close), &[]);
                if !fp.is_empty() {
                    let names: Vec<&String> = fp.keys().collect();
                    let w = format!(
                        "{}: collective(s) [{}] inside rank-dependent loop at line {}",
                        fn_key(f),
                        names
                            .iter()
                            .map(|s| s.as_str())
                            .collect::<Vec<_>>()
                            .join(", "),
                        t.line
                    );
                    out.push(finding("collective-divergence", m, i, w));
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule: lock-order
// ---------------------------------------------------------------------------

/// One lock acquisition with its lexical liveness range.
struct Acq {
    name: String,
    tok: usize,
    live: (usize, usize),
}

/// Lexical acquisitions in a fn body. A guard bound by `let` lives to
/// the end of the innermost enclosing block (or to an explicit
/// `drop(guard)`); a temporary guard lives to the end of its statement.
fn acquisitions(m: &FileModel, body: (usize, usize)) -> Vec<Acq> {
    let lets = m.lets_in(body);
    let calls = m.calls_in(body);
    let mut out = Vec::new();
    for c in &calls {
        if !(c.is_method && c.name == "lock" && !c.recv.is_empty()) {
            continue;
        }
        let name = c.recv.last().cloned().unwrap_or_default();
        if name.is_empty() {
            continue;
        }
        // Guard binding?
        let binding = lets
            .iter()
            .find(|(_, rhs)| rhs.0 <= c.tok && c.tok <= rhs.1)
            .and_then(|(ids, _)| ids.first().cloned());
        let live_end = match binding {
            Some(guard) => {
                // Innermost block containing the acquisition.
                let block_end = innermost_block_end(m, c.tok, body);
                // An explicit drop(guard) ends liveness early.
                calls
                    .iter()
                    .find(|d| {
                        d.name == "drop"
                            && d.tok > c.tok
                            && d.tok <= block_end
                            && d.args
                                .iter()
                                .any(|&(a, b)| (a..=b).any(|i| m.toks[i].is_ident(&guard)))
                    })
                    .map_or(block_end, |d| d.tok)
            }
            None => m.stmt_end(c.tok, body.1),
        };
        out.push(Acq {
            name,
            tok: c.tok,
            live: (c.tok, live_end),
        });
    }
    out
}

fn innermost_block_end(m: &FileModel, tok: usize, body: (usize, usize)) -> usize {
    let mut best = body.1;
    let mut best_len = body.1.saturating_sub(body.0);
    for i in body.0..=tok {
        if m.toks[i].is_open('{') {
            let c = m.close_of[i];
            if c != usize::MAX && c >= tok && c <= body.1 && c - i < best_len {
                best = c;
                best_len = c - i;
            }
        }
    }
    best
}

/// Rule `lock-order`: cycles in the static acquisition graph, and
/// blocking comm calls while a guard is live.
pub fn rule_lock_order(files: &[FileModel]) -> Vec<Finding> {
    let mut out = Vec::new();
    // name → name → (path, line) witness of the first edge site.
    let mut edges: BTreeMap<String, BTreeMap<String, (String, u32)>> = BTreeMap::new();
    for m in files {
        if !in_runtime(&m.path) || m.path.ends_with("comm/src/sync.rs") {
            continue;
        }
        for f in &m.fns {
            let Some(body) = f.body else { continue };
            if m.in_test(f.fn_tok) {
                continue;
            }
            let acqs = acquisitions(m, body);
            let calls = m.calls_in(body);
            for a in &acqs {
                // Nested acquisitions while `a` is live.
                for b in &acqs {
                    if b.tok > a.tok && b.tok <= a.live.1 && b.name != a.name {
                        edges
                            .entry(a.name.clone())
                            .or_default()
                            .entry(b.name.clone())
                            .or_insert((m.path.clone(), m.line_of(b.tok)));
                    }
                }
                // Blocking comm while `a` is live.
                for c in &calls {
                    if c.is_method
                        && BLOCKING_COMM.contains(&c.name.as_str())
                        && c.tok > a.tok
                        && c.tok <= a.live.1
                    {
                        let w = format!(
                            "{}: .{} while `{}` guard is live (acquired line {})",
                            fn_key(f),
                            c.name,
                            a.name,
                            m.line_of(a.tok)
                        );
                        out.push(finding("lock-order", m, c.tok, w));
                    }
                }
            }
        }
    }
    // Cycle detection over the name graph (DFS, reporting each cycle
    // once by its sorted node set).
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    let nodes: Vec<String> = edges.keys().cloned().collect();
    for start in &nodes {
        let mut stack = vec![(start.clone(), vec![start.clone()])];
        while let Some((node, path)) = stack.pop() {
            let Some(next) = edges.get(&node) else {
                continue;
            };
            for (to, site) in next {
                if to == start {
                    let mut key = path.clone();
                    key.sort();
                    if reported.insert(key) {
                        // Anchor the finding at the closing edge's site.
                        let (p, line) = site.clone();
                        let cycle = format!("{} → {start}", path.join(" → "));
                        out.push(Finding {
                            rule: "lock-order",
                            path: p.clone(),
                            line,
                            snippet: String::new(),
                            witness: format!("lock cycle: {cycle}"),
                            fingerprint: String::new(),
                        });
                    }
                } else if !path.contains(to) && path.len() < 6 {
                    let mut np = path.clone();
                    np.push(to.clone());
                    stack.push((to.clone(), np));
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule: warm-loop-alloc
// ---------------------------------------------------------------------------

const ALLOC_PATHS: [(&str, &str); 6] = [
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "with_capacity"),
    ("String", "from"),
];
const ALLOC_METHODS: [&str; 5] = ["to_vec", "to_owned", "to_string", "collect", "clone"];
const ALLOC_MACROS: [&str; 2] = ["vec", "format"];

/// Rule `warm-loop-alloc`: allocating calls inside `// dd:hot` regions.
pub fn rule_warm_loop_alloc(files: &[FileModel]) -> Vec<Finding> {
    let mut out = Vec::new();
    for m in files {
        let mut regions: Vec<((usize, usize), u32)> = m
            .hot_loops
            .iter()
            .map(|&(a, b)| ((a, b), m.line_of(a)))
            .collect();
        for f in &m.fns {
            if f.hot {
                if let Some(body) = f.body {
                    regions.push((body, f.line));
                }
            }
        }
        if regions.is_empty() {
            continue;
        }
        for &(region, at) in &regions {
            for c in m.calls_in(region) {
                if m.in_cold(c.tok) || m.in_test(c.tok) {
                    continue;
                }
                let is_alloc = ALLOC_PATHS.iter().any(|(ty, f)| {
                    c.path.len() >= 2
                        && c.path[c.path.len() - 2] == *ty
                        && c.path[c.path.len() - 1] == *f
                }) || (c.is_method
                    && ALLOC_METHODS.contains(&c.name.as_str())
                    && c.args.is_empty())
                    || (c.is_macro && ALLOC_MACROS.contains(&c.name.as_str()));
                if is_alloc {
                    let w = format!(
                        "{}: {} in hot region (line {at})",
                        fn_key(m.enclosing_fn(c.tok).unwrap_or(&FnItem {
                            name: "<top>".into(),
                            owner: None,
                            fn_tok: 0,
                            body: None,
                            line: 0,
                            is_test: false,
                            hot: false,
                        })),
                        c.display_name()
                    );
                    out.push(finding("warm-loop-alloc", m, c.tok, w));
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule: wallclock-taint
// ---------------------------------------------------------------------------

/// Sinks that must never see wall-clock-derived values: the virtual
/// clock and tag/epoch computation.
const TIME_SINKS: [&str; 6] = [
    "advance",
    "advance_clock",
    "tag",
    "epoch_salt",
    "send",
    "recv",
];

fn range_has_time_source(m: &FileModel, range: (usize, usize), tainted: &HashSet<String>) -> bool {
    let end = range.1.min(m.toks.len().saturating_sub(1));
    for i in range.0..=end {
        let t = &m.toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "Instant" | "SystemTime" => return true,
            "elapsed" | "duration_since" if m.toks.get(i + 1).is_some_and(|n| n.is_open('(')) => {
                return true;
            }
            _ => {}
        }
        if tainted.contains(&t.text) {
            return true;
        }
    }
    false
}

/// Rule `wallclock-taint`: wall-clock-derived values flowing into the
/// virtual clock or into tag/epoch computations.
pub fn rule_wallclock_taint(files: &[FileModel]) -> Vec<Finding> {
    let mut out = Vec::new();
    for m in files {
        if !in_runtime(&m.path) || m.path.ends_with("comm/src/time.rs") {
            continue;
        }
        for f in &m.fns {
            let Some(body) = f.body else { continue };
            if m.in_test(f.fn_tok) {
                continue;
            }
            // Taint fixpoint over lets, seeded by time sources.
            let lets = m.lets_in(body);
            let mut tainted: HashSet<String> = HashSet::new();
            for _ in 0..10 {
                let mut changed = false;
                for (idents, rhs) in &lets {
                    if idents.iter().all(|i| tainted.contains(i)) {
                        continue;
                    }
                    if range_has_time_source(m, *rhs, &tainted) {
                        for i in idents {
                            changed |= tainted.insert(i.clone());
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            for c in m.calls_in(body) {
                if !TIME_SINKS.contains(&c.name.as_str()) {
                    continue;
                }
                for &arg in &c.args {
                    if range_has_time_source(m, arg, &tainted) {
                        let w = format!(
                            "{}: wall-clock value reaches {}",
                            fn_key(f),
                            c.display_name()
                        );
                        out.push(finding("wallclock-taint", m, c.tok, w));
                        break;
                    }
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule: epoch-tag
// ---------------------------------------------------------------------------

/// Crates where point-to-point tags must be named constants (salted by
/// the epoch machinery), never raw integers. `dd-comm` itself is the
/// home of the salting constructors and is exempt.
const TAG_SCOPED: [&str; 4] = [
    "crates/core/src/",
    "crates/solver/src/",
    "crates/serve/src/",
    "crates/krylov/src/",
];

/// Rule `epoch-tag`: the tag argument of `send`/`recv`/
/// `try_recv_timeout` must mention at least one named identifier (a tag
/// constant or a salting helper) — a bare integer literal bypasses the
/// epoch-salting discipline and collides across epochs after a shrink
/// or grow.
pub fn rule_epoch_tag(files: &[FileModel]) -> Vec<Finding> {
    let mut out = Vec::new();
    for m in files {
        if !TAG_SCOPED.iter().any(|p| m.path.contains(p)) {
            continue;
        }
        for c in m.calls_in((0, m.toks.len().saturating_sub(1))) {
            if !c.is_method
                || !matches!(c.name.as_str(), "send" | "recv" | "try_recv_timeout")
                || m.in_test(c.tok)
            {
                continue;
            }
            let Some(&tag_arg) = c.args.get(1) else {
                continue;
            };
            let end = tag_arg.1.min(m.toks.len().saturating_sub(1));
            let has_ident = (tag_arg.0..=end).any(|i| m.toks[i].kind == TokKind::Ident);
            let has_num = (tag_arg.0..=end).any(|i| m.toks[i].kind == TokKind::Num);
            if has_num && !has_ident {
                let w = format!(
                    "{}: raw integer tag on .{}",
                    fn_key(m.enclosing_fn(c.tok).unwrap_or(&FnItem {
                        name: "<top>".into(),
                        owner: None,
                        fn_tok: 0,
                        body: None,
                        line: 0,
                        is_test: false,
                        hot: false,
                    })),
                    c.name
                );
                out.push(finding("epoch-tag", m, c.tok, w));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule: raw-envelope
// ---------------------------------------------------------------------------

/// Rule `raw-envelope`: inside `dd-comm`, every payload enqueued into a
/// mailbox must be sealed into a checksummed `Envelope` — the
/// wire-integrity layer (DESIGN.md §13) only detects corruption on
/// messages that carry a checksum. Two shapes bypass it:
///
/// * a `.push_back(..)` whose argument never mentions `seal` — a raw
///   payload enqueued without an envelope;
/// * an `Envelope { .. }` struct literal outside `Envelope::seal`
///   itself — a hand-rolled envelope whose checksum nobody computed.
pub fn rule_raw_envelope(files: &[FileModel]) -> Vec<Finding> {
    let top = FnItem {
        name: "<top>".into(),
        owner: None,
        fn_tok: 0,
        body: None,
        line: 0,
        is_test: false,
        hot: false,
    };
    let mut out = Vec::new();
    for m in files {
        if !m.path.contains("crates/comm/src/") {
            continue;
        }
        for c in m.calls_in((0, m.toks.len().saturating_sub(1))) {
            if !c.is_method || c.name != "push_back" || m.in_test(c.tok) {
                continue;
            }
            let Some(&(a0, a1)) = c.args.first() else {
                continue;
            };
            let end = a1.min(m.toks.len().saturating_sub(1));
            let sealed =
                (a0..=end).any(|i| m.toks[i].kind == TokKind::Ident && m.toks[i].text == "seal");
            if !sealed {
                let w = format!(
                    "{}: payload enqueued via .push_back without Envelope::seal",
                    fn_key(m.enclosing_fn(c.tok).unwrap_or(&top))
                );
                out.push(finding("raw-envelope", m, c.tok, w));
            }
        }
        for i in 0..m.toks.len().saturating_sub(1) {
            if !m.toks[i].is(TokKind::Ident, "Envelope") || !m.toks[i + 1].is(TokKind::Open, "{") {
                continue;
            }
            // Skip the type definition and impl/trait headers; the literal
            // inside the sealing constructor is the one legal site.
            if i > 0
                && (m.toks[i - 1].is(TokKind::Punct, "->")
                    || (m.toks[i - 1].kind == TokKind::Ident
                        && matches!(
                            m.toks[i - 1].text.as_str(),
                            "struct" | "impl" | "for" | "trait"
                        )))
            {
                continue;
            }
            if m.in_test(i) || m.enclosing_fn(i).is_some_and(|f| f.name == "seal") {
                continue;
            }
            let w = format!(
                "{}: Envelope literal outside Envelope::seal",
                fn_key(m.enclosing_fn(i).unwrap_or(&top))
            );
            out.push(finding("raw-envelope", m, i, w));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, src: &str) -> FileModel {
        FileModel::new(path, src)
    }

    fn divergence(files: &[FileModel]) -> Vec<Finding> {
        let mut ws = Workspace::build(files);
        rule_collective_divergence(files, &mut ws)
    }

    // ---- collective-divergence ----------------------------------------

    #[test]
    fn rank_guarded_collective_without_match_fires() {
        let m = file(
            "crates/core/src/spmd.rs",
            "fn f(comm: &C) { if comm.rank() == 0 { comm.barrier(); } }\n",
        );
        let got = divergence(std::slice::from_ref(&m));
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].witness.contains("barrier"), "{got:?}");
    }

    #[test]
    fn matched_collectives_on_both_branches_pass() {
        let m = file(
            "crates/core/src/spmd.rs",
            "fn f(comm: &C, x: V) { if comm.rank() == 0 { comm.gather(0, x); } else { comm.gather(0, x); } }\n",
        );
        assert!(divergence(std::slice::from_ref(&m)).is_empty());
    }

    #[test]
    fn taint_through_locals_is_tracked() {
        let m = file(
            "crates/core/src/spmd.rs",
            "fn f(comm: &C) { let me = comm.rank(); let lead = me == 0; if lead { comm.allreduce_sum(1.0); } }\n",
        );
        let got = divergence(std::slice::from_ref(&m));
        assert_eq!(got.len(), 1, "{got:?}");
    }

    #[test]
    fn master_subcomm_carveout_passes() {
        // The legal masters idiom: collectives on the communicator bound
        // by the condition itself.
        let m = file(
            "crates/core/src/spmd.rs",
            "fn f(comm: &C, mc: Option<C>, x: V) { if let Some(master) = mc { master.gather(0, x); let d = DistLdlt::try_factor(master, b, s); } }\n",
        );
        assert!(divergence(std::slice::from_ref(&m)).is_empty());
    }

    #[test]
    fn divergence_through_helper_reports_call_path() {
        let files = [file(
            "crates/core/src/recovery.rs",
            "fn helper(comm: &C) { comm.try_shrink(); }\n\
             fn f(comm: &C) { let lead = comm.rank() == 0; if lead { helper(comm); } }\n",
        )];
        let got = divergence(&files);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].witness.contains("via helper"), "{got:?}");
    }

    #[test]
    fn rank_dependent_match_divergence_fires_and_uniform_passes() {
        let bad = file(
            "crates/core/src/spmd.rs",
            "fn f(comm: &C) { match comm.rank() { 0 => { comm.barrier(); } _ => {} } }\n",
        );
        assert_eq!(divergence(std::slice::from_ref(&bad)).len(), 1);
        let ok = file(
            "crates/core/src/spmd.rs",
            "fn f(comm: &C) { match comm.rank() { 0 => { comm.barrier(); } _ => { comm.barrier(); } } }\n",
        );
        assert!(divergence(std::slice::from_ref(&ok)).is_empty());
    }

    #[test]
    fn collective_in_rank_dependent_loop_fires() {
        let m = file(
            "crates/solver/src/dist_ldlt.rs",
            "fn f(comm: &C) { let me = comm.rank(); for k in 0..me { comm.allreduce_sum(1.0); } }\n",
        );
        let got = divergence(std::slice::from_ref(&m));
        assert_eq!(got.len(), 1, "{got:?}");
        // p2p sends in triangular fan-ins are legal:
        let ok = file(
            "crates/solver/src/dist_ldlt.rs",
            "fn f(comm: &C, x: V) { let me = comm.rank(); for k in 0..me { comm.send(k, TAG, x); } }\n",
        );
        assert!(divergence(std::slice::from_ref(&ok)).is_empty());
    }

    #[test]
    fn non_rank_conditions_pass() {
        let m = file(
            "crates/core/src/spmd.rs",
            "fn f(comm: &C, opts: &O) { if !opts.one_level { comm.barrier(); } }\n",
        );
        assert!(divergence(std::slice::from_ref(&m)).is_empty());
    }

    // ---- lock-order ----------------------------------------------------

    #[test]
    fn lock_cycle_across_fns_is_reported() {
        let m = file(
            "crates/comm/src/comm.rs",
            "fn a(s: &S) { let g = s.agree.lock(); let p = s.parked.lock(); }\n\
             fn b(s: &S) { let p = s.parked.lock(); let g = s.agree.lock(); }\n",
        );
        let got = rule_lock_order(std::slice::from_ref(&m));
        let cycles: Vec<&Finding> = got
            .iter()
            .filter(|f| f.witness.contains("lock cycle"))
            .collect();
        assert_eq!(cycles.len(), 1, "{got:?}");
    }

    #[test]
    fn consistent_lock_order_passes() {
        let m = file(
            "crates/comm/src/comm.rs",
            "fn a(s: &S) { let g = s.agree.lock(); let p = s.parked.lock(); }\n\
             fn b(s: &S) { let g = s.agree.lock(); let p = s.parked.lock(); }\n",
        );
        let got = rule_lock_order(std::slice::from_ref(&m));
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn blocking_comm_under_live_guard_fires_and_drop_releases() {
        let bad = file(
            "crates/comm/src/comm.rs",
            "fn f(s: &S, c: &C) { let g = s.slots.lock(); let v: u64 = c.recv(0, TAG); }\n",
        );
        let got = rule_lock_order(std::slice::from_ref(&bad));
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].witness.contains("recv"), "{got:?}");
        let ok = file(
            "crates/comm/src/comm.rs",
            "fn f(s: &S, c: &C) { let g = s.slots.lock(); drop(g); let v: u64 = c.recv(0, TAG); }\n",
        );
        assert!(rule_lock_order(std::slice::from_ref(&ok)).is_empty());
    }

    #[test]
    fn temporary_guard_scope_ends_at_statement() {
        let ok = file(
            "crates/comm/src/comm.rs",
            "fn f(s: &S, c: &C) { *s.slots.lock() = 1; let v: u64 = c.recv(0, TAG); }\n",
        );
        assert!(rule_lock_order(std::slice::from_ref(&ok)).is_empty());
    }

    // ---- warm-loop-alloc -----------------------------------------------

    #[test]
    fn alloc_in_hot_fn_fires_cold_escape_passes() {
        let bad = file(
            "crates/krylov/src/gmres.rs",
            "// dd:hot\nfn kernel(x: &[f64]) -> Vec<f64> { let v = x.to_vec(); v }\n",
        );
        let got = rule_warm_loop_alloc(std::slice::from_ref(&bad));
        assert_eq!(got.len(), 1, "{got:?}");
        let ok = file(
            "crates/krylov/src/gmres.rs",
            "// dd:hot\nfn kernel(x: &[f64], y: &mut [f64]) { // dd:cold\n  let e = format!(\"n={}\", x.len());\n  y[0] = x[0]; }\n",
        );
        assert!(rule_warm_loop_alloc(std::slice::from_ref(&ok)).is_empty());
    }

    #[test]
    fn alloc_in_hot_loop_fires_prologue_passes() {
        let m = file(
            "crates/krylov/src/cg.rs",
            "fn solve(n: usize) { let mut ws = Vec::with_capacity(n); // dd:hot\n  for k in 0..n { let t = ws.clone(); } }\n",
        );
        let got = rule_warm_loop_alloc(std::slice::from_ref(&m));
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].witness.contains(".clone"), "{got:?}");
    }

    // ---- wallclock-taint -----------------------------------------------

    #[test]
    fn wallclock_into_virtual_clock_fires() {
        let m = file(
            "crates/comm/src/comm.rs",
            "fn f(clock: &K) { let t0 = Instant::now(); let dt = t0.elapsed().as_secs_f64(); clock.advance(dt); }\n",
        );
        let got = rule_wallclock_taint(std::slice::from_ref(&m));
        assert_eq!(got.len(), 1, "{got:?}");
    }

    #[test]
    fn virtual_quantities_into_clock_pass() {
        let m = file(
            "crates/comm/src/comm.rs",
            "fn f(clock: &K, model: &M, n: usize) { let dt = model.alpha + model.beta * n as f64; clock.advance(dt); }\n",
        );
        assert!(rule_wallclock_taint(std::slice::from_ref(&m)).is_empty());
    }

    #[test]
    fn wallclock_into_tag_fires() {
        let m = file(
            "crates/core/src/recovery.rs",
            "fn f(c: &C, x: V) { let stamp = SystemTime::now(); c.send(0, stamp, x); }\n",
        );
        let got = rule_wallclock_taint(std::slice::from_ref(&m));
        assert_eq!(got.len(), 1, "{got:?}");
    }

    // ---- epoch-tag -----------------------------------------------------

    #[test]
    fn raw_integer_tag_fires_named_tags_pass() {
        let bad = file(
            "crates/solver/src/dist_ldlt.rs",
            "fn f(c: &C, x: V) { c.send(0, 42, x); }\n",
        );
        assert_eq!(rule_epoch_tag(std::slice::from_ref(&bad)).len(), 1);
        let ok = file(
            "crates/solver/src/dist_ldlt.rs",
            "fn f(c: &C, x: V, s: usize) { c.send(0, TAG_PANEL, x); let v: V = c.recv(1, TAG_FWD + s as u64); }\n",
        );
        assert!(rule_epoch_tag(std::slice::from_ref(&ok)).is_empty());
    }

    #[test]
    fn epoch_tag_exempts_tests_and_comm_internals() {
        let files = [
            file(
                "crates/comm/src/comm.rs",
                "fn f(c: &C, x: V) { c.send(0, 7, x); }\n",
            ),
            file(
                "crates/core/src/spmd.rs",
                "#[cfg(test)]\nmod tests { fn f(c: &C, x: V) { c.send(0, 7, x); } }\n",
            ),
        ];
        assert!(rule_epoch_tag(&files).is_empty());
    }

    // ---- raw-envelope ---------------------------------------------------

    #[test]
    fn unsealed_push_back_fires_sealed_passes() {
        let bad = file(
            "crates/comm/src/comm.rs",
            "fn send(&self, q: &mut Q, v: V) { q.push_back(v); }\n",
        );
        let got = rule_raw_envelope(std::slice::from_ref(&bad));
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].witness.contains("push_back"), "{got:?}");
        let ok = file(
            "crates/comm/src/comm.rs",
            "fn send(&self, q: &mut Q, v: V) { q.push_back(Envelope::seal(v, a, b, d, s, c)); }\n",
        );
        assert!(rule_raw_envelope(std::slice::from_ref(&ok)).is_empty());
    }

    #[test]
    fn hand_rolled_envelope_literal_fires_outside_seal_only() {
        let bad = file(
            "crates/comm/src/comm.rs",
            "fn sneak(v: V) -> Envelope { Envelope { payload: v, sum: 0 } }\n",
        );
        let got = rule_raw_envelope(std::slice::from_ref(&bad));
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].witness.contains("literal"), "{got:?}");
        let ok = file(
            "crates/comm/src/comm.rs",
            "struct Envelope { sum: u64 }\n\
             impl Envelope { fn seal(v: V, s: u64) -> Self { Envelope { payload: v, sum: s } } }\n",
        );
        assert!(rule_raw_envelope(std::slice::from_ref(&ok)).is_empty());
    }

    #[test]
    fn raw_envelope_is_scoped_to_dd_comm_and_exempts_tests() {
        let files = [
            file(
                "crates/part/src/lib.rs",
                "fn f(q: &mut Q, v: V) { q.push_back(v); }\n",
            ),
            file(
                "crates/comm/src/comm.rs",
                "#[cfg(test)]\nmod tests { fn f(q: &mut Q, v: V) { q.push_back(v); } }\n",
            ),
        ];
        assert!(rule_raw_envelope(&files).is_empty());
    }
}
