//! Micro-benchmarks of the individual kernels the paper's framework spends
//! its time in: sparse matrix–vector products (eq. 5), `csrmm`
//! (`T_i = A_i W_i`, Algorithm 1), sparse LDLᵀ factorization and
//! triangular solves (the MUMPS/PARDISO role), the GenEO eigensolve (the
//! ARPACK role), coarse-operator assembly (eq. 10), the coarse correction
//! (§3.2), and the graph partitioner (the METIS role).
//!
//! Std-only harness (`harness = false`): each kernel is warmed up, then
//! timed in adaptively-sized batches until a wall-time budget is spent;
//! the minimum per-iteration time over the batches is reported, which is
//! the usual robust estimator for micro-benchmarks.
//!
//! Run with `cargo bench -p dd-bench`. Filter by substring:
//! `cargo bench -p dd-bench -- spmv`.

use dd_core::coarse::{CoarseOperator, CoarseSpace};
use dd_core::geneo::{deflation_block, resize_block, GeneoOpts};
use dd_core::{decompose, problem::presets, Decomposition};
use dd_fem::{assemble_diffusion, DofMap};
use dd_linalg::DMat;
use dd_mesh::Mesh;
use dd_part::{partition_ggp, partition_mesh_rcb};
use dd_solver::{Ordering, SparseLdlt};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Time `f` and print one report line, honoring the CLI filter.
fn bench<R>(filter: &Option<String>, name: &str, mut f: impl FnMut() -> R) {
    if let Some(pat) = filter {
        if !name.contains(pat.as_str()) {
            return;
        }
    }
    // Warm-up, and an estimate of one iteration's cost.
    let start = Instant::now();
    black_box(f());
    let first = start.elapsed().max(Duration::from_nanos(1));
    let batch = (Duration::from_millis(20).as_nanos() / first.as_nanos()).clamp(1, 100_000) as u32;
    let budget = Duration::from_millis(300);
    let (mut best, mut iters, mut spent) = (f64::INFINITY, 0u64, Duration::ZERO);
    while spent < budget {
        let t = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        let dt = t.elapsed();
        best = best.min(dt.as_secs_f64() / batch as f64);
        iters += batch as u64;
        spent += dt;
    }
    println!("{name:<34} {:>14} {iters:>9} iters", fmt_time(best));
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns/iter", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs/iter", secs * 1e6)
    } else {
        format!("{:.3} ms/iter", secs * 1e3)
    }
}

fn fem_matrix(cells: usize) -> dd_linalg::CsrMatrix {
    let mesh = Mesh::unit_square(cells, cells);
    let dm = DofMap::new(&mesh, 1);
    let (a, _) = assemble_diffusion(&mesh, &dm, &|_| 1.0, &|_| 1.0);
    a
}

fn decomp_fixture(cells: usize, nparts: usize) -> Decomposition {
    let mesh = Mesh::unit_square(cells, cells);
    let part = partition_mesh_rcb(&mesh, nparts);
    let problem = presets::heterogeneous_diffusion(1);
    decompose(&mesh, &problem, &part, nparts, 1)
}

fn main() {
    let filter = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-') && a != "--bench");

    // spmv
    for cells in [32usize, 64] {
        let a = fem_matrix(cells);
        let x = vec![1.0; a.cols()];
        let mut y = vec![0.0; a.rows()];
        bench(&filter, &format!("spmv/{}", a.rows()), || {
            a.spmv(black_box(&x), &mut y);
            y[0]
        });
    }

    // csrmm: T_i = A_i W_i with ν = 16 deflation vectors.
    {
        let a = fem_matrix(48);
        let n = a.rows();
        let mut w = DMat::zeros(n, 16);
        for j in 0..16 {
            for i in 0..n {
                w.col_mut(j)[i] = ((i + j) % 7) as f64;
            }
        }
        bench(&filter, "csrmm_nu16", || a.csrmm(&w));
    }

    // ldlt factor + solve
    for cells in [24usize, 48] {
        let a = fem_matrix(cells);
        bench(&filter, &format!("ldlt/factor_md/{}", a.rows()), || {
            SparseLdlt::factor(&a, Ordering::MinDegree).unwrap()
        });
        let f = SparseLdlt::factor(&a, Ordering::MinDegree).unwrap();
        let rhs = vec![1.0; a.rows()];
        bench(&filter, &format!("ldlt/solve/{}", a.rows()), || {
            f.solve(&rhs)
        });
    }

    // fill-reducing orderings
    {
        let a = fem_matrix(32);
        bench(&filter, "ordering/rcm", || {
            dd_solver::ordering::reverse_cuthill_mckee(&a)
        });
        bench(&filter, "ordering/min_degree", || {
            dd_solver::ordering::min_degree(&a)
        });
    }

    // GenEO eigensolve
    {
        let d = decomp_fixture(32, 4);
        let opts = GeneoOpts {
            nev: 8,
            ..Default::default()
        };
        bench(&filter, "geneo_eigensolve_nev8", || {
            deflation_block(&d.subdomains[0], &opts)
        });
    }

    // coarse assembly (eq. 10) and correction apply (§3.2)
    {
        let d = decomp_fixture(32, 8);
        let opts = GeneoOpts {
            nev: 6,
            ..Default::default()
        };
        let blocks: Vec<DMat> = d
            .subdomains
            .iter()
            .map(|s| {
                let b = deflation_block(s, &opts);
                resize_block(&b, b.kept)
            })
            .collect();
        bench(&filter, "coarse_assembly_eq10", || {
            let space = CoarseSpace::new(blocks.clone());
            CoarseOperator::build(&d, space, Ordering::MinDegree)
        });
        let space = CoarseSpace::new(blocks);
        let op = CoarseOperator::build(&d, space, Ordering::MinDegree);
        let u: Vec<f64> = (0..d.n_global).map(|i| (i % 13) as f64).collect();
        bench(&filter, "coarse_correction_apply", || op.correction(&d, &u));
    }

    // partitioners
    {
        let mesh = Mesh::unit_square(48, 48);
        let adj = mesh.dual_graph();
        bench(&filter, "partition_ggp_16", || partition_ggp(&adj, 16));
        bench(&filter, "partition_rcb_16", || {
            partition_mesh_rcb(&mesh, 16)
        });
    }

    // FEM assembly across orders
    {
        let mesh = Mesh::unit_square(24, 24);
        for order in [1usize, 2, 3] {
            let dm = DofMap::new(&mesh, order);
            bench(&filter, &format!("fem_assembly/P{order}"), || {
                assemble_diffusion(&mesh, &dm, &|_| 1.0, &|_| 1.0)
            });
        }
    }
}
