//! # dd-core
//!
//! The paper's contribution: scalable two-level overlapping Schwarz
//! preconditioners with a GenEO spectral coarse space and a master–slave
//! distributed coarse operator.
//!
//! ## Map from the paper to the modules
//!
//! | paper | module |
//! |---|---|
//! | §2 overlapping decomposition, `T_i^δ`, `R_i`, `D_i` (eq. 2), Dirichlet matrices via approach 1/2 | [`decomp`] |
//! | §2 `P⁻¹_RAS` (eq. 3) | [`precond::RasPrecond`] |
//! | §2.1 local eigenproblem (eq. 9), `W_i = D_i Λ_i` (eq. 8) | [`geneo`] |
//! | §3.1 block assembly of `E` (eq. 10) | [`coarse`] (sequential), [`spmd`] (Algorithms 1–2) |
//! | §3.1.2 master election (uniform / `p_i` recurrence) | [`masters`] |
//! | §2.1 `P⁻¹_A-DEF1` (eq. 6) / `P⁻¹_A-DEF2` (eq. 7) | [`precond::TwoLevelPrecond`] |
//! | §3.2 coarse correction gather/solve/scatter, eq. 12 | [`spmd`] |
//! | §3.5 fused pipelined GMRES | [`spmd`] + `dd_krylov::fused_pipelined_gmres` |
//! | §3 "abstract deflation vectors", §4 a-posteriori Ritz vectors | [`abstract_coarse`] |
//!
//! ## Example
//!
//! ```
//! use dd_core::{decompose, two_level, problem::presets, TwoLevelOpts};
//! use dd_krylov::{gmres, GmresOpts, SeqDot};
//! use dd_mesh::Mesh;
//! use dd_part::partition_mesh_rcb;
//!
//! let mesh = Mesh::unit_square(12, 12);
//! let part = partition_mesh_rcb(&mesh, 4);
//! let problem = presets::heterogeneous_diffusion(1);
//! let decomp = decompose(&mesh, &problem, &part, 4, 1);
//! let m = two_level(&decomp, &TwoLevelOpts::default());
//! let res = gmres(&decomp.a_global, &m, &SeqDot, &decomp.rhs_global,
//!                 &vec![0.0; decomp.n_global], &GmresOpts::default());
//! assert!(res.converged);
//! ```

// Numerical kernels and assembly loops read most naturally with
// explicit indices; complex intermediate types are local plumbing.
#![allow(clippy::needless_range_loop, clippy::type_complexity)]

pub mod abstract_coarse;
pub mod coarse;
pub mod decomp;
pub mod error;
pub mod geneo;
pub mod masters;
pub mod precond;
pub mod problem;
pub mod recovery;
pub mod spmd;

pub use abstract_coarse::{ritz_deflation, AbstractADef1, AbstractCoarse};
pub use coarse::{CoarseOperator, CoarseSpace};
pub use decomp::{
    decompose, decompose_with, Decomposition, DirichletStrategy, NeighborLink, Subdomain,
};
pub use error::{
    CoarseOutcome, DeflationSource, PhaseOutcome, RecoveryRecord, RunReport, SpmdError,
};
pub use geneo::{
    deflation_block, nicolaides_block, nicolaides_fallback_block, try_deflation_block,
    DeflationBlock, GeneoOpts,
};
pub use precond::{
    builder::two_level, builder::TwoLevelOpts, RasPrecond, TwoLevelPrecond, Variant,
};
pub use problem::{Pde, Problem};
pub use recovery::{
    agree_next, recoverable, repartition_plan, replayable, try_run_spmd_elastic,
    try_run_spmd_recoverable, try_setup_partitioned, CheckpointStore, CoarseCache,
    MultiApplyOutcome, PreparedMulti, RecoveryOpts, RepartitionPlan, SpmdMultiSolution,
};
pub use spmd::{
    run_spmd, try_run_spmd, try_setup, try_setup_with, ApplyOutcome, AssemblyVariant, CoarseSolve,
    Election, PreparedSolver, SolverKind, SpmdOpts, SpmdReport, SpmdSolution,
};
