//! Ablation: §3.1.1's two coarse-assembly strategies.
//!
//! The "natural" approach ships global row/column indices from every slave
//! (three `MPI_Gatherv` calls); the paper's index-free scheme sends only
//! the values prefixed by `O_i` and lets the masters recompute indices —
//! "the memory overhead on the slaves is null". Same numerics, fewer bytes
//! on the wire.

use dd_bench::{
    diffusion_2d, print_telemetry_table, run_workload_traced, write_summary, write_telemetry,
    Summary,
};
use dd_core::{AssemblyVariant, CoarseSolve, GeneoOpts, SpmdOpts};
use dd_krylov::GmresOpts;

fn main() {
    println!("# Ablation: coarse-assembly message volume (§3.1.1)");
    let n = 16;
    let w = diffusion_2d(32, 0, 1, n, 1);
    println!("workload: {} dofs, {} ranks\n", w.decomp.n_global, n);
    let base = SpmdOpts {
        geneo: GeneoOpts {
            nev: 8,
            ..Default::default()
        },
        n_masters: 4,
        gmres: GmresOpts {
            tol: 1e-6,
            max_iters: 300,
            side: dd_krylov::Side::Left,
            ..Default::default()
        },
        ..Default::default()
    };
    println!(
        "{:<16} {:>6} {:>14} {:>17} {:>12}",
        "variant", "#it.", "p2p bytes", "collective bytes", "coarse time"
    );
    let mut stats = Vec::new();
    let mut traces = Vec::new();
    for (name, variant) in [
        ("index-free", AssemblyVariant::IndexFree),
        ("natural gatherv", AssemblyVariant::NaturalGatherv),
    ] {
        let opts = SpmdOpts {
            assembly: variant,
            ..base.clone()
        };
        let (reports, trace) = run_workload_traced(&w, &opts);
        let r = &reports[0];
        let coarse = reports.iter().map(|r| r.t_coarse).fold(0.0f64, f64::max);
        let cbytes: u64 = reports
            .iter()
            .map(|r| r.collective_bytes)
            .max()
            .unwrap_or(0);
        println!(
            "{:<16} {:>6} {:>14} {:>17} {:>11.4}s",
            name, r.iterations, r.p2p_bytes, cbytes, coarse
        );
        assert!(r.converged);
        stats.push((r.iterations, cbytes));
        traces.push((name, trace));
    }

    // Per-phase telemetry: the gather phase is where the two variants
    // differ (`assembly:gather` collective bytes).
    for ((name, trace), (iterations, _)) in traces.iter().zip(&stats) {
        print_telemetry_table(&format!("assembly {name}"), trace);
        let stem = if name.starts_with("index") {
            "ablation_assembly_index_free"
        } else {
            "ablation_assembly_natural"
        };
        match write_telemetry(stem, trace) {
            Ok(p) => println!("telemetry: {}", p.display()),
            Err(e) => eprintln!("telemetry write failed: {e}"),
        }
        let mut summary = Summary::from_trace(stem, trace);
        summary.insert("iterations", *iterations as f64);
        match write_summary(stem, &summary) {
            Ok(p) => println!("summary: {}", p.display()),
            Err(e) => eprintln!("summary write failed: {e}"),
        }
    }
    let gather_bytes = |t: &dd_comm::WorldTrace| t.phase_totals("assembly:gather").collective_bytes;
    assert!(
        gather_bytes(&traces[1].1) > gather_bytes(&traces[0].1),
        "index-shipping must move more gather-phase bytes"
    );
    // Identical numerics, but the index-shipping variant moves more data
    // through the gathers (§3.1.1: "why should slaves send to masters the
    // global row and column indices?").
    assert_eq!(stats[0].0, stats[1].0, "iteration counts must match");
    assert!(
        stats[1].1 > stats[0].1,
        "index-shipping must move more collective bytes: {} vs {}",
        stats[1].1,
        stats[0].1
    );
    println!(
        "\n# index-free saves {:.0}% of the collective volume",
        100.0 * (1.0 - stats[0].1 as f64 / stats[1].1 as f64)
    );
    println!("# SHAPE OK: identical numerics, fewer bytes without shipped indices");

    // ---- redundant vs distributed coarse factorization (§3.2) ----
    // The paper's claim: partitioning E into the masters' block rows makes
    // per-master factor memory and factorization work shrink as the master
    // count grows, where the redundant substitute pays the full factor on
    // every master. Same numerics either way.
    println!("\n# Ablation: redundant vs distributed coarse solve (§3.2)");
    println!(
        "{:>3} {:<12} {:>8} {:>6} {:>15} {:>18} {:>14}",
        "P", "mode", "dim(E)", "#it.", "nnz(L)/master", "e-factor flops/mst", "solve time/it."
    );
    let mut coarse_summary = Summary::new("ablation_assembly_coarse");
    let mut dist_nnz: Vec<usize> = Vec::new();
    let mut dist_flops: Vec<u64> = Vec::new();
    for p in [2usize, 4, 8] {
        let mut iters = Vec::new();
        for (mode_name, mode, phase) in [
            (
                "distributed",
                CoarseSolve::Distributed,
                "e-factorization-dist",
            ),
            ("redundant", CoarseSolve::Redundant, "e-factorization"),
        ] {
            let opts = SpmdOpts {
                n_masters: p,
                coarse_solve: mode,
                ..base.clone()
            };
            let (reports, trace) = run_workload_traced(&w, &opts);
            assert!(reports.iter().all(|r| r.converged));
            let r = &reports[0];
            // Per-master costs: max over ranks (slaves report zero).
            let nnz_master = reports.iter().map(|r| r.nnz_e_factor).max().unwrap();
            let flops_master = trace
                .ranks
                .iter()
                .filter_map(|rt| rt.phase(phase))
                .map(|c| c.flops)
                .max()
                .unwrap_or(0);
            let t_it = reports.iter().map(|r| r.t_solution).fold(0.0f64, f64::max)
                / r.iterations.max(1) as f64;
            println!(
                "{:>3} {:<12} {:>8} {:>6} {:>15} {:>18} {:>13.5}s",
                p, mode_name, r.dim_e, r.iterations, nnz_master, flops_master, t_it
            );
            iters.push(r.iterations);
            for (metric, v) in [
                ("nnz_per_master", nnz_master as f64),
                ("factor_flops_per_master", flops_master as f64),
                ("iterations", r.iterations as f64),
            ] {
                coarse_summary.insert(&format!("coarse/p{p}/{mode_name}_{metric}"), v);
            }
            if mode == CoarseSolve::Distributed {
                dist_nnz.push(nnz_master);
                dist_flops.push(flops_master);
            }
            assert!(
                mode == CoarseSolve::Redundant || nnz_master > 0,
                "distributed masters must report their factor share"
            );
        }
        assert_eq!(iters[0], iters[1], "P = {p}: modes must match numerics");
    }
    match write_summary("ablation_assembly_coarse", &coarse_summary) {
        Ok(path) => println!("summary: {}", path.display()),
        Err(e) => eprintln!("summary write failed: {e}"),
    }
    // The tentpole observable: per-master factor size and charged
    // factorization flops drop as the master count grows.
    assert!(
        dist_nnz.windows(2).all(|w| w[1] < w[0]),
        "per-master nnz(L) must shrink with more masters: {dist_nnz:?}"
    );
    assert!(
        dist_flops.windows(2).all(|w| w[1] < w[0]),
        "per-master factor flops must shrink with more masters: {dist_flops:?}"
    );
    println!("# SHAPE OK: distributed coarse factor scales down with the master count");
}
