//! Counting global allocator — the measurement substrate behind the
//! `kernel-speed` CI lane's *hard* gate.
//!
//! Wall-clock times vary with the runner; **allocation counts do not**.
//! Every call into the global allocator is a deterministic function of the
//! code path taken, so "the GMRES inner loop performs zero allocations per
//! iteration after warmup" is a machine-independent invariant CI can pin
//! exactly (tolerance 0.0), the same way the telemetry counters pin
//! communication volume.
//!
//! A binary opts in by registering the allocator:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: dd_bench::alloc_count::CountingAlloc = dd_bench::alloc_count::CountingAlloc;
//! ```
//!
//! and then brackets regions of interest with [`count_allocs`]. Counts are
//! process-global (`Relaxed` atomics): measure on a single thread with no
//! concurrent allocating work, which is exactly what `kernel_bench` does.
//!
//! This module is the sole `unsafe` code in the workspace (the trait
//! itself is unsafe); it delegates every operation verbatim to
//! [`std::alloc::System`] and only increments counters around the calls.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);

/// A `GlobalAlloc` that counts calls and forwards to [`System`].
pub struct CountingAlloc;

// SAFETY: every method delegates directly to `System`, which upholds the
// `GlobalAlloc` contract; the counter increments touch no allocator state.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout contract as our own caller's.
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout contract as our own caller's.
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr`/`layout` come from a prior `alloc` on `System`
        // (every allocating method here forwards to it).
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc is a (possible) fresh allocation; growth patterns like
        // `Vec::push` doubling show up in the count either way.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr`/`layout` come from a prior `alloc` on `System`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Total allocation calls (alloc + alloc_zeroed + realloc) so far.
pub fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Total deallocation calls so far.
pub fn deallocations() -> u64 {
    DEALLOCS.load(Ordering::Relaxed)
}

/// Run `f` and return `(allocations during f, f's result)`.
///
/// Meaningful only when [`CountingAlloc`] is installed as the global
/// allocator *and* no other thread allocates concurrently; without the
/// allocator installed it reports 0.
pub fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = allocations();
    let r = f();
    (allocations() - before, r)
}
