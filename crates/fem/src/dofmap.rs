//! Global degree-of-freedom numbering for Lagrange `P_k` spaces.
//!
//! Each dof is identified by an exact integer key: the set of mesh vertices
//! carrying nonzero barycentric numerators at the dof's lattice node,
//! together with those numerators, sorted by vertex id. Two elements
//! sharing a face therefore agree on the dofs of that face regardless of
//! local vertex ordering and without any floating-point coordinate
//! comparison — this same key mechanism later lets subdomain spaces `V_i^δ`
//! map their local dofs onto global dofs in `dd-core`.

use crate::basis::LagrangeBasis;
use dd_mesh::Mesh;
use std::collections::HashMap;

/// Canonical dof identity: sorted `(vertex, barycentric numerator)` pairs,
/// numerators summing to the element order.
pub type DofKey = Vec<(u32, u8)>;

/// Global dof numbering of a `P_k` space over a mesh.
#[derive(Clone, Debug)]
pub struct DofMap {
    order: usize,
    dim: usize,
    n_basis: usize,
    n_dofs: usize,
    /// `elem_dofs[e * n_basis + i]` = global dof of local basis `i`.
    elem_dofs: Vec<u32>,
    /// Physical coordinates of every dof (`dim`-interleaved).
    dof_coords: Vec<f64>,
    /// Canonical key of every dof.
    keys: Vec<DofKey>,
    /// key → dof lookup (kept for subdomain-space construction).
    lookup: HashMap<DofKey, u32>,
}

impl DofMap {
    /// Number the `P_order` dofs of `mesh`.
    pub fn new(mesh: &Mesh, order: usize) -> Self {
        let basis = LagrangeBasis::new(mesh.dim(), order);
        let dim = mesh.dim();
        let n_basis = basis.n_basis();
        let mut lookup: HashMap<DofKey, u32> = HashMap::new();
        let mut elem_dofs = Vec::with_capacity(mesh.n_elements() * n_basis);
        let mut dof_coords: Vec<f64> = Vec::new();
        let mut keys: Vec<DofKey> = Vec::new();
        for e in 0..mesh.n_elements() {
            let ev = mesh.element(e);
            for node in basis.nodes() {
                let mut key: DofKey = node
                    .iter()
                    .enumerate()
                    .filter(|&(_, &a)| a > 0)
                    .map(|(j, &a)| (ev[j], a))
                    .collect();
                key.sort_unstable();
                let next = lookup.len() as u32;
                let id = *lookup.entry(key.clone()).or_insert_with(|| {
                    // physical coordinates: Σ (α/k)·v, accumulated in
                    // canonical (sorted) vertex order for bitwise
                    // reproducibility across elements.
                    for d in 0..dim {
                        let mut x = 0.0;
                        for &(v, a) in &key {
                            x += a as f64 / order as f64 * mesh.vertex(v as usize)[d];
                        }
                        dof_coords.push(x);
                    }
                    keys.push(key.clone());
                    next
                });
                elem_dofs.push(id);
            }
        }
        let n_dofs = lookup.len();
        DofMap {
            order,
            dim,
            n_basis,
            n_dofs,
            elem_dofs,
            dof_coords,
            keys,
            lookup,
        }
    }

    pub fn order(&self) -> usize {
        self.order
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Scalar dofs in the space.
    pub fn n_dofs(&self) -> usize {
        self.n_dofs
    }

    /// Shape functions per element.
    pub fn n_basis(&self) -> usize {
        self.n_basis
    }

    /// Global dofs of element `e`, ordered like the basis lattice nodes.
    #[inline]
    pub fn elem_dofs(&self, e: usize) -> &[u32] {
        &self.elem_dofs[e * self.n_basis..(e + 1) * self.n_basis]
    }

    /// Physical coordinates of dof `i`.
    #[inline]
    pub fn dof_coord(&self, i: usize) -> &[f64] {
        &self.dof_coords[i * self.dim..(i + 1) * self.dim]
    }

    /// Canonical key of dof `i`.
    pub fn key(&self, i: usize) -> &DofKey {
        &self.keys[i]
    }

    /// Look up a dof by its canonical key.
    pub fn dof_by_key(&self, key: &DofKey) -> Option<u32> {
        self.lookup.get(key).copied()
    }

    /// Dofs lying on the mesh boundary: a dof belongs to the boundary iff
    /// its supporting vertex set is contained in some boundary facet.
    pub fn boundary_dofs(&self, mesh: &Mesh) -> Vec<bool> {
        let mut flags = vec![false; self.n_dofs];
        let k = self.order as u8;
        for facet in mesh.boundary_facets() {
            // Enumerate every dof supported on this facet: multi-indices
            // over the facet's vertices summing to the order (zeros allowed
            // — they produce dofs of sub-entities, e.g. the facet's edges).
            let fv = &facet;
            let m = fv.len();
            let mut alpha = vec![0u8; m];
            enumerate_compositions(k, m, &mut alpha, &mut |alpha| {
                let mut key: DofKey = fv
                    .iter()
                    .zip(alpha.iter())
                    .filter(|&(_, &a)| a > 0)
                    .map(|(&v, &a)| (v, a))
                    .collect();
                key.sort_unstable();
                if let Some(&id) = self.lookup.get(&key) {
                    flags[id as usize] = true;
                }
            });
        }
        flags
    }

    /// Dofs whose physical coordinates satisfy a predicate (e.g. a clamped
    /// face `x = 0` for the cantilever problem).
    pub fn dofs_where(&self, pred: impl Fn(&[f64]) -> bool) -> Vec<bool> {
        (0..self.n_dofs).map(|i| pred(self.dof_coord(i))).collect()
    }
}

/// Call `f` with every composition of `total` into `len` non-negative parts.
fn enumerate_compositions(total: u8, len: usize, scratch: &mut [u8], f: &mut impl FnMut(&[u8])) {
    fn rec(total: u8, pos: usize, scratch: &mut [u8], f: &mut impl FnMut(&[u8])) {
        if pos + 1 == scratch.len() {
            scratch[pos] = total;
            f(scratch);
            return;
        }
        for v in 0..=total {
            scratch[pos] = v;
            rec(total - v, pos + 1, scratch, f);
        }
    }
    assert_eq!(scratch.len(), len);
    rec(total, 0, scratch, f);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p1_dofs_equal_vertices() {
        let m = Mesh::unit_square(4, 4);
        let dm = DofMap::new(&m, 1);
        assert_eq!(dm.n_dofs(), m.n_vertices());
    }

    #[test]
    fn p2_dof_count_2d() {
        // P2 on an nx × ny structured grid: vertices + edges.
        let m = Mesh::unit_square(3, 3);
        let dm = DofMap::new(&m, 2);
        // Count edges via Euler: E = V + F − 1 (planar, one outer face
        // excluded). V = 16, F = 18 triangles → E = 33.
        assert_eq!(dm.n_dofs(), 16 + 33);
    }

    #[test]
    fn p3_dof_count_2d() {
        let m = Mesh::unit_square(2, 2);
        let dm = DofMap::new(&m, 3);
        // V=9, T=8, E = V + T − 1 = 16; dofs = V + 2E + T = 9 + 32 + 8 = 49.
        assert_eq!(dm.n_dofs(), 49);
    }

    #[test]
    fn p2_dof_count_3d() {
        let m = Mesh::unit_cube(1, 1, 1);
        let dm = DofMap::new(&m, 2);
        // 8 cube vertices + 19 edges (12 cube + 6 face diagonals + 1 body
        // diagonal of the Kuhn split) = 27.
        assert_eq!(dm.n_dofs(), 27);
    }

    #[test]
    fn shared_edge_dofs_consistent() {
        let m = Mesh::unit_square(2, 1);
        let dm = DofMap::new(&m, 3);
        // Every dof must appear with consistent coordinates: recompute the
        // coordinate from each element side and compare exactly.
        let basis = LagrangeBasis::new(2, 3);
        for e in 0..m.n_elements() {
            let ev = m.element(e);
            for (i, node) in basis.nodes().iter().enumerate() {
                let dof = dm.elem_dofs(e)[i] as usize;
                // physical coordinate computed element-locally
                let mut x = [0.0f64; 2];
                for (j, &a) in node.iter().enumerate() {
                    for d in 0..2 {
                        x[d] += a as f64 / 3.0 * m.vertex(ev[j] as usize)[d];
                    }
                }
                let xc = dm.dof_coord(dof);
                for d in 0..2 {
                    assert!(
                        (x[d] - xc[d]).abs() < 1e-12,
                        "dof {dof} coordinate mismatch"
                    );
                }
            }
        }
    }

    #[test]
    fn boundary_dofs_p2_square() {
        let m = Mesh::unit_square(2, 2);
        let dm = DofMap::new(&m, 2);
        let b = dm.boundary_dofs(&m);
        // Boundary of a 2×2 square: 8 boundary edges with P2 → 8 vertices +
        // 8 midpoints = 16 boundary dofs.
        assert_eq!(b.iter().filter(|&&x| x).count(), 16);
        // Cross-check against the geometric predicate.
        let geo = dm.dofs_where(|x| {
            x[0] < 1e-12 || x[0] > 1.0 - 1e-12 || x[1] < 1e-12 || x[1] > 1.0 - 1e-12
        });
        assert_eq!(b, geo);
    }

    #[test]
    fn boundary_dofs_p3_cube() {
        let m = Mesh::unit_cube(2, 2, 2);
        let dm = DofMap::new(&m, 2);
        let b = dm.boundary_dofs(&m);
        let geo = dm.dofs_where(|x| x.iter().any(|&c| !(1e-12..=1.0 - 1e-12).contains(&c)));
        assert_eq!(b, geo);
    }

    #[test]
    fn key_lookup_roundtrip() {
        let m = Mesh::unit_square(3, 2);
        let dm = DofMap::new(&m, 4);
        for i in 0..dm.n_dofs() {
            assert_eq!(dm.dof_by_key(dm.key(i)), Some(i as u32));
        }
    }
}
