//! Givens rotations, used by GMRES to maintain the QR factorization of the
//! Hessenberg matrix incrementally.

/// A Givens rotation `G = [c s; −s c]` chosen so that
/// `G · [a; b] = [r; 0]` with `r = √(a² + b²)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Givens {
    pub c: f64,
    pub s: f64,
}

impl Givens {
    /// Compute the rotation annihilating `b` against `a`, returning the
    /// rotation and the resulting `r`.
    pub fn compute(a: f64, b: f64) -> (Givens, f64) {
        if b == 0.0 {
            (Givens { c: 1.0, s: 0.0 }, a)
        } else if a == 0.0 {
            (Givens { c: 0.0, s: 1.0 }, b)
        } else {
            // Numerically robust formulation avoiding overflow.
            let (aa, ba) = (a.abs(), b.abs());
            let r = if aa > ba {
                let t = b / a;
                aa * (1.0 + t * t).sqrt()
            } else {
                let t = a / b;
                ba * (1.0 + t * t).sqrt()
            };
            let r = if a < 0.0 { -r } else { r };
            (Givens { c: a / r, s: b / r }, r)
        }
    }

    /// Apply to a pair `(x, y)`, returning `(c·x + s·y, −s·x + c·y)`.
    #[inline]
    pub fn apply(&self, x: f64, y: f64) -> (f64, f64) {
        (self.c * x + self.s * y, -self.s * x + self.c * y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annihilates_second_component() {
        for &(a, b) in &[
            (3.0, 4.0),
            (-1.0, 2.0),
            (0.0, 5.0),
            (7.0, 0.0),
            (1e-200, 1e200),
        ] {
            let (g, r) = Givens::compute(a, b);
            let (x, y) = g.apply(a, b);
            assert!(
                (x - r).abs() <= 1e-12 * r.abs().max(1.0),
                "r mismatch for {a},{b}"
            );
            assert!(
                y.abs() <= 1e-12 * r.abs().max(1.0),
                "y not annihilated for {a},{b}"
            );
            // rotation is orthogonal
            assert!((g.c * g.c + g.s * g.s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn preserves_norm() {
        let (g, _) = Givens::compute(2.0, -3.0);
        let (x, y) = g.apply(5.0, 6.0);
        let n0 = (5.0f64 * 5.0 + 6.0 * 6.0).sqrt();
        let n1 = (x * x + y * y).sqrt();
        assert!((n0 - n1).abs() < 1e-12);
    }
}
