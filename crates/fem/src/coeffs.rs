//! The heterogeneous coefficient fields of the paper's experiments.
//!
//! * [`diffusivity_channels`] — the weak-scaling diffusion coefficient κ
//!   "with channels and inclusions", varying from 1 to 3·10⁶ (Figure 9);
//! * [`elasticity_two_materials`] — the strong-scaling elasticity
//!   coefficients: (E₁, ν₁) = (2·10¹¹, 0.25) (steel-like) and
//!   (E₂, ν₂) = (10⁷, 0.45) (rubber-like), arranged in alternating layers
//!   like the dark/light stripes of the paper's tripod and cantilever
//!   (Figure 6).

/// Lamé parameters from Young's modulus and Poisson's ratio, exactly the
/// conversion stated in the paper:
/// `μ = E / (2(1+ν))`, `λ = Eν / ((1+ν)(1−2ν))`.
pub fn lame_from_young_poisson(e: f64, nu: f64) -> (f64, f64) {
    let mu = e / (2.0 * (1.0 + nu));
    let lambda = e * nu / ((1.0 + nu) * (1.0 - 2.0 * nu));
    (lambda, mu)
}

/// Heterogeneous diffusivity with horizontal high-contrast channels and
/// circular inclusions on the unit square/cube, κ ∈ {1, 3·10⁶}.
///
/// The geometry mimics Figure 9: three channels crossing the whole domain
/// (so they intersect many subdomains — the hard case for one-level
/// methods) plus a lattice of inclusions.
pub fn diffusivity_channels(x: &[f64]) -> f64 {
    const HIGH: f64 = 3.0e6;
    let y = x[1];
    // Channels: bands in y of width 0.08 at three heights.
    for &yc in &[0.25, 0.5, 0.75] {
        if (y - yc).abs() < 0.04 {
            return HIGH;
        }
    }
    // Inclusions: disks of radius 0.045 on a 5×5 lattice offset from the
    // channels.
    let fract = |v: f64| v - v.floor();
    let cx = fract(x[0] * 5.0) - 0.5;
    let cy = fract(x[1] * 5.0 + 0.5) - 0.5;
    let mut r2 = cx * cx + cy * cy;
    if x.len() == 3 {
        let cz = fract(x[2] * 5.0) - 0.5;
        r2 += cz * cz;
    }
    if r2 < 0.22 * 0.22 {
        HIGH
    } else {
        1.0
    }
}

/// Two-material elasticity in alternating layers (the black / light-grey
/// stripes of the paper's geometries): returns `(λ, μ)`.
///
/// Material 1: E = 2·10¹¹, ν = 0.25 (stiff). Material 2: E = 10⁷,
/// ν = 0.45 (soft) — a contrast of 2·10⁴ in Young's modulus.
pub fn elasticity_two_materials(x: &[f64]) -> (f64, f64) {
    // Stripes along the y direction, 7 bands per unit length.
    let band = (x[1] * 7.0).floor() as i64;
    if band.rem_euclid(2) == 0 {
        lame_from_young_poisson(2.0e11, 0.25)
    } else {
        lame_from_young_poisson(1.0e7, 0.45)
    }
}

/// Homogeneous unit diffusivity (baseline / testing).
pub fn diffusivity_uniform(_x: &[f64]) -> f64 {
    1.0
}

/// Contrast of a coefficient field sampled on a lattice — used by tests to
/// confirm the fields reach the paper's heterogeneity levels.
pub fn sampled_contrast(f: &dyn Fn(&[f64]) -> f64, dim: usize, samples: usize) -> f64 {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    let m = samples;
    match dim {
        2 => {
            for i in 0..m {
                for j in 0..m {
                    let x = [(i as f64 + 0.5) / m as f64, (j as f64 + 0.5) / m as f64];
                    let v = f(&x);
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
            }
        }
        3 => {
            for i in 0..m {
                for j in 0..m {
                    for k in 0..m {
                        let x = [
                            (i as f64 + 0.5) / m as f64,
                            (j as f64 + 0.5) / m as f64,
                            (k as f64 + 0.5) / m as f64,
                        ];
                        let v = f(&x);
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                }
            }
        }
        _ => panic!("dim"),
    }
    hi / lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lame_conversion_matches_paper_values() {
        // (E₁, ν₁) = (2e11, 0.25): μ = 8e10, λ = 8e10.
        let (l, m) = lame_from_young_poisson(2.0e11, 0.25);
        assert!((m - 8.0e10).abs() < 1.0);
        assert!((l - 8.0e10).abs() < 1.0);
        // (E₂, ν₂) = (1e7, 0.45)
        let (l2, m2) = lame_from_young_poisson(1.0e7, 0.45);
        assert!((m2 - 1.0e7 / 2.9).abs() < 1.0);
        assert!((l2 - 1.0e7 * 0.45 / (1.45 * 0.1)).abs() < 1.0);
    }

    #[test]
    fn diffusivity_reaches_paper_contrast() {
        let c2 = sampled_contrast(&diffusivity_channels, 2, 40);
        assert_eq!(c2, 3.0e6);
        let c3 = sampled_contrast(&diffusivity_channels, 3, 16);
        assert_eq!(c3, 3.0e6);
    }

    #[test]
    fn channels_cross_entire_domain() {
        // κ is HIGH across the full width at y = 0.5.
        for i in 0..50 {
            let x = [i as f64 / 49.0, 0.5];
            assert_eq!(diffusivity_channels(&x), 3.0e6);
        }
    }

    #[test]
    fn elasticity_layers_alternate() {
        let (l0, _) = elasticity_two_materials(&[0.3, 0.05]);
        let (l1, _) = elasticity_two_materials(&[0.3, 0.2]);
        assert!(l0 > 1e10, "band 0 stiff");
        assert!(l1 < 1e8, "band 1 soft");
    }
}
