//! GenEO deflation vectors (eq. 9 of the paper; theory in Spillane et al.).
//!
//! Per subdomain, solve the generalized eigenproblem
//!
//! ```text
//! A_i^δ Λ = λ · (P_i D_i) A_i^δ (P_i D_i) Λ
//! ```
//!
//! where `A_i^δ` is the local Neumann matrix and `P_i` the indicator of the
//! overlap (`R_{i,0}ᵀ R_{i,0}` in the paper's notation). The right-hand
//! side matrix is the partition-of-unity-weighted restriction of the
//! Neumann operator to the overlap — symmetric positive semidefinite. The
//! eigenvectors with the smallest eigenvalues capture exactly the modes
//! (rigid-body motions of floating subdomains, high-contrast channels
//! crossing the interface) that defeat one-level methods; deflating them
//! makes the condition number independent of `N` and of the coefficient
//! contrast.
//!
//! The deflation block is `W_i = D_i Λ_i` (eq. 8).

use crate::decomp::Subdomain;
use dd_eigen::{smallest_generalized, EigenError, LanczosOpts};
use dd_linalg::{CsrMatrix, DMat};

/// Options controlling the deflation-space construction.
#[derive(Clone, Debug)]
pub struct GeneoOpts {
    /// Number of eigenvectors requested per subdomain (the paper uses a
    /// uniform ν after `MPI_Allreduce(ν_i, MPI_MAX)`; typically ν ≤ 30).
    pub nev: usize,
    /// Optional spectral threshold: keep only eigenvalues `λ < threshold`
    /// among the `nev` computed ("a threshold criterion is used to select
    /// the ν_i eigenvectors").
    pub threshold: Option<f64>,
    /// Inner Lanczos options.
    pub lanczos: LanczosOpts,
}

impl Default for GeneoOpts {
    fn default() -> Self {
        GeneoOpts {
            nev: 10,
            threshold: None,
            lanczos: LanczosOpts::default(),
        }
    }
}

/// Result of the local eigensolve.
pub struct DeflationBlock {
    /// `W_i = D_i Λ_i` for **all** computed finite eigenpairs (so a later
    /// uniformization to `ν = max_i ν_i` can draw real eigenvectors rather
    /// than zero columns, which would make `E` singular).
    pub w: DMat,
    /// All computed eigenvalues (ascending), matching `w`'s columns.
    pub values: Vec<f64>,
    /// How many leading columns pass the threshold criterion (the ν_i the
    /// subdomain would choose on its own).
    pub kept: usize,
}

/// The overlap-weighted right-hand-side matrix `B_i = (P D) A^δ (P D)`.
///
/// `P D` is diagonal, so `B` has the entries of `A^δ` scaled by
/// `pd_k · pd_l`; rows/columns outside the overlap (or on globally
/// constrained dofs) vanish.
pub fn overlap_weighted_matrix(sub: &Subdomain) -> CsrMatrix {
    let n = sub.n_local();
    let pd: Vec<f64> = (0..n)
        .map(|k| {
            if sub.overlap[k] && !sub.dirichlet[k] {
                sub.d[k]
            } else {
                0.0
            }
        })
        .collect();
    let a = &sub.a_neumann;
    let mut values = a.values().to_vec();
    let mut idx = 0usize;
    for i in 0..n {
        for (j, _) in a.row(i) {
            values[idx] *= pd[i] * pd[j];
            idx += 1;
        }
    }
    CsrMatrix::from_raw(n, n, a.row_ptr().to_vec(), a.col_idx().to_vec(), values)
}

/// Compute the deflation block of one subdomain, panicking on eigensolver
/// failure. See [`try_deflation_block`] for the fallible variant the SPMD
/// driver uses to trigger the Nicolaides fallback.
pub fn deflation_block(sub: &Subdomain, opts: &GeneoOpts) -> DeflationBlock {
    try_deflation_block(sub, opts).expect("GenEO eigensolve failed: shifted pencil not SPD")
}

/// Compute the deflation block of one subdomain.
///
/// Returns an empty block (ν = 0) when the subdomain has no overlap (e.g.
/// `N = 1`) — there is nothing to deflate.
pub fn try_deflation_block(
    sub: &Subdomain,
    opts: &GeneoOpts,
) -> Result<DeflationBlock, EigenError> {
    let n = sub.n_local();
    if !sub.overlap.iter().any(|&o| o) || opts.nev == 0 {
        return Ok(DeflationBlock {
            w: DMat::zeros(n, 0),
            values: Vec::new(),
            kept: 0,
        });
    }
    let b = overlap_weighted_matrix(sub);
    let eig = smallest_generalized(&sub.a_neumann, &b, opts.nev, &opts.lanczos)?;
    // Keep every finite eigenpair; record how many pass the threshold.
    let finite = eig.values.iter().take_while(|&&l| l.is_finite()).count();
    let kept = eig
        .values
        .iter()
        .take(finite)
        .take_while(|&&l| opts.threshold.is_none_or(|t| l < t))
        .count();
    let mut w = DMat::zeros(n, finite);
    for c in 0..finite {
        let src = eig.vectors.col(c);
        let dst = w.col_mut(c);
        for k in 0..n {
            // W = D Λ, with constrained dofs explicitly zeroed so the
            // coarse space never injects into Dirichlet rows.
            dst[k] = if sub.dirichlet[k] {
                0.0
            } else {
                sub.d[k] * src[k]
            };
        }
        // Normalize each column: Lanczos returns B-orthonormal vectors
        // whose 2-norms vary over many orders of magnitude under high
        // coefficient contrast (components in ker B are unconstrained).
        // Column scaling of Z leaves the deflation subspace unchanged but
        // keeps the coarse operator E well-conditioned for the
        // no-pivoting LDLᵀ factorization.
        let nrm = dd_linalg::vector::norm2(dst);
        if nrm > 0.0 {
            dd_linalg::vector::scal(1.0 / nrm, dst);
        }
    }
    Ok(DeflationBlock {
        w,
        values: eig.values[..finite].to_vec(),
        kept,
    })
}

/// The [`nicolaides_block`] packaged as a [`DeflationBlock`]: the
/// per-subdomain fallback coarse space when the GenEO eigensolve fails.
/// The number of solution components is derived from the subdomain's dof
/// and coordinate counts.
pub fn nicolaides_fallback_block(sub: &Subdomain) -> DeflationBlock {
    let n_scalar = (sub.coords.len() / sub.dim.max(1)).max(1);
    let components = (sub.n_local() / n_scalar).max(1);
    let w = nicolaides_block(sub, components);
    let kept = w.cols();
    DeflationBlock {
        w,
        values: vec![0.0; kept],
        kept,
    }
}

/// Take the first `nu` columns of a deflation block (capped at the number
/// of computed eigenvectors). Used after the global `Allreduce(MAX)`
/// uniformization: every subdomain contributes (up to) the same ν, drawing
/// real eigenvectors beyond its own threshold rather than zero columns.
pub fn resize_block(block: &DeflationBlock, nu: usize) -> DMat {
    let take = nu.min(block.w.cols());
    let n = block.w.rows();
    let mut w = DMat::zeros(n, take);
    for c in 0..take {
        w.col_mut(c).copy_from_slice(block.w.col(c));
    }
    w
}

/// The Nicolaides coarse space: per subdomain, the partition-of-unity
/// weighted *kernel modes* of the operator — the classical alternative to
/// GenEO, oblivious to coefficient heterogeneity. For scalar problems this
/// is the single vector `D_i·1`; for elasticity the `D_i`-weighted rigid
/// body modes (2 translations + 1 rotation in 2D; 3 + 3 in 3D).
///
/// Exists here as the paper's "abstract deflation vectors" escape hatch
/// (§3: the framework "is not directly linked to domain decomposition
/// methods, meaning that it is possible to use it to assemble coarse
/// operators with other abstract deflation vectors") and as the ablation
/// baseline GenEO is measured against.
pub fn nicolaides_block(sub: &Subdomain, components: usize) -> DMat {
    let n = sub.n_local();
    let dim = sub.dim;
    let n_modes = match (components, dim) {
        (1, _) => 1,
        (2, 2) => 3,
        (3, 3) => 6,
        _ => panic!("unsupported components/dim combination"),
    };
    let mut w = DMat::zeros(n, n_modes);
    let n_scalar = n / components;
    for s in 0..n_scalar {
        let x = &sub.coords[s * dim..(s + 1) * dim];
        for c in 0..components {
            let k = s * components + c;
            if sub.dirichlet[k] {
                continue;
            }
            let d = sub.d[k];
            if components == 1 {
                w.col_mut(0)[k] = d;
            } else {
                // translations
                w.col_mut(c)[k] = d;
                if dim == 2 {
                    // rotation (−y, x)
                    let r = if c == 0 { -x[1] } else { x[0] };
                    w.col_mut(2)[k] = d * r;
                } else {
                    // rotations about z, y, x: (−y,x,0), (z,0,−x), (0,−z,y)
                    let rots = [[-x[1], x[0], 0.0], [x[2], 0.0, -x[0]], [0.0, -x[2], x[1]]];
                    for (m, rot) in rots.iter().enumerate() {
                        w.col_mut(3 + m)[k] = d * rot[c];
                    }
                }
            }
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::decompose;
    use crate::problem::presets;
    use dd_mesh::Mesh;
    use dd_part::partition_mesh_rcb;

    fn setup(nparts: usize) -> crate::decomp::Decomposition {
        let mesh = Mesh::unit_square(10, 10);
        let part = partition_mesh_rcb(&mesh, nparts);
        let p = presets::uniform_diffusion(1);
        decompose(&mesh, &p, &part, nparts, 1)
    }

    #[test]
    fn weighted_matrix_supported_on_overlap() {
        let d = setup(4);
        for s in &d.subdomains {
            let b = overlap_weighted_matrix(s);
            for i in 0..s.n_local() {
                for (j, v) in b.row(i) {
                    if v != 0.0 {
                        assert!(s.overlap[i] && s.overlap[j]);
                    }
                }
            }
            assert!(b.symmetry_defect() < 1e-10 * b.norm_inf().max(1e-300));
        }
    }

    #[test]
    fn deflation_block_shapes_and_pencil_residuals() {
        let d = setup(4);
        let opts = GeneoOpts {
            nev: 4,
            ..Default::default()
        };
        for s in &d.subdomains {
            let blk = deflation_block(s, &opts);
            assert!(blk.w.cols() >= 1, "no deflation vectors found");
            assert!(blk.w.cols() <= 4);
            assert_eq!(blk.w.rows(), s.n_local());
            // eigenvalues ascending, non-negative up to roundoff
            for w in blk.values.windows(2) {
                assert!(w[0] <= w[1] + 1e-12);
            }
            assert!(blk.values[0] > -1e-8);
        }
    }

    #[test]
    fn interior_subdomain_smallest_mode_is_flat() {
        // For uniform diffusion, the smallest GenEO mode of a floating
        // subdomain is the constant — so W's first column ≈ D_i · const.
        let mesh = Mesh::unit_square(12, 12);
        let part = partition_mesh_rcb(&mesh, 16);
        let p = presets::uniform_diffusion(1);
        let d = decompose(&mesh, &p, &part, 16, 1);
        let opts = GeneoOpts {
            nev: 3,
            ..Default::default()
        };
        // find a floating subdomain (no Dirichlet dof)
        let s = d
            .subdomains
            .iter()
            .find(|s| s.dirichlet.iter().all(|&b| !b))
            .expect("no floating subdomain in 16-way split");
        let blk = deflation_block(s, &opts);
        // smallest eigenvalue ≈ 0 (constants in the kernel of A^Neu)
        assert!(
            blk.values[0].abs() < 1e-6,
            "floating subdomain λ₀ = {}",
            blk.values[0]
        );
        // W[:,0] proportional to D (constant Λ scaled by PoU)
        let w0 = blk.w.col(0);
        let mut ratio = None;
        let mut proportional = true;
        for k in 0..s.n_local() {
            if s.d[k] > 1e-8 {
                let r = w0[k] / s.d[k];
                match ratio {
                    None => ratio = Some(r),
                    Some(r0) => {
                        if (r - r0).abs() > 1e-5 * r0.abs().max(1e-10) {
                            proportional = false;
                        }
                    }
                }
            }
        }
        assert!(proportional, "first mode is not the PoU-weighted constant");
    }

    #[test]
    fn zero_nev_or_no_overlap_yields_empty() {
        let d = setup(4);
        let blk = deflation_block(
            &d.subdomains[0],
            &GeneoOpts {
                nev: 0,
                ..Default::default()
            },
        );
        assert_eq!(blk.w.cols(), 0);
        // single subdomain: no overlap
        let mesh = Mesh::unit_square(4, 4);
        let part = vec![0u32; mesh.n_elements()];
        let p = presets::uniform_diffusion(1);
        let d1 = decompose(&mesh, &p, &part, 1, 1);
        let blk1 = deflation_block(&d1.subdomains[0], &GeneoOpts::default());
        assert_eq!(blk1.w.cols(), 0);
    }

    #[test]
    fn dirichlet_rows_of_w_vanish() {
        let d = setup(4);
        let opts = GeneoOpts {
            nev: 3,
            ..Default::default()
        };
        for s in &d.subdomains {
            let blk = deflation_block(s, &opts);
            for c in 0..blk.w.cols() {
                for k in 0..s.n_local() {
                    if s.dirichlet[k] {
                        assert_eq!(blk.w.col(c)[k], 0.0);
                    }
                }
            }
        }
    }

    #[test]
    fn nicolaides_scalar_is_pou() {
        let d = setup(4);
        for s in &d.subdomains {
            let w = nicolaides_block(s, 1);
            assert_eq!(w.cols(), 1);
            for k in 0..s.n_local() {
                let expect = if s.dirichlet[k] { 0.0 } else { s.d[k] };
                assert_eq!(w.col(0)[k], expect);
            }
        }
    }

    #[test]
    fn nicolaides_elasticity_spans_rigid_modes() {
        let mesh = Mesh::rectangle(8, 4, 2.0, 1.0);
        let part = partition_mesh_rcb(&mesh, 4);
        let p = presets::heterogeneous_elasticity(1, 2);
        let d = decompose(&mesh, &p, &part, 4, 1);
        for s in &d.subdomains {
            let w = nicolaides_block(s, 2);
            assert_eq!(w.cols(), 3);
            // On a floating (no Dirichlet) subdomain, A^Neu annihilates the
            // unweighted rigid modes; we check W columns are D·mode by
            // reconstructing the mode and verifying A^Neu·mode ≈ 0.
            if s.dirichlet.iter().any(|&b| b) {
                continue;
            }
            for c in 0..3 {
                let mut mode = vec![0.0; s.n_local()];
                for k in 0..s.n_local() {
                    mode[k] = if s.d[k] > 1e-14 {
                        w.col(c)[k] / s.d[k]
                    } else {
                        // fill from the analytic mode
                        let sdof = k / 2;
                        let x = &s.coords[sdof * 2..sdof * 2 + 2];
                        match (c, k % 2) {
                            (0, 0) => 1.0,
                            (0, 1) => 0.0,
                            (1, 0) => 0.0,
                            (1, 1) => 1.0,
                            (2, 0) => -x[1],
                            (2, 1) => x[0],
                            _ => unreachable!(),
                        }
                    };
                }
                let mut y = vec![0.0; s.n_local()];
                s.a_neumann.spmv(&mode, &mut y);
                let rel = dd_linalg::vector::norm_inf(&y)
                    / (s.a_neumann.norm_inf() * dd_linalg::vector::norm_inf(&mode));
                assert!(rel < 1e-10, "rigid mode {c} not in kernel: {rel}");
            }
        }
    }

    #[test]
    fn resize_truncates_and_caps() {
        let d = setup(4);
        let blk = deflation_block(
            &d.subdomains[0],
            &GeneoOpts {
                nev: 3,
                ..Default::default()
            },
        );
        let wide = resize_block(&blk, 6);
        assert_eq!(wide.cols(), blk.w.cols().min(6));
        let narrow = resize_block(&blk, 1);
        assert_eq!(narrow.cols(), 1);
        assert_eq!(narrow.col(0), blk.w.col(0));
    }
}
