//! The SPMD runtime: ranks as threads, typed mailboxes, communicators with
//! MPI-shaped collectives, and virtual-time accounting.
//!
//! The API deliberately mirrors the MPI calls of the paper's Algorithms 1–2
//! (`send`/`recv` ↔ `MPI_Isend`/`MPI_Irecv` + wait, [`Communicator::gather`]
//! ↔ `MPI_Gather`, [`Communicator::gatherv`] ↔ `MPI_Gatherv`,
//! [`Communicator::split`] ↔ `MPI_Comm_split`,
//! [`Communicator::iallreduce_sum_vec`] ↔ `MPI_Iallreduce`, …) so the
//! coarse-operator assembly in `dd-core` reads like the paper's pseudocode.
//!
//! ## Correct usage
//!
//! Like MPI, all ranks of a communicator must call collectives in the same
//! order; point-to-point messages are matched by `(source, tag)` FIFO.
//! Violations deadlock (and are reported by the runtime when every thread
//! is blocked) or panic on payload type mismatch.

use crate::model::CostModel;
use crate::time::VirtualClock;
use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::cell::Cell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering as AtOrd};
use std::sync::Arc;

/// Size in bytes a value would occupy on the wire — drives the β term of
/// the cost model. Implemented for the payload types the framework sends.
pub trait WireSize {
    fn wire_bytes(&self) -> usize;
}

macro_rules! prim_wire {
    ($($t:ty),*) => {$(
        impl WireSize for $t {
            fn wire_bytes(&self) -> usize { std::mem::size_of::<$t>() }
        }
        impl WireSize for Vec<$t> {
            fn wire_bytes(&self) -> usize { self.len() * std::mem::size_of::<$t>() }
        }
    )*};
}
prim_wire!(f64, f32, u8, u32, u64, usize, i32, i64, bool);

impl<A: WireSize, B: WireSize> WireSize for (A, B) {
    fn wire_bytes(&self) -> usize {
        self.0.wire_bytes() + self.1.wire_bytes()
    }
}

impl<A: WireSize, B: WireSize, C: WireSize> WireSize for (A, B, C) {
    fn wire_bytes(&self) -> usize {
        self.0.wire_bytes() + self.1.wire_bytes() + self.2.wire_bytes()
    }
}

impl WireSize for Vec<Vec<f64>> {
    fn wire_bytes(&self) -> usize {
        self.iter().map(|v| v.wire_bytes()).sum()
    }
}

impl WireSize for () {
    fn wire_bytes(&self) -> usize {
        0
    }
}

struct Envelope {
    payload: Box<dyn Any + Send>,
    arrival: f64,
    bytes: usize,
}

#[derive(Default)]
struct MailboxInner {
    queues: HashMap<(usize, u64), VecDeque<Envelope>>,
}

struct Mailbox {
    inner: Mutex<MailboxInner>,
    cv: Condvar,
}

struct Slot {
    contributions: Vec<Option<Box<dyn Any + Send>>>,
    entry: Vec<f64>,
    arrived: usize,
    done: bool,
    exit_clock: f64,
    result: Option<Arc<dyn Any + Send + Sync>>,
    taken: usize,
}

impl Slot {
    fn new(size: usize) -> Self {
        Slot {
            contributions: (0..size).map(|_| None).collect(),
            entry: vec![0.0; size],
            arrived: 0,
            done: false,
            exit_clock: 0.0,
            result: None,
            taken: 0,
        }
    }
}

/// Shared state of one communicator.
struct CommShared {
    size: usize,
    mailboxes: Vec<Mailbox>,
    slots: Mutex<HashMap<u64, Slot>>,
    slots_cv: Condvar,
    // statistics
    collective_calls: AtomicU64,
    collective_bytes: AtomicU64,
    p2p_messages: AtomicU64,
    p2p_bytes: AtomicU64,
}

impl CommShared {
    fn new(size: usize) -> Arc<Self> {
        Arc::new(CommShared {
            size,
            mailboxes: (0..size)
                .map(|_| Mailbox {
                    inner: Mutex::new(MailboxInner::default()),
                    cv: Condvar::new(),
                })
                .collect(),
            slots: Mutex::new(HashMap::new()),
            slots_cv: Condvar::new(),
            collective_calls: AtomicU64::new(0),
            collective_bytes: AtomicU64::new(0),
            p2p_messages: AtomicU64::new(0),
            p2p_bytes: AtomicU64::new(0),
        })
    }
}

/// Communication statistics of one communicator (aggregated over ranks).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Collective operations initiated (counted once per rank per call).
    pub collective_calls: u64,
    /// Payload bytes contributed to collectives (summed over ranks) — the
    /// wire volume of gathers/scatters/reductions, e.g. the §3.1.1
    /// comparison of index-free vs index-shipping coarse assembly.
    pub collective_bytes: u64,
    /// Point-to-point messages sent.
    pub p2p_messages: u64,
    /// Point-to-point payload bytes sent.
    pub p2p_bytes: u64,
}

/// A handle to a pending non-blocking reduction
/// (cf. `MPI_Iallreduce` in the paper's fused pipelined GMRES, §3.5).
pub struct PendingReduce<T> {
    seq: u64,
    post_clock: f64,
    _marker: std::marker::PhantomData<T>,
}

/// One rank's view of a communicator. Not `Send`: a communicator handle
/// lives and dies on its rank's thread (like an MPI communicator + rank).
pub struct Communicator {
    shared: Arc<CommShared>,
    model: CostModel,
    rank: usize,
    clock: Rc<VirtualClock>,
    seq: Cell<u64>,
    /// World-wide token serializing [`Communicator::compute`] sections so
    /// that thread-CPU measurements are free of cache contention between
    /// rank threads (the host has far fewer cores than ranks; virtual
    /// time, not wall time, is the reported quantity).
    compute_token: Arc<Mutex<()>>,
}

impl Communicator {
    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn size(&self) -> usize {
        self.shared.size
    }

    /// The rank's virtual clock.
    pub fn clock(&self) -> f64 {
        self.clock.now()
    }

    /// Reset this rank's clock (benchmark phase boundaries; combine with a
    /// [`Communicator::barrier`] so all ranks reset together).
    pub fn reset_clock(&self) {
        self.clock.reset();
    }

    /// Advance the clock by explicitly modeled time.
    pub fn advance_clock(&self, dt: f64) {
        self.clock.advance(dt);
    }

    /// Run a compute section, charging its thread-CPU time to the clock.
    ///
    /// Compute sections are serialized across ranks (see `compute_token`)
    /// so the measured CPU time reflects the work itself rather than cache
    /// thrash between oversubscribed rank threads.
    pub fn compute<R>(&self, f: impl FnOnce() -> R) -> R {
        let _token = self.compute_token.lock();
        self.clock.compute(f)
    }

    /// The cost model (shared by all communicators of a world).
    pub fn model(&self) -> CostModel {
        self.model
    }

    /// Aggregated statistics of this communicator.
    pub fn stats(&self) -> CommStats {
        CommStats {
            collective_calls: self.shared.collective_calls.load(AtOrd::Relaxed),
            collective_bytes: self.shared.collective_bytes.load(AtOrd::Relaxed),
            p2p_messages: self.shared.p2p_messages.load(AtOrd::Relaxed),
            p2p_bytes: self.shared.p2p_bytes.load(AtOrd::Relaxed),
        }
    }

    // ---------------------------------------------------------------- p2p

    /// Send `value` to `dest` with a user `tag` (non-blocking buffered send,
    /// like `MPI_Isend` + internal buffering).
    pub fn send<T: Send + WireSize + 'static>(&self, dest: usize, tag: u64, value: T) {
        assert!(dest < self.size(), "send: dest out of range");
        let bytes = value.wire_bytes();
        // Sender pays the injection latency; the payload lands after the
        // transfer time.
        self.clock.advance(self.model.alpha);
        let arrival = self.clock.now() + self.model.beta * bytes as f64;
        let mb = &self.shared.mailboxes[dest];
        {
            let mut inner = mb.inner.lock();
            inner
                .queues
                .entry((self.rank, tag))
                .or_default()
                .push_back(Envelope {
                    payload: Box::new(value),
                    arrival,
                    bytes,
                });
        }
        mb.cv.notify_all();
        self.shared.p2p_messages.fetch_add(1, AtOrd::Relaxed);
        self.shared.p2p_bytes.fetch_add(bytes as u64, AtOrd::Relaxed);
    }

    /// Blocking receive of the next message from `src` with `tag`.
    ///
    /// # Panics
    /// Panics if the payload type does not match `T`.
    pub fn recv<T: Send + 'static>(&self, src: usize, tag: u64) -> T {
        assert!(src < self.size(), "recv: src out of range");
        let mb = &self.shared.mailboxes[self.rank];
        let env = {
            let mut inner = mb.inner.lock();
            loop {
                if let Some(q) = inner.queues.get_mut(&(src, tag)) {
                    if let Some(env) = q.pop_front() {
                        break env;
                    }
                }
                mb.cv.wait(&mut inner);
            }
        };
        self.clock.advance_to(env.arrival);
        let _ = env.bytes;
        *env.payload
            .downcast::<T>()
            .expect("recv: payload type mismatch")
    }

    /// Exchange one message with every neighbor (the paper's
    /// `MPI_Ineighbor_alltoall` on a distributed-graph topology): sends
    /// `sends[k]` to `neighbors[k]` and returns the messages received from
    /// each neighbor, in neighbor order.
    pub fn neighbor_alltoall<T: Send + WireSize + 'static>(
        &self,
        neighbors: &[usize],
        tag: u64,
        sends: Vec<T>,
    ) -> Vec<T> {
        assert_eq!(neighbors.len(), sends.len());
        for (&n, s) in neighbors.iter().zip(sends) {
            self.send(n, tag, s);
        }
        neighbors.iter().map(|&n| self.recv(n, tag)).collect()
    }

    // --------------------------------------------------------- collectives

    /// Core collective machinery: deposit a contribution, let the last
    /// arriver run `finish` on all of them, synchronize clocks to the
    /// returned exit time.
    fn collective<R: Send + Sync + 'static>(
        &self,
        contribution: Box<dyn Any + Send>,
        finish: impl FnOnce(Vec<Box<dyn Any + Send>>, f64) -> (R, f64),
    ) -> Arc<R> {
        let seq = self.next_seq();
        self.shared.collective_calls.fetch_add(1, AtOrd::Relaxed);
        let size = self.size();
        let mut slots = self.shared.slots.lock();
        let slot = slots.entry(seq).or_insert_with(|| Slot::new(size));
        slot.contributions[self.rank] = Some(contribution);
        slot.entry[self.rank] = self.clock.now();
        slot.arrived += 1;
        if slot.arrived == size {
            let contribs: Vec<Box<dyn Any + Send>> = slot
                .contributions
                .iter_mut()
                .map(|c| c.take().expect("collective contribution missing"))
                .collect();
            let max_entry = slot.entry.iter().cloned().fold(0.0f64, f64::max);
            let (result, exit) = finish(contribs, max_entry);
            slot.result = Some(Arc::new(result));
            slot.exit_clock = exit;
            slot.done = true;
            self.shared.slots_cv.notify_all();
        } else {
            while !slots.get(&seq).map(|s| s.done).unwrap_or(false) {
                self.shared.slots_cv.wait(&mut slots);
            }
        }
        let slot = slots.get_mut(&seq).expect("slot vanished");
        let result = slot
            .result
            .clone()
            .expect("collective result missing")
            .downcast::<R>()
            .expect("collective result type mismatch");
        let exit = slot.exit_clock;
        slot.taken += 1;
        if slot.taken == size {
            slots.remove(&seq);
        }
        drop(slots);
        self.clock.advance_to(exit);
        result
    }

    fn next_seq(&self) -> u64 {
        let s = self.seq.get();
        self.seq.set(s + 1);
        s
    }

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        let size = self.size();
        let model = self.model;
        self.collective(Box::new(()), move |_, max_entry| {
            ((), max_entry + model.barrier(size))
        });
    }

    /// Broadcast `value` from `root` (non-roots pass `None`).
    pub fn bcast<T: Clone + Send + Sync + WireSize + 'static>(
        &self,
        root: usize,
        value: Option<T>,
    ) -> T {
        let size = self.size();
        self.shared
            .collective_bytes
            .fetch_add(value.as_ref().map_or(0, |v| v.wire_bytes()) as u64, AtOrd::Relaxed);
        let model = self.model;
        let r = self.collective(Box::new(value), move |mut contribs, max_entry| {
            let v = contribs[root]
                .downcast_mut::<Option<T>>()
                .expect("bcast type")
                .take()
                .expect("bcast: root passed None");
            let cost = model.bcast(size, v.wire_bytes());
            (v, max_entry + cost)
        });
        (*r).clone()
    }

    /// Gather with equal counts (`MPI_Gather`): root receives all values in
    /// rank order; others get `None`.
    pub fn gather<T: Send + Sync + WireSize + 'static>(
        &self,
        root: usize,
        value: T,
    ) -> Option<Vec<T>> {
        let size = self.size();
        self.shared
            .collective_bytes
            .fetch_add(value.wire_bytes() as u64, AtOrd::Relaxed);
        let model = self.model;
        let is_root = self.rank == root;
        let r = self.collective(Box::new(value), move |contribs, max_entry| {
            let vals: Vec<T> = contribs
                .into_iter()
                .map(|c| *c.downcast::<T>().expect("gather type"))
                .collect();
            let per_rank = vals.iter().map(|v| v.wire_bytes()).max().unwrap_or(0);
            let cost = model.gather_uniform(size, per_rank);
            (Mutex::new(Some(vals)), max_entry + cost)
        });
        if is_root {
            r.lock().take()
        } else {
            None
        }
    }

    /// Gather with varying counts (`MPI_Gatherv`) — same data movement,
    /// linear `O(N)` cost model (see `crate::model`).
    pub fn gatherv<T: Send + Sync + WireSize + 'static>(
        &self,
        root: usize,
        value: T,
    ) -> Option<Vec<T>> {
        let size = self.size();
        self.shared
            .collective_bytes
            .fetch_add(value.wire_bytes() as u64, AtOrd::Relaxed);
        let model = self.model;
        let is_root = self.rank == root;
        let r = self.collective(Box::new(value), move |contribs, max_entry| {
            let vals: Vec<T> = contribs
                .into_iter()
                .map(|c| *c.downcast::<T>().expect("gatherv type"))
                .collect();
            let total: usize = vals.iter().map(|v| v.wire_bytes()).sum();
            let cost = model.gather_varying(size, total);
            (Mutex::new(Some(vals)), max_entry + cost)
        });
        if is_root {
            r.lock().take()
        } else {
            None
        }
    }

    /// Scatter with equal counts (`MPI_Scatter`): root provides one value
    /// per rank; every rank receives its own.
    pub fn scatter<T: Send + Sync + WireSize + 'static>(
        &self,
        root: usize,
        values: Option<Vec<T>>,
    ) -> T {
        let size = self.size();
        self.shared
            .collective_bytes
            .fetch_add(values.as_ref().map_or(0, |vs| vs.iter().map(|v| v.wire_bytes()).sum::<usize>()) as u64, AtOrd::Relaxed);
        let model = self.model;
        let rank = self.rank;
        let r = self.collective(Box::new(values), move |mut contribs, max_entry| {
            let vals = contribs[root]
                .downcast_mut::<Option<Vec<T>>>()
                .expect("scatter type")
                .take()
                .expect("scatter: root passed None");
            assert_eq!(vals.len(), size, "scatter: need one value per rank");
            let per_rank = vals.iter().map(|v| v.wire_bytes()).max().unwrap_or(0);
            let cost = model.gather_uniform(size, per_rank); // symmetric cost
            let slots: Vec<Mutex<Option<T>>> = vals.into_iter().map(|v| Mutex::new(Some(v))).collect();
            (slots, max_entry + cost)
        });
        let v = r[rank].lock().take().expect("scatter: value already taken");
        v
    }

    /// Scatter with varying counts (`MPI_Scatterv`): linear cost model.
    pub fn scatterv<T: Send + Sync + WireSize + 'static>(
        &self,
        root: usize,
        values: Option<Vec<T>>,
    ) -> T {
        let size = self.size();
        self.shared
            .collective_bytes
            .fetch_add(values.as_ref().map_or(0, |vs| vs.iter().map(|v| v.wire_bytes()).sum::<usize>()) as u64, AtOrd::Relaxed);
        let model = self.model;
        let rank = self.rank;
        let r = self.collective(Box::new(values), move |mut contribs, max_entry| {
            let vals = contribs[root]
                .downcast_mut::<Option<Vec<T>>>()
                .expect("scatterv type")
                .take()
                .expect("scatterv: root passed None");
            assert_eq!(vals.len(), size);
            let total: usize = vals.iter().map(|v| v.wire_bytes()).sum();
            let cost = model.gather_varying(size, total);
            let slots: Vec<Mutex<Option<T>>> = vals.into_iter().map(|v| Mutex::new(Some(v))).collect();
            (slots, max_entry + cost)
        });
        let v = r[rank].lock().take().expect("scatterv: value already taken");
        v
    }

    /// Allgather with equal counts.
    pub fn allgather<T: Clone + Send + Sync + WireSize + 'static>(&self, value: T) -> Vec<T> {
        let size = self.size();
        self.shared
            .collective_bytes
            .fetch_add(value.wire_bytes() as u64, AtOrd::Relaxed);
        let model = self.model;
        let r = self.collective(Box::new(value), move |contribs, max_entry| {
            let vals: Vec<T> = contribs
                .into_iter()
                .map(|c| *c.downcast::<T>().expect("allgather type"))
                .collect();
            let per_rank = vals.iter().map(|v| v.wire_bytes()).max().unwrap_or(0);
            let cost = model.allgather_uniform(size, per_rank);
            (vals, max_entry + cost)
        });
        (*r).clone()
    }

    /// Allreduce: sum of scalars.
    pub fn allreduce_sum(&self, value: f64) -> f64 {
        let size = self.size();
        let model = self.model;
        let r = self.collective(Box::new(value), move |contribs, max_entry| {
            let s: f64 = contribs
                .into_iter()
                .map(|c| *c.downcast::<f64>().expect("allreduce type"))
                .sum();
            (s, max_entry + model.allreduce(size, 8))
        });
        *r
    }

    /// Allreduce: element-wise sum of equal-length vectors.
    pub fn allreduce_sum_vec(&self, value: Vec<f64>) -> Vec<f64> {
        let size = self.size();
        self.shared
            .collective_bytes
            .fetch_add(value.wire_bytes() as u64, AtOrd::Relaxed);
        let model = self.model;
        let r = self.collective(Box::new(value), move |contribs, max_entry| {
            let mut it = contribs.into_iter();
            let mut acc = *it.next().unwrap().downcast::<Vec<f64>>().expect("type");
            for c in it {
                let v = c.downcast::<Vec<f64>>().expect("type");
                assert_eq!(v.len(), acc.len(), "allreduce_sum_vec: length mismatch");
                for (a, b) in acc.iter_mut().zip(v.iter()) {
                    *a += b;
                }
            }
            let bytes = acc.len() * 8;
            (acc, max_entry + model.allreduce(size, bytes))
        });
        (*r).clone()
    }

    /// Allreduce: maximum of scalars (the paper's
    /// `MPI_Allreduce(ν_i, MPI_MAX)` to uniformize deflation counts).
    pub fn allreduce_max(&self, value: f64) -> f64 {
        let size = self.size();
        let model = self.model;
        let r = self.collective(Box::new(value), move |contribs, max_entry| {
            let m = contribs
                .into_iter()
                .map(|c| *c.downcast::<f64>().expect("type"))
                .fold(f64::NEG_INFINITY, f64::max);
            (m, max_entry + model.allreduce(size, 8))
        });
        *r
    }

    /// Allreduce: maximum of usize.
    pub fn allreduce_max_usize(&self, value: usize) -> usize {
        let size = self.size();
        let model = self.model;
        let r = self.collective(Box::new(value), move |contribs, max_entry| {
            let m = contribs
                .into_iter()
                .map(|c| *c.downcast::<usize>().expect("type"))
                .max()
                .unwrap_or(0);
            (m, max_entry + model.allreduce(size, 8))
        });
        *r
    }

    /// Non-blocking element-wise vector sum (`MPI_Iallreduce`): returns a
    /// handle immediately; the posting cost is a single injection latency.
    /// Complete with [`Communicator::wait_reduce`].
    pub fn iallreduce_sum_vec(&self, value: Vec<f64>) -> PendingReduce<Vec<f64>> {
        let seq = self.next_seq();
        self.shared.collective_calls.fetch_add(1, AtOrd::Relaxed);
        let size = self.size();
        let model = self.model;
        let mut slots = self.shared.slots.lock();
        let slot = slots.entry(seq).or_insert_with(|| Slot::new(size));
        slot.contributions[self.rank] = Some(Box::new(value));
        slot.entry[self.rank] = self.clock.now();
        slot.arrived += 1;
        if slot.arrived == size {
            let contribs: Vec<Box<dyn Any + Send>> = slot
                .contributions
                .iter_mut()
                .map(|c| c.take().unwrap())
                .collect();
            let max_entry = slot.entry.iter().cloned().fold(0.0f64, f64::max);
            let mut it = contribs.into_iter();
            let mut acc = *it.next().unwrap().downcast::<Vec<f64>>().expect("type");
            for c in it {
                let v = c.downcast::<Vec<f64>>().expect("type");
                for (a, b) in acc.iter_mut().zip(v.iter()) {
                    *a += b;
                }
            }
            let bytes = acc.len() * 8;
            slot.exit_clock = max_entry + model.allreduce(size, bytes);
            slot.result = Some(Arc::new(acc));
            slot.done = true;
            self.shared.slots_cv.notify_all();
        }
        drop(slots);
        // Posting overhead only — the reduction itself overlaps with
        // whatever the rank does before waiting.
        self.clock.advance(self.model.alpha);
        PendingReduce {
            seq,
            post_clock: self.clock.now(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Complete a pending non-blocking reduction. The clock advances to the
    /// later of "now" and the modeled completion time — time spent
    /// computing between post and wait hides the reduction latency.
    pub fn wait_reduce(&self, pending: PendingReduce<Vec<f64>>) -> Vec<f64> {
        let mut slots = self.shared.slots.lock();
        while !slots.get(&pending.seq).map(|s| s.done).unwrap_or(false) {
            self.shared.slots_cv.wait(&mut slots);
        }
        let slot = slots.get_mut(&pending.seq).unwrap();
        let result = slot
            .result
            .clone()
            .unwrap()
            .downcast::<Vec<f64>>()
            .expect("wait_reduce type");
        let exit = slot.exit_clock;
        slot.taken += 1;
        if slot.taken == self.size() {
            slots.remove(&pending.seq);
        }
        drop(slots);
        let _ = pending.post_clock;
        self.clock.advance_to(exit);
        (*result).clone()
    }

    /// Split into sub-communicators by color (`MPI_Comm_split`). Ranks
    /// passing `None` get `None` back (`MPI_UNDEFINED`). Sub-ranks follow
    /// parent rank order, matching the paper's construction where "the
    /// ranks of the slaves follow the same order as in MPI_COMM_WORLD".
    pub fn split(&self, color: Option<usize>) -> Option<Communicator> {
        let size = self.size();
        let model = self.model;
        let rank = self.rank;
        let groups = self.collective(Box::new(color), move |contribs, max_entry| {
            let colors: Vec<Option<usize>> = contribs
                .into_iter()
                .map(|c| *c.downcast::<Option<usize>>().expect("split type"))
                .collect();
            // color → (shared comm, parent ranks in order)
            let mut map: HashMap<usize, Vec<usize>> = HashMap::new();
            for (r, c) in colors.iter().enumerate() {
                if let Some(c) = c {
                    map.entry(*c).or_default().push(r);
                }
            }
            let built: HashMap<usize, (Arc<CommShared>, Vec<usize>)> = map
                .into_iter()
                .map(|(c, members)| {
                    let shared = CommShared::new(members.len());
                    (c, (shared, members))
                })
                .collect();
            let cost = model.allgather_uniform(size, 8);
            (built, max_entry + cost)
        });
        let color = color?;
        let (shared, members) = groups.get(&color)?.clone();
        let sub_rank = members.iter().position(|&r| r == rank)?;
        Some(Communicator {
            shared,
            model,
            rank: sub_rank,
            clock: Rc::clone(&self.clock),
            seq: Cell::new(0),
            compute_token: Arc::clone(&self.compute_token),
        })
    }
}

/// The SPMD world: spawns one OS thread per rank and runs `f` on each.
pub struct World;

impl World {
    /// Run `f` on `n` ranks with the given cost model, returning the ranks'
    /// results in rank order. Panics in any rank propagate.
    pub fn run<R, F>(n: usize, model: CostModel, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&Communicator) -> R + Send + Sync,
    {
        assert!(n >= 1);
        let shared = CommShared::new(n);
        let compute_token = Arc::new(Mutex::new(()));
        let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for rank in 0..n {
                let shared = Arc::clone(&shared);
                let compute_token = Arc::clone(&compute_token);
                let f = &f;
                let results = &results;
                let handle = std::thread::Builder::new()
                    .name(format!("rank-{rank}"))
                    .stack_size(8 * 1024 * 1024)
                    .spawn_scoped(scope, move || {
                        let comm = Communicator {
                            shared,
                            model,
                            rank,
                            clock: Rc::new(VirtualClock::new()),
                            seq: Cell::new(0),
                            compute_token,
                        };
                        let r = f(&comm);
                        results.lock()[rank] = Some(r);
                    })
                    .expect("failed to spawn rank thread");
                handles.push(handle);
            }
            for h in handles {
                if let Err(e) = h.join() {
                    std::panic::resume_unwind(e);
                }
            }
        });
        results
            .into_inner()
            .into_iter()
            .map(|r| r.expect("rank produced no result"))
            .collect()
    }

    /// [`World::run`] with the default cost model.
    pub fn run_default<R, F>(n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&Communicator) -> R + Send + Sync,
    {
        Self::run(n, CostModel::default(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong() {
        let out = World::run_default(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, vec![1.0f64, 2.0, 3.0]);
                comm.recv::<Vec<f64>>(1, 8)
            } else {
                let v = comm.recv::<Vec<f64>>(0, 7);
                let doubled: Vec<f64> = v.iter().map(|x| x * 2.0).collect();
                comm.send(0, 8, doubled.clone());
                doubled
            }
        });
        assert_eq!(out[0], vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn messages_fifo_per_source_tag() {
        let out = World::run_default(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..10u64 {
                    comm.send(1, 3, i);
                }
                Vec::new()
            } else {
                (0..10).map(|_| comm.recv::<u64>(0, 3)).collect::<Vec<_>>()
            }
        });
        assert_eq!(out[1], (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn allreduce_sum_and_max() {
        let out = World::run_default(5, |comm| {
            let s = comm.allreduce_sum(comm.rank() as f64);
            let m = comm.allreduce_max(comm.rank() as f64);
            let mu = comm.allreduce_max_usize(comm.rank() * 3);
            (s, m, mu)
        });
        for &(s, m, mu) in &out {
            assert_eq!(s, 10.0);
            assert_eq!(m, 4.0);
            assert_eq!(mu, 12);
        }
    }

    #[test]
    fn allreduce_vec_deterministic() {
        let a = World::run_default(4, |comm| {
            comm.allreduce_sum_vec(vec![comm.rank() as f64 * 0.1, 1.0])
        });
        let b = World::run_default(4, |comm| {
            comm.allreduce_sum_vec(vec![comm.rank() as f64 * 0.1, 1.0])
        });
        assert_eq!(a, b);
        assert!((a[0][1] - 4.0).abs() < 1e-15);
    }

    #[test]
    fn gather_and_scatter_roundtrip() {
        let out = World::run_default(4, |comm| {
            let gathered = comm.gather(0, vec![comm.rank() as f64; 2]);
            let scattered = if comm.rank() == 0 {
                let g = gathered.unwrap();
                assert_eq!(g.len(), 4);
                comm.scatter(0, Some(g))
            } else {
                comm.scatter::<Vec<f64>>(0, None)
            };
            scattered
        });
        for (r, v) in out.iter().enumerate() {
            assert_eq!(v, &vec![r as f64; 2]);
        }
    }

    #[test]
    fn gatherv_varying_lengths() {
        let out = World::run_default(3, |comm| {
            let mine = vec![comm.rank() as f64; comm.rank() + 1];
            comm.gatherv(2, mine)
        });
        let g = out[2].as_ref().unwrap();
        assert_eq!(g[0].len(), 1);
        assert_eq!(g[1].len(), 2);
        assert_eq!(g[2].len(), 3);
    }

    #[test]
    fn bcast_from_nonzero_root() {
        let out = World::run_default(4, |comm| {
            let v = if comm.rank() == 2 {
                Some(vec![9.0f64, 8.0])
            } else {
                None
            };
            comm.bcast(2, v)
        });
        for v in out {
            assert_eq!(v, vec![9.0, 8.0]);
        }
    }

    #[test]
    fn allgather_orders_by_rank() {
        let out = World::run_default(4, |comm| comm.allgather(comm.rank() as u64 * 10));
        for v in out {
            assert_eq!(v, vec![0, 10, 20, 30]);
        }
    }

    #[test]
    fn split_into_groups() {
        // 6 ranks, colors 0/1 alternating: sub-comms of size 3 with ranks
        // ordered by world rank.
        let out = World::run_default(6, |comm| {
            let color = comm.rank() % 2;
            let sub = comm.split(Some(color)).unwrap();
            let members = sub.allgather(comm.rank());
            (sub.rank(), sub.size(), members)
        });
        assert_eq!(out[0].2, vec![0, 2, 4]);
        assert_eq!(out[1].2, vec![1, 3, 5]);
        assert_eq!(out[4], (2, 3, vec![0, 2, 4]));
    }

    #[test]
    fn split_undefined_gets_none() {
        let out = World::run_default(3, |comm| {
            let color = if comm.rank() == 1 { None } else { Some(0) };
            comm.split(color).is_none()
        });
        assert_eq!(out, vec![false, true, false]);
    }

    #[test]
    fn neighbor_alltoall_ring() {
        let out = World::run_default(4, |comm| {
            let n = comm.size();
            let left = (comm.rank() + n - 1) % n;
            let right = (comm.rank() + 1) % n;
            let recvd = comm.neighbor_alltoall(
                &[left, right],
                42,
                vec![comm.rank() as f64, comm.rank() as f64],
            );
            (recvd[0], recvd[1])
        });
        assert_eq!(out[0], (3.0, 1.0));
        assert_eq!(out[2], (1.0, 3.0));
    }

    #[test]
    fn clocks_advance_through_comm() {
        let out = World::run_default(3, |comm| {
            let t0 = comm.clock();
            comm.barrier();
            comm.allreduce_sum(1.0);
            comm.clock() - t0
        });
        for dt in out {
            assert!(dt > 0.0, "clock did not advance: {dt}");
        }
    }

    #[test]
    fn collective_synchronizes_clocks() {
        let out = World::run_default(2, |comm| {
            if comm.rank() == 0 {
                comm.advance_clock(5.0); // rank 0 is "slow"
            }
            comm.barrier();
            comm.clock()
        });
        // After the barrier both ranks are at ≥ 5s.
        assert!(out[1] >= 5.0, "rank 1 clock {} < 5", out[1]);
    }

    #[test]
    fn nonblocking_reduce_overlaps() {
        let out = World::run_default(2, |comm| {
            let pend = comm.iallreduce_sum_vec(vec![1.0, comm.rank() as f64]);
            // Simulated overlapped work longer than the reduction.
            comm.advance_clock(1.0);
            let t_before_wait = comm.clock();
            let r = comm.wait_reduce(pend);
            // The wait must not add the full reduction on top of the work.
            assert!(comm.clock() - t_before_wait < 0.5);
            r
        });
        assert_eq!(out[0], vec![2.0, 1.0]);
        assert_eq!(out[1], vec![2.0, 1.0]);
    }

    #[test]
    fn multiple_pending_reduces_wait_any_order() {
        let out = World::run_default(3, |comm| {
            let p1 = comm.iallreduce_sum_vec(vec![1.0]);
            let p2 = comm.iallreduce_sum_vec(vec![10.0 * (comm.rank() + 1) as f64]);
            // wait in reverse order of posting
            let r2 = comm.wait_reduce(p2);
            let r1 = comm.wait_reduce(p1);
            (r1[0], r2[0])
        });
        for &(a, b) in &out {
            assert_eq!(a, 3.0);
            assert_eq!(b, 60.0);
        }
    }

    #[test]
    fn stats_count_messages() {
        let out = World::run_default(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, vec![0.0f64; 100]);
            } else {
                let _ = comm.recv::<Vec<f64>>(0, 1);
            }
            comm.barrier();
            comm.stats()
        });
        assert_eq!(out[0].p2p_messages, 1);
        assert_eq!(out[0].p2p_bytes, 800);
        assert_eq!(out[0].collective_calls, 2); // one barrier per rank
    }

    #[test]
    fn tags_isolate_message_streams() {
        let out = World::run_default(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 10, 1.0f64);
                comm.send(1, 20, 2.0f64);
                comm.send(1, 10, 3.0f64);
                0.0
            } else {
                // receive tag 20 first even though it was sent second
                let b = comm.recv::<f64>(0, 20);
                let a1 = comm.recv::<f64>(0, 10);
                let a2 = comm.recv::<f64>(0, 10);
                b * 100.0 + a1 * 10.0 + a2
            }
        });
        assert_eq!(out[1], 213.0);
    }

    #[test]
    fn sub_communicator_collectives_are_independent() {
        // Interleave collectives on world and on a split without deadlock
        // or cross-talk.
        let out = World::run_default(4, |comm| {
            let sub = comm.split(Some(comm.rank() % 2)).unwrap();
            let s1 = sub.allreduce_sum(1.0);
            let w = comm.allreduce_sum(10.0);
            let s2 = sub.allreduce_sum(comm.rank() as f64);
            (s1, w, s2)
        });
        for (r, &(s1, w, s2)) in out.iter().enumerate() {
            assert_eq!(s1, 2.0);
            assert_eq!(w, 40.0);
            // color 0 = ranks {0,2}, color 1 = ranks {1,3}
            let expect = if r % 2 == 0 { 2.0 } else { 4.0 };
            assert_eq!(s2, expect, "rank {r}");
        }
    }

    #[test]
    fn nested_split() {
        // split of a split (the paper's masterComm drawn from splitComm
        // leaders).
        let out = World::run_default(4, |comm| {
            let sub = comm.split(Some(comm.rank() / 2)).unwrap();
            let leaders = comm.split(if sub.rank() == 0 { Some(0) } else { None });
            match leaders {
                Some(l) => l.allgather(comm.rank() as u64),
                None => Vec::new(),
            }
        });
        assert_eq!(out[0], vec![0, 2]);
        assert_eq!(out[2], vec![0, 2]);
        assert!(out[1].is_empty() && out[3].is_empty());
    }

    #[test]
    fn gather_cost_scales_better_than_gatherv() {
        // The modeled clocks must reflect the O(log N) vs O(N) distinction.
        let t_uniform = World::run_default(16, |comm| {
            comm.barrier();
            comm.reset_clock();
            for _ in 0..50 {
                let _ = comm.gather(0, 1.0f64);
            }
            comm.clock()
        });
        let t_varying = World::run_default(16, |comm| {
            comm.barrier();
            comm.reset_clock();
            for _ in 0..50 {
                let _ = comm.gatherv(0, 1.0f64);
            }
            comm.clock()
        });
        assert!(
            t_varying[0] > 1.5 * t_uniform[0],
            "gatherv {:.2e} not clearly costlier than gather {:.2e}",
            t_varying[0],
            t_uniform[0]
        );
    }

    #[test]
    #[should_panic]
    fn type_mismatch_panics() {
        World::run_default(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, 1.0f64);
            } else {
                let _ = comm.recv::<u64>(0, 0);
            }
        });
    }

    #[test]
    fn many_ranks_smoke() {
        let out = World::run_default(32, |comm| comm.allreduce_sum(1.0));
        assert!(out.iter().all(|&s| s == 32.0));
    }
}
