//! Elastic-membership chaos tests: worlds that *grow* mid-solve (reserve
//! ranks admitted through `try_grow` and folded in by online
//! repartitioning), straggler suspicion and eviction, and the differential
//! contract that a grow-interrupted solve converges to the uninterrupted
//! solution on Figure-10-style workloads.

use dd_geneo::comm::{CostModel, FaultPlan, SuspicionPolicy, World};
use dd_geneo::core::problem::presets;
use dd_geneo::core::{
    decompose, try_run_spmd_elastic, CheckpointStore, CoarseCache, Decomposition, GeneoOpts,
    RecoveryOpts, SpmdError, SpmdOpts, SpmdReport,
};
use dd_geneo::krylov::GmresOpts;
use dd_geneo::mesh::Mesh;
use dd_geneo::part::partition_mesh_rcb;
use std::sync::Arc;

fn setup(nmesh: usize, nparts: usize) -> Arc<Decomposition> {
    let mesh = Mesh::unit_square(nmesh, nmesh);
    let part = partition_mesh_rcb(&mesh, nparts);
    let p = presets::heterogeneous_diffusion(1);
    Arc::new(decompose(&mesh, &p, &part, nparts, 1))
}

fn elastic_opts() -> SpmdOpts {
    SpmdOpts {
        geneo: GeneoOpts {
            nev: 5,
            ..Default::default()
        },
        gmres: GmresOpts {
            tol: 1e-6,
            max_iters: 500,
            ..Default::default()
        },
        recovery: RecoveryOpts {
            enabled: true,
            checkpoint_interval: 1,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Per-rank outcome of an elastic run: `None` for never-admitted reserves.
type ElasticResult = Option<Result<(SpmdReport, Vec<(usize, Vec<f64>)>), SpmdError>>;

fn run_elastic_with_plan(
    decomp: &Arc<Decomposition>,
    founders: usize,
    reserve: usize,
    opts: &SpmdOpts,
    plan: FaultPlan,
) -> Vec<ElasticResult> {
    let d2 = Arc::clone(decomp);
    let opts = opts.clone();
    let store = Arc::new(CheckpointStore::new());
    let cache = Arc::new(CoarseCache::new());
    World::run_elastic(founders, reserve, CostModel::default(), plan, move |comm| {
        try_run_spmd_elastic(&d2, comm, &opts, &store, &cache).map(|s| (s.report, s.locals))
    })
}

/// `‖b − A x‖ / ‖b‖` of a reassembled global solution.
fn global_residual(decomp: &Decomposition, x: &[f64]) -> f64 {
    let mut ax = vec![0.0; decomp.n_global];
    decomp.a_global.spmv(x, &mut ax);
    let (mut num, mut den) = (0.0, 0.0);
    for (a, b) in ax.iter().zip(&decomp.rhs_global) {
        num += (a - b) * (a - b);
        den += b * b;
    }
    (num / den).sqrt()
}

/// Reassemble the global solution from the per-subdomain locals of every
/// completed rank, asserting exact single coverage of all subdomains.
fn reassemble(decomp: &Decomposition, results: &[ElasticResult]) -> Vec<f64> {
    let mut by_sub: Vec<Option<Vec<f64>>> = vec![None; decomp.n_subdomains()];
    for res in results.iter().flatten().flatten() {
        for (s, x) in &res.1 {
            assert!(by_sub[*s].is_none(), "subdomain {s} owned twice");
            by_sub[*s] = Some(x.clone());
        }
    }
    let locals: Vec<Vec<f64>> = by_sub
        .into_iter()
        .enumerate()
        .map(|(s, x)| x.unwrap_or_else(|| panic!("subdomain {s} not covered by any member")))
        .collect();
    decomp.from_locals(&locals)
}

fn rel_dist(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let num: f64 = a
        .iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt();
    let den: f64 = b.iter().map(|y| y * y).sum::<f64>().sqrt();
    num / den.max(1e-300)
}

/// Fault-free elastic run with fewer founders than subdomains: each rank
/// hosts its balanced contiguous chunk, the solve is an ordinary epoch-0
/// run (no recoveries), and the reassembled solution meets tolerance.
#[test]
fn elastic_fault_free_run_chunks_subdomains_and_converges() {
    let decomp = setup(12, 6);
    let results = run_elastic_with_plan(&decomp, 4, 0, &elastic_opts(), FaultPlan::default());
    for (rank, res) in results.iter().enumerate() {
        let (report, locals) = res
            .as_ref()
            .expect("founder produced no result")
            .as_ref()
            .expect("fault-free elastic run must not fail");
        assert!(report.converged, "rank {rank} did not converge");
        assert!(
            report.run.recoveries.is_empty(),
            "epoch 0 is not a recovery"
        );
        // Balanced chunks over 6 subdomains and 4 founders: 2/2/1/1.
        let expect = if rank < 2 { 2 } else { 1 };
        assert_eq!(locals.len(), expect, "rank {rank} owns the wrong chunk");
    }
    let rr = global_residual(&decomp, &reassemble(&decomp, &results));
    assert!(rr <= 1e-5, "elastic residual {rr:e} misses tolerance");
}

/// Two reserves join mid-iteration: the world grows 4 → 6, subdomains
/// repartition one-per-rank, only moved subdomains recompute their coarse
/// rows (the rest reuse the cache), and the solve resumes from the last
/// complete checkpoint and converges.
#[test]
fn join_during_solve_repartitions_and_resumes() {
    let decomp = setup(12, 6);
    let plan = FaultPlan::new(61)
        .with_join(4, "solve-iteration-2")
        .with_join(5, "solve-iteration-2");
    let results = run_elastic_with_plan(&decomp, 4, 2, &elastic_opts(), plan);
    for (rank, res) in results.iter().enumerate() {
        let (report, locals) = res
            .as_ref()
            .unwrap_or_else(|| panic!("rank {rank} was never admitted"))
            .as_ref()
            .unwrap_or_else(|e| panic!("rank {rank} failed: {e}"));
        assert!(report.converged, "rank {rank} did not converge");
        let rec = report
            .run
            .recoveries
            .last()
            .unwrap_or_else(|| panic!("rank {rank} recorded no recovery"));
        assert_eq!(rec.joined, vec![4, 5], "rank {rank}: wrong joiner set");
        assert!(rec.dead.is_empty() && rec.evicted.is_empty());
        assert!(rec.epoch >= 1, "grow must bump the epoch");
        // 6 members over 6 subdomains: one each, so at least the chunks
        // that changed hands were recomputed and the rest reused.
        assert_eq!(locals.len(), 1, "rank {rank} after repartition");
        assert_eq!(
            rec.moved.len() + rec.reused.len(),
            decomp.n_subdomains(),
            "moved/reused must partition the subdomains"
        );
        assert!(!rec.moved.is_empty(), "a grow must move subdomains");
        assert!(
            !rec.reused.is_empty(),
            "unmoved subdomains must reuse cached coarse rows"
        );
        assert!(
            rec.resume_iteration.is_some(),
            "checkpoints existed; the solve must resume, not restart"
        );
        // Satellite: recovery-phase virtual-time costs are visible. A
        // joiner pays no agreement (it waited in the lobby), so its
        // record honestly carries zero there.
        if rank < 4 {
            assert!(rec.t_agreement > 0.0, "agreement cost not recorded");
        }
        assert!(rec.t_reassembly > 0.0, "re-assembly cost not recorded");
        assert!(
            rec.t_refactorization >= 0.0 && rec.t_refactorization.is_finite(),
            "refactorization cost not recorded"
        );
    }
    let rr = global_residual(&decomp, &reassemble(&decomp, &results));
    assert!(rr <= 1e-5, "post-grow residual {rr:e} misses tolerance");
}

/// A straggling rank (alive, heartbeats suppressed) is suspected under the
/// k-missed policy, evicted by its peers, and reports `Evicted` —
/// distinguishable from death — while the survivors repartition and finish.
#[test]
fn straggler_is_suspected_evicted_and_distinguished_from_death() {
    let decomp = setup(12, 6);
    let victim = 1usize;
    let o = SpmdOpts {
        one_level_only: true,
        recovery: RecoveryOpts {
            enabled: true,
            checkpoint_interval: 2,
            suspicion: Some(SuspicionPolicy {
                deadline: f64::INFINITY,
                k_missed: 3,
            }),
            ..Default::default()
        },
        ..elastic_opts()
    };
    let plan = FaultPlan::new(67).with_straggle(victim, "solve-iteration-2");
    let results = run_elastic_with_plan(&decomp, 4, 0, &o, plan);
    match results[victim].as_ref().expect("victim produced no result") {
        Err(SpmdError::Evicted { rank }) => assert_eq!(*rank, victim),
        other => panic!("straggler must report Evicted, got {other:?}"),
    }
    for (rank, res) in results.iter().enumerate() {
        if rank == victim {
            continue;
        }
        let (report, _) = res
            .as_ref()
            .expect("survivor produced no result")
            .as_ref()
            .unwrap_or_else(|e| panic!("survivor {rank} failed: {e}"));
        assert!(report.converged, "survivor {rank} did not converge");
        let rec = report.run.recoveries.last().expect("no recovery recorded");
        assert_eq!(rec.evicted, vec![victim], "eviction must be recorded");
        assert!(
            !rec.dead.contains(&victim),
            "eviction must not masquerade as death"
        );
    }
    let rr = global_residual(&decomp, &reassemble(&decomp, &results));
    assert!(rr <= 1e-5, "post-eviction residual {rr:e} misses tolerance");
}

/// The acceptance scenario end to end: a solve starting on 4 founders
/// admits 2 joiners mid-iteration, later evicts 1 straggler, and still
/// completes from checkpointed residual history within tolerance.
#[test]
fn grow_then_evict_straggler_completes_within_tolerance() {
    let decomp = setup(16, 6);
    let victim = 1usize;
    let o = SpmdOpts {
        one_level_only: true,
        gmres: GmresOpts {
            tol: 1e-8,
            max_iters: 500,
            ..Default::default()
        },
        recovery: RecoveryOpts {
            enabled: true,
            checkpoint_interval: 1,
            max_recoveries: 4,
            suspicion: Some(SuspicionPolicy {
                deadline: f64::INFINITY,
                k_missed: 3,
            }),
            ..Default::default()
        },
        ..elastic_opts()
    };
    let plan = FaultPlan::new(71)
        .with_join(4, "solve-iteration-2")
        .with_join(5, "solve-iteration-2")
        .with_straggle(victim, "solve-iteration-4");
    let results = run_elastic_with_plan(&decomp, 4, 2, &o, plan);
    match results[victim].as_ref().expect("victim produced no result") {
        Err(SpmdError::Evicted { rank }) => assert_eq!(*rank, victim),
        other => panic!("straggler must report Evicted, got {other:?}"),
    }
    for (rank, res) in results.iter().enumerate() {
        if rank == victim {
            continue;
        }
        let (report, _) = res
            .as_ref()
            .unwrap_or_else(|| panic!("rank {rank} was never admitted"))
            .as_ref()
            .unwrap_or_else(|e| panic!("rank {rank} failed: {e}"));
        assert!(report.converged, "rank {rank} did not converge");
        let last = report.run.recoveries.last().expect("no recovery recorded");
        assert_eq!(last.joined, vec![4, 5], "joiners must stay members");
        assert_eq!(last.evicted, vec![victim]);
        assert!(
            last.resume_iteration.is_some(),
            "the checkpoint contract promises a resume, not a restart"
        );
    }
    let rr = global_residual(&decomp, &reassemble(&decomp, &results));
    assert!(rr <= 1e-5, "acceptance residual {rr:e} misses tolerance");
}

/// Differential contract (satellite): a solve interrupted by a grow and
/// online repartitioning converges to the *same* solution as the
/// uninterrupted run on a Figure-10 workload — fault-free and with an
/// armed wire-fault plan (delays and drops are payload-preserving).
#[test]
fn grow_interrupted_solve_matches_uninterrupted_on_fig10() {
    let decomp = setup(14, 6);
    let o = SpmdOpts {
        gmres: GmresOpts {
            tol: 1e-12,
            max_iters: 800,
            ..Default::default()
        },
        ..elastic_opts()
    };
    // Uninterrupted reference: the same 4-founder partition, reserves
    // never announced, so the whole solve runs at epoch 0.
    let base = run_elastic_with_plan(&decomp, 4, 2, &o, FaultPlan::default());
    let x_base = reassemble(&decomp, &base);
    for plan in [
        FaultPlan::new(73)
            .with_join(4, "solve-iteration-3")
            .with_join(5, "solve-iteration-3"),
        FaultPlan::new(79)
            .with_join(4, "solve-iteration-3")
            .with_join(5, "solve-iteration-3")
            .with_delays(0.2, 1e-4)
            .with_drops(0.2, 1),
    ] {
        let armed = plan.is_active();
        let results = run_elastic_with_plan(&decomp, 4, 2, &o, plan);
        for (rank, res) in results.iter().enumerate() {
            let (report, _) = res
                .as_ref()
                .unwrap_or_else(|| panic!("rank {rank} was never admitted"))
                .as_ref()
                .unwrap_or_else(|e| panic!("rank {rank} failed: {e}"));
            assert!(report.converged, "rank {rank} did not converge");
        }
        let x = reassemble(&decomp, &results);
        let rel = rel_dist(&x, &x_base);
        assert!(
            rel < 1e-10,
            "grow-interrupted solution diverged (armed={armed}): rel {rel:e}"
        );
    }
}
