//! # dd-solver
//!
//! Sparse symmetric direct solver (LDLᵀ) with fill-reducing orderings — the
//! workspace's replacement for the MUMPS / PaStiX / PARDISO / WSMP solvers
//! the paper uses for subdomain factorizations and the coarse operator.
//!
//! * [`ordering`] — reverse Cuthill–McKee and quotient-graph minimum degree.
//! * [`ldlt`] — elimination-tree based up-looking LDLᵀ with forward/backward
//!   solves, inertia computation, and multi-RHS solves.
//! * [`supernodal`] — multifrontal LDLᵀ with relaxed supernodes and dense
//!   blocked panels (the raw-speed path; `ldlt` stays the differential
//!   oracle).
//! * [`local`] — [`local::LocalLdlt`], the backend-selectable wrapper the
//!   SPMD layer factors subdomain matrices through.
//! * [`dist_ldlt`] — block fan-in LDLᵀ of a row-distributed matrix over a
//!   communicator, with distributed triangular solves (the coarse operator
//!   `E` across the elected masters, §3.2).

// Triangular solves, factorizations and stencil loops read most
// naturally with explicit indices; iterator rewrites obscure the math.
#![allow(clippy::needless_range_loop)]

pub mod dist_ldlt;
pub mod ldlt;
pub mod local;
pub mod ordering;
pub mod supernodal;

pub use dist_ldlt::DistLdlt;
pub use ldlt::{LdltError, Ordering, PivotPolicy, SparseLdlt};
pub use local::{LdltBackend, LocalLdlt};
pub use supernodal::{PanelDefect, SupernodalLdlt};
