//! Abstract deflation: coarse operators built from *arbitrary* deflation
//! vectors, and the a-posteriori Ritz construction sketched in the paper's
//! conclusion.
//!
//! §3 of the paper stresses that the framework "is not directly linked to
//! domain decomposition methods, meaning that it is possible to use it to
//! assemble coarse operators with other abstract deflation vectors, for
//! example as defined in [Grigori–Stompor–Szydlarski] for simulations in
//! cosmology". This module provides that escape hatch: a dense block of
//! global deflation vectors `Z`, the coarse operator `E = ZᵀAZ`, and the
//! `A-DEF1` combination with any smoother.
//!
//! The conclusion (§4) also proposes obtaining the deflation vectors
//! *a posteriori*, "during the convergence of the iterative method, using
//! for example approximations of the Ritz vectors". [`ritz_deflation`]
//! implements that: run a few Arnoldi steps of the one-level-preconditioned
//! operator, take the Ritz vectors of smallest Ritz value — the directions
//! that slow the Krylov method down — and deflate them in subsequent
//! solves (the multiple right-hand-side scenario).

use crate::error::SpmdError;
use dd_krylov::{InnerProduct, Operator, Preconditioner, SeqDot};
use dd_linalg::{jacobi, vector, CsrMatrix, DMat, DenseLdlt};
use std::cell::Cell;

/// A coarse operator `E = ZᵀAZ` for an explicit (dense, global) deflation
/// block `Z ∈ R^{n×m}`, factored densely (abstract deflation spaces are
/// small: `m` is tens at most).
pub struct AbstractCoarse {
    z: DMat,
    /// `A Z`, kept to apply `I − A Z E⁻¹ Zᵀ` with one less spmv.
    az: DMat,
    factor: DenseLdlt,
}

impl AbstractCoarse {
    /// Build from the operator and deflation block.
    ///
    /// # Panics
    /// Panics if `E` is numerically singular (linearly dependent columns in
    /// `Z`) — orthonormalize or prune the block first, or use
    /// [`AbstractCoarse::try_build`] to handle the failure.
    pub fn build(a: &CsrMatrix, z: DMat) -> Self {
        Self::try_build(a, z).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`AbstractCoarse::build`]: a singular `E` (linearly
    /// dependent columns in `Z`) is reported as
    /// [`SpmdError::CoarseFactorization`] instead of a panic.
    pub fn try_build(a: &CsrMatrix, z: DMat) -> Result<Self, SpmdError> {
        assert_eq!(a.rows(), z.rows(), "Z rows must match the operator");
        let m = z.cols();
        assert!(m > 0, "empty deflation block");
        let az = a.csrmm(&z);
        let mut e = DMat::zeros(m, m);
        z.gemm_tn(1.0, &az, 0.0, &mut e);
        // symmetrize against roundoff
        for i in 0..m {
            for j in 0..i {
                let avg = 0.5 * (e[(i, j)] + e[(j, i)]);
                e[(i, j)] = avg;
                e[(j, i)] = avg;
            }
        }
        let factor = DenseLdlt::factor(&e).map_err(|e| SpmdError::CoarseFactorization {
            what: format!("abstract coarse operator is singular: {e:?}"),
        })?;
        Ok(AbstractCoarse { z, az, factor })
    }

    pub fn dim(&self) -> usize {
        self.z.cols()
    }

    /// `q = Z E⁻¹ Zᵀ u`.
    pub fn correction(&self, u: &[f64]) -> Vec<f64> {
        let m = self.dim();
        let mut w = vec![0.0; m];
        self.z.gemv_t(1.0, u, 0.0, &mut w);
        self.factor.solve_in_place(&mut w);
        let mut q = vec![0.0; self.z.rows()];
        self.z.gemv(1.0, &w, 0.0, &mut q);
        q
    }

    /// `t = u − A Z E⁻¹ Zᵀ u` using the cached `AZ`.
    pub fn project_residual(&self, u: &[f64]) -> Vec<f64> {
        let m = self.dim();
        let mut w = vec![0.0; m];
        self.z.gemv_t(1.0, u, 0.0, &mut w);
        self.factor.solve_in_place(&mut w);
        let mut t = u.to_vec();
        let mut azw = vec![0.0; self.z.rows()];
        self.az.gemv(1.0, &w, 0.0, &mut azw);
        vector::axpy(-1.0, &azw, &mut t);
        t
    }
}

/// `P⁻¹_A-DEF1` with an abstract coarse space and any smoother `M⁻¹`:
/// `z = M⁻¹ (I − A Q) r + Q r` with `Q = Z E⁻¹ Zᵀ`.
pub struct AbstractADef1<'a, M: Preconditioner + ?Sized> {
    smoother: &'a M,
    coarse: AbstractCoarse,
    coarse_solves: Cell<u64>,
}

impl<'a, M: Preconditioner + ?Sized> AbstractADef1<'a, M> {
    pub fn new(smoother: &'a M, coarse: AbstractCoarse) -> Self {
        AbstractADef1 {
            smoother,
            coarse,
            coarse_solves: Cell::new(0),
        }
    }

    pub fn coarse(&self) -> &AbstractCoarse {
        &self.coarse
    }

    pub fn coarse_solve_count(&self) -> u64 {
        self.coarse_solves.get()
    }
}

impl<M: Preconditioner + ?Sized> Preconditioner for AbstractADef1<'_, M> {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        self.coarse_solves.set(self.coarse_solves.get() + 2);
        // One logical coarse solution reused twice — counted as the two
        // gemv-level solves below, but a single E⁻¹ application each.
        let q = self.coarse.correction(r);
        let t = self.coarse.project_residual(r);
        self.smoother.apply(&t, z);
        vector::axpy(1.0, &q, z);
    }
}

/// Extract `m` Ritz deflation vectors of the (left-)preconditioned operator
/// `M⁻¹A` from `steps` Arnoldi iterations started at `seed` — the
/// a-posteriori construction of the paper's conclusion.
///
/// The Ritz pairs of smallest magnitude approximate the eigenvectors that
/// throttle Krylov convergence; returned vectors are orthonormalized.
pub fn ritz_deflation<O, M>(op: &O, precond: &M, seed: &[f64], steps: usize, m: usize) -> DMat
where
    O: Operator + ?Sized,
    M: Preconditioner + ?Sized,
{
    let n = op.dim();
    assert_eq!(seed.len(), n);
    let steps = steps.min(n).max(m);
    let ip = SeqDot;
    // Arnoldi on B = M⁻¹A.
    let mut v: Vec<Vec<f64>> = Vec::with_capacity(steps + 1);
    let mut first = seed.to_vec();
    let nrm = vector::norm2(&first).max(1e-300);
    vector::scal(1.0 / nrm, &mut first);
    v.push(first);
    let mut h = DMat::zeros(steps + 1, steps);
    let mut actual = 0usize;
    let mut ax = vec![0.0; n];
    for k in 0..steps {
        let mut w = vec![0.0; n];
        op.apply(&v[k], &mut ax);
        precond.apply(&ax, &mut w);
        for (j, vj) in v.iter().enumerate() {
            let hjk = ip.dot(&w, vj);
            vector::axpy(-hjk, vj, &mut w);
            h[(j, k)] = hjk;
        }
        let hk1 = vector::norm2(&w);
        h[(k + 1, k)] = hk1;
        actual = k + 1;
        if hk1 < 1e-12 {
            break;
        }
        vector::scal(1.0 / hk1, &mut w);
        v.push(w);
    }
    // Symmetric part of the square Hessenberg H_m (the preconditioned
    // operator is not exactly symmetric, but its field-of-values structure
    // is captured well enough for deflation purposes).
    let mm = actual;
    let mut hs = DMat::zeros(mm, mm);
    for i in 0..mm {
        for j in 0..mm {
            hs[(i, j)] = 0.5 * (h[(i, j)] + h[(j, i)]);
        }
    }
    let eig = jacobi::sym_eig(&hs, 1e-12);
    // Ritz vectors of the m smallest-magnitude Ritz values.
    let mut order: Vec<usize> = (0..mm).collect();
    order.sort_by(|&a, &b| {
        eig.eigenvalues[a]
            .abs()
            .total_cmp(&eig.eigenvalues[b].abs())
    });
    let take = m.min(mm);
    let mut z = DMat::zeros(n, take);
    for (col, &p) in order.iter().take(take).enumerate() {
        let s = eig.eigenvectors.col(p);
        let dst = z.col_mut(col);
        for (i, vi) in v.iter().enumerate().take(mm) {
            vector::axpy(s[i], vi, dst);
        }
    }
    // Orthonormalize the block (modified Gram–Schmidt) so E stays
    // well-conditioned.
    for c in 0..take {
        for prev in 0..c {
            let (head, tail) = z.data_mut().split_at_mut(c * n);
            let pcol = &head[prev * n..(prev + 1) * n];
            let ccol = &mut tail[..n];
            let d = vector::dot(ccol, pcol);
            vector::axpy(-d, pcol, ccol);
        }
        let nrm = vector::norm2(z.col(c));
        if nrm > 1e-300 {
            vector::scal(1.0 / nrm, z.col_mut(c));
        }
    }
    z
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::decompose;
    use crate::precond::RasPrecond;
    use crate::problem::presets;
    use dd_krylov::{gmres, GmresOpts, IdentityPrecond};
    use dd_mesh::Mesh;
    use dd_part::partition_mesh_rcb;
    use dd_solver::Ordering;

    fn setup() -> crate::decomp::Decomposition {
        let mesh = Mesh::unit_square(20, 20);
        let part = partition_mesh_rcb(&mesh, 8);
        let p = presets::heterogeneous_diffusion(1);
        decompose(&mesh, &p, &part, 8, 1)
    }

    #[test]
    fn abstract_coarse_is_projection() {
        let d = setup();
        // Z: a few smooth global vectors.
        let n = d.n_global;
        let mut z = DMat::zeros(n, 3);
        for i in 0..n {
            z.col_mut(0)[i] = 1.0;
            z.col_mut(1)[i] = (i as f64 / n as f64).sin();
            z.col_mut(2)[i] = (i as f64 / n as f64).cos();
        }
        let ac = AbstractCoarse::build(&d.a_global, z);
        let u: Vec<f64> = (0..n).map(|i| ((i * 7) % 5) as f64).collect();
        // Q A Q u = Q u (projection property).
        let qu = ac.correction(&u);
        let mut aqu = vec![0.0; n];
        d.a_global.spmv(&qu, &mut aqu);
        let qaqu = ac.correction(&aqu);
        assert!(vector::dist2(&qaqu, &qu) < 1e-8 * vector::norm2(&qu).max(1e-300));
        // project_residual removes the AZ component: Zᵀ(u − A Q u) = 0.
        let t = ac.project_residual(&u);
        let mut w = vec![0.0; ac.dim()];
        ac.z.gemv_t(1.0, &t, 0.0, &mut w);
        assert!(vector::norm_inf(&w) < 1e-8 * vector::norm_inf(&u));
    }

    #[test]
    fn ritz_deflation_speeds_up_second_solve() {
        // The paper's conclusion scenario: solve once with one-level RAS,
        // harvest Ritz vectors, deflate them in a second solve with a
        // different right-hand side.
        let d = setup();
        let ras = RasPrecond::build(&d, Ordering::MinDegree);
        let opts = GmresOpts {
            tol: 1e-8,
            max_iters: 400,
            record_history: false,
            side: dd_krylov::Side::Left,
            ..Default::default()
        };
        let n = d.n_global;
        let rhs2: Vec<f64> = (0..n).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
        // Baseline: one-level solve of the second system.
        let base = gmres(&d.a_global, &ras, &SeqDot, &rhs2, &vec![0.0; n], &opts);
        // Harvest Ritz vectors from the first right-hand side.
        let z = ritz_deflation(&d.a_global, &ras, &d.rhs_global, 40, 8);
        let ac = AbstractCoarse::build(&d.a_global, z);
        let adef = AbstractADef1::new(&ras, ac);
        let defl = gmres(&d.a_global, &adef, &SeqDot, &rhs2, &vec![0.0; n], &opts);
        assert!(defl.converged);
        assert!(
            defl.iterations < base.iterations,
            "Ritz deflation did not help: {} vs {}",
            defl.iterations,
            base.iterations
        );
    }

    #[test]
    fn ritz_block_is_orthonormal() {
        let d = setup();
        let z = ritz_deflation(&d.a_global, &IdentityPrecond, &d.rhs_global, 30, 5);
        for i in 0..z.cols() {
            for j in 0..=i {
                let dot = vector::dot(z.col(i), z.col(j));
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-10, "⟨z{i},z{j}⟩ = {dot}");
            }
        }
    }

    #[test]
    fn abstract_adef1_counts_coarse_solves() {
        let d = setup();
        let n = d.n_global;
        let mut z = DMat::zeros(n, 2);
        for i in 0..n {
            z.col_mut(0)[i] = 1.0;
            z.col_mut(1)[i] = i as f64;
        }
        let ac = AbstractCoarse::build(&d.a_global, z);
        let adef = AbstractADef1::new(&IdentityPrecond, ac);
        let r = vec![1.0; n];
        let mut out = vec![0.0; n];
        adef.apply(&r, &mut out);
        assert!(adef.coarse_solve_count() > 0);
    }
}
