//! Property-style tests of the finite element layer: invariants that must
//! hold for every mesh, order, and coefficient field, exercised over
//! seeded deterministic sweeps (see `common::Rng`).

mod common;

use common::Rng;
use dd_geneo::fem::{
    assemble_boundary_load, assemble_diffusion, assemble_elasticity, assemble_mass, DofMap,
};
use dd_geneo::linalg::vector;
use dd_geneo::mesh::{refine::uniform_refine_n, Mesh};

/// The mass matrix integrates 1·1 over the domain: Σᵢⱼ Mᵢⱼ = |Ω|,
/// for any mesh size, aspect ratio, refinement level and order.
#[test]
fn mass_total_is_volume() {
    let mut rng = Rng::new(201);
    for _ in 0..24 {
        let nx = rng.range_usize(1, 5);
        let ny = rng.range_usize(1, 5);
        let lx = rng.range_f64(0.3, 4.0);
        let order = rng.range_usize(1, 5);
        let refines = rng.range_usize(0, 2);
        let mesh = uniform_refine_n(&Mesh::rectangle(nx, ny, lx, 1.0), refines);
        let dm = DofMap::new(&mesh, order);
        let m = assemble_mass(&mesh, &dm);
        let total: f64 = m.values().iter().sum();
        assert!((total - lx).abs() < 1e-9 * lx.max(1.0));
    }
}

/// Stiffness matrices annihilate constants regardless of the (positive)
/// coefficient field.
#[test]
fn stiffness_kernel_contains_constants() {
    let mut rng = Rng::new(202);
    for _ in 0..24 {
        let nx = rng.range_usize(2, 6);
        let order = rng.range_usize(1, 4);
        let k0 = rng.range_f64(0.1, 10.0);
        let k1 = rng.range_f64(0.1, 10.0);
        let mesh = Mesh::unit_square(nx, nx);
        let dm = DofMap::new(&mesh, order);
        let kappa = move |x: &[f64]| if x[0] < 0.5 { k0 } else { k1 };
        let (a, _) = assemble_diffusion(&mesh, &dm, &kappa, &|_| 0.0);
        let ones = vec![1.0; dm.n_dofs()];
        let mut y = vec![0.0; dm.n_dofs()];
        a.spmv(&ones, &mut y);
        assert!(vector::norm_inf(&y) < 1e-9 * a.norm_inf());
        // and the quadratic form is non-negative on arbitrary vectors
        let x: Vec<f64> = (0..dm.n_dofs())
            .map(|i| ((i * 31) % 17) as f64 - 8.0)
            .collect();
        a.spmv(&x, &mut y);
        assert!(vector::dot(&x, &y) >= -1e-9 * a.norm_inf() * vector::dot(&x, &x).max(1.0));
    }
}

/// Elasticity energies are non-negative and translations are exact
/// kernel vectors for any Lamé pair.
#[test]
fn elasticity_translations_in_kernel() {
    let mut rng = Rng::new(203);
    for _ in 0..24 {
        let nx = rng.range_usize(2, 5);
        let lam = rng.range_f64(0.1, 100.0);
        let mu = rng.range_f64(0.1, 100.0);
        let mesh = Mesh::unit_square(nx, nx);
        let dm = DofMap::new(&mesh, 1);
        let (a, _) = assemble_elasticity(&mesh, &dm, &move |_| (lam, mu), &|_, f| {
            f.copy_from_slice(&[0.0, 0.0])
        });
        let n = dm.n_dofs();
        for comp in 0..2 {
            let mut t = vec![0.0; 2 * n];
            for i in 0..n {
                t[2 * i + comp] = 1.0;
            }
            let mut y = vec![0.0; 2 * n];
            a.spmv(&t, &mut y);
            assert!(vector::norm_inf(&y) < 1e-9 * a.norm_inf());
        }
    }
}

/// Boundary loads with g = 1 integrate to the measure of the selected
/// boundary piece, at every order.
#[test]
fn boundary_load_measures_edge() {
    for order in 1..4 {
        for nx in 1..6 {
            let mesh = Mesh::unit_square(nx, nx);
            let dm = DofMap::new(&mesh, order);
            let mut rhs = vec![0.0; dm.n_dofs()];
            assemble_boundary_load(
                &mesh,
                &dm,
                1,
                &|_, g| g[0] = 1.0,
                &|x| x[1] < 1e-9, // bottom edge, length 1
                &mut rhs,
            );
            let total: f64 = rhs.iter().sum();
            assert!((total - 1.0).abs() < 1e-10, "total {total}");
        }
    }
}

/// Dof counts are consistent with mesh entities: P1 = #vertices and
/// refining multiplies element count by 4 while dofs grow accordingly.
#[test]
fn dof_counts_scale_with_refinement() {
    for nx in 1..4 {
        for order in 1..4 {
            let coarse = Mesh::unit_square(nx, nx);
            let fine = uniform_refine_n(&coarse, 1);
            let dc = DofMap::new(&coarse, order).n_dofs();
            let df = DofMap::new(&fine, order).n_dofs();
            // asymptotically ~4×; small boundary-dominated meshes grow less
            assert!(df > 2 * dc, "refinement barely grew the space: {dc} → {df}");
            if order == 1 {
                assert_eq!(dc, coarse.n_vertices());
                assert_eq!(df, fine.n_vertices());
            }
        }
    }
}

/// Deterministic cross-order check: higher order reproduces a lower-order
/// manufactured solution exactly (nested polynomial spaces).
#[test]
fn nested_spaces_reproduce_linears() {
    use dd_geneo::fem::apply_dirichlet;
    use dd_geneo::solver::{Ordering, SparseLdlt};
    let mesh = Mesh::unit_square(3, 3);
    let exact = |x: &[f64]| 3.0 * x[0] - 2.0 * x[1] + 0.5;
    for order in 1..=4 {
        let dm = DofMap::new(&mesh, order);
        let (a, mut rhs) = assemble_diffusion(&mesh, &dm, &|_| 1.0, &|_| 0.0);
        let bnd = dm.boundary_dofs(&mesh);
        let g: Vec<f64> = (0..dm.n_dofs()).map(|i| exact(dm.dof_coord(i))).collect();
        let ac = apply_dirichlet(&a, &mut rhs, &bnd, Some(&g));
        let x = SparseLdlt::factor(&ac, Ordering::MinDegree)
            .unwrap()
            .solve(&rhs);
        for i in 0..dm.n_dofs() {
            assert!(
                (x[i] - g[i]).abs() < 1e-9,
                "P{order} dof {i}: {} vs {}",
                x[i],
                g[i]
            );
        }
    }
}
