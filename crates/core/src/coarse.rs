//! The coarse space `Z` and coarse operator `E = Zᵀ A Z` (§3 of the
//! paper), sequential construction.
//!
//! `Z = [R_1ᵀ W_1 | R_2ᵀ W_2 | … | R_Nᵀ W_N]` is never assembled: each
//! subdomain keeps its dense block `W_i`, and the block
//! `E_{i,j} = W_iᵀ R_i R_jᵀ (A_j W_j)` (eq. 10) is computed from purely
//! local products plus the shared-dof index lists — the construction the
//! SPMD driver distributes with Algorithms 1–2.

use crate::decomp::Decomposition;
use crate::error::SpmdError;
use dd_linalg::{CooBuilder, CsrMatrix, DMat};
use dd_solver::{Ordering, PivotPolicy, SparseLdlt};

/// The assembled coarse space: one dense block per subdomain plus the
/// block offsets `r_i = Σ_{j<i} ν_j` into the coarse unknowns.
pub struct CoarseSpace {
    /// `W_i` blocks (n_i × ν_i).
    pub w: Vec<DMat>,
    /// Column offsets of each block in `Z`.
    pub offsets: Vec<usize>,
    /// Total coarse dimension `m = Σ ν_i`.
    pub dim: usize,
}

impl CoarseSpace {
    pub fn new(w: Vec<DMat>) -> Self {
        let mut offsets = Vec::with_capacity(w.len() + 1);
        let mut acc = 0usize;
        for b in &w {
            offsets.push(acc);
            acc += b.cols();
        }
        offsets.push(acc);
        CoarseSpace {
            w,
            offsets,
            dim: acc,
        }
    }

    pub fn nu(&self, i: usize) -> usize {
        self.w[i].cols()
    }

    /// `w = Zᵀ u` for a global vector `u`: block i is `W_iᵀ R_i u` (gemv).
    pub fn zt_apply(&self, decomp: &Decomposition, u: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.dim];
        for (i, s) in decomp.subdomains.iter().enumerate() {
            let ui = s.restrict(u);
            let dst = &mut out[self.offsets[i]..self.offsets[i + 1]];
            self.w[i].gemv_t(1.0, &ui, 0.0, dst);
        }
        out
    }

    /// `z = Z y` for coarse coefficients `y`: `Σ_i R_iᵀ W_i y_i`.
    pub fn z_apply(&self, decomp: &Decomposition, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.dim);
        let mut out = vec![0.0; decomp.n_global];
        for (i, s) in decomp.subdomains.iter().enumerate() {
            let yi = &y[self.offsets[i]..self.offsets[i + 1]];
            let mut zi = vec![0.0; s.n_local()];
            self.w[i].gemv(1.0, yi, 0.0, &mut zi);
            s.prolong_add(&zi, &mut out);
        }
        out
    }
}

/// The factored coarse operator.
pub struct CoarseOperator {
    pub space: CoarseSpace,
    /// Assembled `E` (kept for inspection: dimension, sparsity, Figure 11
    /// statistics).
    pub e: CsrMatrix,
    factor: SparseLdlt,
}

impl CoarseOperator {
    /// Assemble `E` block-wise via eq. (10) and factor it.
    ///
    /// Per subdomain: `T_i = A_i W_i` (csrmm), diagonal block
    /// `E_{i,i} = W_iᵀ T_i` (gemm), and for each neighbor `j ∈ O_i` the
    /// coupling `E_{i,j} = W_iᵀ (R_i R_jᵀ T_j)` — only the shared rows of
    /// `T_j` contribute.
    pub fn build(decomp: &Decomposition, space: CoarseSpace, ordering: Ordering) -> Self {
        Self::try_build(decomp, space, ordering).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`CoarseOperator::build`]: a singular `E` surfaces as
    /// [`SpmdError::CoarseFactorization`] (callers like the SPMD driver
    /// drop to one-level RAS on it) and malformed decompositions as
    /// [`SpmdError::Protocol`] instead of a panic.
    pub fn try_build(
        decomp: &Decomposition,
        space: CoarseSpace,
        ordering: Ordering,
    ) -> Result<Self, SpmdError> {
        let n = decomp.n_subdomains();
        // T_i = A_i W_i
        let t: Vec<DMat> = (0..n)
            .map(|i| decomp.subdomains[i].mm_dirichlet(&space.w[i]))
            .collect();
        let m = space.dim;
        let mut coo = CooBuilder::new(m, m);
        for (i, s) in decomp.subdomains.iter().enumerate() {
            let ri = space.offsets[i];
            let nui = space.nu(i);
            // Diagonal block.
            let mut eii = DMat::zeros(nui, nui);
            space.w[i].gemm_tn(1.0, &t[i], 0.0, &mut eii);
            for p in 0..nui {
                for q in 0..nui {
                    coo.push(ri + p, ri + q, eii[(p, q)]);
                }
            }
            // Off-diagonal blocks: E_{i,j} = W_iᵀ U_j with U_j = R_iR_jᵀ T_j.
            for link in &s.neighbors {
                let j = link.j;
                let back = decomp.subdomains[j]
                    .neighbors
                    .iter()
                    .find(|l| l.j == i)
                    .ok_or_else(|| SpmdError::Protocol {
                        rank: i,
                        what: format!("asymmetric neighbor links between subdomains {i} and {j}"),
                    })?;
                let rj = space.offsets[j];
                let nuj = space.nu(j);
                let wi = &space.w[i];
                let tj = &t[j];
                for q in 0..nuj {
                    let tcol = tj.col(q);
                    for p in 0..nui {
                        let wcol = wi.col(p);
                        let mut acc = 0.0;
                        for (&mine, &theirs) in link.shared.iter().zip(&back.shared) {
                            acc += wcol[mine as usize] * tcol[theirs as usize];
                        }
                        if acc != 0.0 {
                            coo.push(ri + p, rj + q, acc);
                        }
                    }
                }
            }
        }
        let e = coo.to_csr();
        // Static pivoting: deflation vectors from different subdomains can
        // be globally dependent (e.g. interface-localized modes shared by
        // neighbors under high contrast); null pivots are boosted so the
        // solve acts as a pseudo-inverse on range(Z) — the MUMPS null-pivot
        // strategy a production run would enable.
        let factor = SparseLdlt::factor_with(&e, ordering, PivotPolicy::Boost { rel_tol: 1e-12 })
            .map_err(|e| SpmdError::CoarseFactorization {
            what: e.to_string(),
        })?;
        Ok(CoarseOperator { space, e, factor })
    }

    /// Coarse dimension `m = dim(E)`.
    pub fn dim(&self) -> usize {
        self.space.dim
    }

    /// Nonzeros of the LDLᵀ factor (the paper's `nnz(E⁻¹)` column in
    /// Figure 11).
    pub fn nnz_factor(&self) -> usize {
        self.factor.nnz_l()
    }

    /// Solve `E y = w`.
    pub fn solve(&self, w: &[f64]) -> Vec<f64> {
        self.factor.solve(w)
    }

    /// Dense rows `[lo, hi)` of `E`, columns `[lo, dim)` — a master's
    /// upper row strip, exactly what the distributed factorization
    /// ([`dd_solver::DistLdlt`]) eliminates in place of the redundant full
    /// copy (`E` is symmetric, so the sub-diagonal values live transposed
    /// in earlier strips). Used by tests and the ablation bench to
    /// cross-check the two coarse-solve paths.
    pub fn block_row_strip(&self, lo: usize, hi: usize) -> DMat {
        assert!(lo <= hi && hi <= self.space.dim);
        let mut s = DMat::zeros(hi - lo, self.space.dim - lo);
        for r in lo..hi {
            for (c, v) in self.e.row(r) {
                if c >= lo {
                    s[(r - lo, c - lo)] = v;
                }
            }
        }
        s
    }

    /// The full coarse correction `Q u = Z E⁻¹ Zᵀ u` on a global vector.
    pub fn correction(&self, decomp: &Decomposition, u: &[f64]) -> Vec<f64> {
        let w = self.space.zt_apply(decomp, u);
        let y = self.solve(&w);
        self.space.z_apply(decomp, &y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::decompose;
    use crate::geneo::{deflation_block, GeneoOpts};
    use crate::problem::presets;
    use dd_linalg::vector;
    use dd_mesh::Mesh;
    use dd_part::partition_mesh_rcb;

    fn setup(nparts: usize, nev: usize) -> (Decomposition, CoarseSpace) {
        let mesh = Mesh::unit_square(10, 10);
        let part = partition_mesh_rcb(&mesh, nparts);
        let p = presets::heterogeneous_diffusion(1);
        let d = decompose(&mesh, &p, &part, nparts, 1);
        let opts = GeneoOpts {
            nev,
            ..Default::default()
        };
        let blocks: Vec<DMat> = d
            .subdomains
            .iter()
            .map(|s| {
                let b = deflation_block(s, &opts);
                crate::geneo::resize_block(&b, b.kept)
            })
            .collect();
        let space = CoarseSpace::new(blocks);
        (d, space)
    }

    /// The decisive correctness check: the block-wise local assembly of E
    /// must equal the dense `Zᵀ A Z` computed with the global matrix.
    #[test]
    fn coarse_operator_equals_zt_a_z() {
        let (d, space) = setup(4, 3);
        let op = CoarseOperator::build(&d, space, Ordering::MinDegree);
        let m = op.dim();
        assert!(m > 0);
        // Dense reference: columns of Z via z_apply on unit coarse vectors.
        let mut zaz = DMat::zeros(m, m);
        for q in 0..m {
            let mut y = vec![0.0; m];
            y[q] = 1.0;
            let zq = op.space.z_apply(&d, &y);
            let mut azq = vec![0.0; d.n_global];
            d.a_global.spmv(&zq, &mut azq);
            let col = op.space.zt_apply(&d, &azq);
            zaz.col_mut(q).copy_from_slice(&col);
        }
        for p in 0..m {
            for q in 0..m {
                let got = op.e.get(p, q);
                let want = zaz[(p, q)];
                assert!(
                    (got - want).abs() < 1e-8 * zaz.norm_max().max(1e-300),
                    "E[{p},{q}] = {got} vs ZᵀAZ = {want}"
                );
            }
        }
    }

    #[test]
    fn e_is_symmetric_and_spd() {
        let (d, space) = setup(4, 3);
        let op = CoarseOperator::build(&d, space, Ordering::MinDegree);
        assert!(op.e.symmetry_defect() < 1e-8 * op.e.norm_inf());
        // SPD since A is SPD and Z has full rank.
        let f = SparseLdlt::factor(&op.e, Ordering::Natural).unwrap();
        assert!(f.is_positive_definite());
    }

    #[test]
    fn sparsity_follows_connectivity() {
        let (d, space) = setup(6, 2);
        let op = CoarseOperator::build(&d, space, Ordering::MinDegree);
        // block (i,j) nonzero ⟹ j ∈ O_i ∪ {i}
        for (i, s) in d.subdomains.iter().enumerate() {
            let nbrs: Vec<usize> = s.neighbors.iter().map(|l| l.j).collect();
            for p in op.space.offsets[i]..op.space.offsets[i + 1] {
                for (col, v) in op.e.row(p) {
                    if v == 0.0 {
                        continue;
                    }
                    let j = (0..d.n_subdomains())
                        .find(|&j| col >= op.space.offsets[j] && col < op.space.offsets[j + 1])
                        .unwrap();
                    assert!(
                        j == i || nbrs.contains(&j),
                        "E block ({i},{j}) nonzero but {j} ∉ O_{i}"
                    );
                }
            }
        }
    }

    /// The block-row strips handed to the distributed factorization must
    /// reproduce the sequential `E⁻¹` when eliminated cooperatively.
    #[test]
    fn distributed_factor_matches_sequential_coarse_solve() {
        let (d, space) = setup(6, 2);
        let op = CoarseOperator::build(&d, space, Ordering::MinDegree);
        let m = op.dim();
        // Partition coarse rows at the §3.1.2 election boundaries.
        let masters = crate::masters::nonuniform_masters(d.n_subdomains(), 3);
        let mut bounds: Vec<usize> = masters.iter().map(|&g| op.space.offsets[g]).collect();
        bounds.push(m);
        let w: Vec<f64> = (0..m).map(|i| (i as f64 * 0.3).cos()).collect();
        let want = op.solve(&w);
        let strips: Vec<DMat> = (0..masters.len())
            .map(|g| op.block_row_strip(bounds[g], bounds[g + 1]))
            .collect();
        let pieces = dd_comm::World::run_default(masters.len(), move |comm| {
            let g = comm.rank();
            let f = dd_solver::DistLdlt::factor(comm, bounds.clone(), strips[g].clone());
            f.solve(comm, &w[bounds[g]..bounds[g + 1]])
        });
        let got: Vec<f64> = pieces.into_iter().flatten().collect();
        let rel = vector::dist2(&got, &want) / vector::norm2(&want).max(1e-300);
        assert!(rel < 1e-10, "distributed vs sequential coarse solve: {rel}");
    }

    #[test]
    fn correction_is_a_projection_complement() {
        // Q = ZE⁻¹ZᵀA satisfies Q² = Q (deflation projector property):
        // check ZE⁻¹Zᵀ(A (ZE⁻¹Zᵀ u)) = ZE⁻¹Zᵀ u.
        let (d, space) = setup(4, 2);
        let op = CoarseOperator::build(&d, space, Ordering::MinDegree);
        let u: Vec<f64> = (0..d.n_global).map(|i| ((i % 7) as f64) - 3.0).collect();
        let qu = op.correction(&d, &u);
        let mut aqu = vec![0.0; d.n_global];
        d.a_global.spmv(&qu, &mut aqu);
        let qaqu = op.correction(&d, &aqu);
        let err = vector::dist2(&qaqu, &qu) / vector::norm2(&qu).max(1e-300);
        assert!(err < 1e-7, "projector defect {err}");
    }

    #[test]
    fn zt_and_z_are_adjoint() {
        let (d, space) = setup(4, 2);
        let m = space.dim;
        let u: Vec<f64> = (0..d.n_global).map(|i| (i as f64 * 0.01).sin()).collect();
        let y: Vec<f64> = (0..m).map(|i| (i as f64 + 1.0) * 0.1).collect();
        // ⟨Zᵀu, y⟩ = ⟨u, Zy⟩
        let ztu = space.zt_apply(&d, &u);
        let zy = space.z_apply(&d, &y);
        let lhs = vector::dot(&ztu, &y);
        let rhs = vector::dot(&u, &zy);
        assert!((lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0));
    }
}
