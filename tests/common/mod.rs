//! Tiny deterministic RNG shared by the integration test suites — a
//! std-only stand-in for randomized property testing. splitmix64 keeps
//! every run bit-identical across platforms and invocations.

#![allow(dead_code)]

pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Self {
        Rng(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    pub fn vec_f64(&mut self, n: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..n).map(|_| self.range_f64(lo, hi)).collect()
    }
}
