//! Differential tests for the distributed coarse solve: the block fan-in
//! LDLᵀ across masters ([`CoarseSolve::Distributed`]) must reproduce the
//! redundant per-master factorization ([`CoarseSolve::Redundant`]) to near
//! machine precision on Figure-10-style heterogeneous-diffusion workloads —
//! fault-free, under an armed wire-fault plan (delays + drops are
//! payload-preserving), and with identical typed-error classification when
//! a slave rank is killed mid-run.

use dd_geneo::comm::{CommError, CostModel, FaultPlan, World};
use dd_geneo::core::problem::presets;
use dd_geneo::core::spmd::debug_apply_adef1;
use dd_geneo::core::{
    decompose, try_run_spmd, CoarseSolve, Decomposition, GeneoOpts, SpmdError, SpmdOpts,
};
use dd_geneo::krylov::GmresOpts;
use dd_geneo::mesh::Mesh;
use dd_geneo::part::partition_mesh_rcb;
use std::sync::Arc;

/// Figure 10's 2D family at laptop scale: heterogeneous diffusion on a
/// unit square, RCB-partitioned.
fn fig10_2d(order: usize, cells: usize, nparts: usize) -> Arc<Decomposition> {
    let mesh = Mesh::unit_square(cells, cells);
    let part = partition_mesh_rcb(&mesh, nparts);
    let p = presets::heterogeneous_diffusion(order);
    Arc::new(decompose(&mesh, &p, &part, nparts, 1))
}

/// Figure 10's 3D family at laptop scale.
fn fig10_3d(order: usize, cells: usize, nparts: usize) -> Arc<Decomposition> {
    let mesh = Mesh::unit_cube(cells, cells, cells);
    let part = partition_mesh_rcb(&mesh, nparts);
    let p = presets::heterogeneous_diffusion(order);
    Arc::new(decompose(&mesh, &p, &part, nparts, 1))
}

/// Deterministic, sign-varying global residual.
fn rhs(n: usize) -> Vec<f64> {
    (0..n).map(|i| (0.37 * i as f64).sin() + 0.5).collect()
}

/// Per-rank outcome of one preconditioner application: the full
/// preconditioned residual `z` and the coarse correction `q`.
type ApplyOutcome = Result<(Vec<f64>, Vec<f64>), SpmdError>;

/// Apply `P⁻¹_A-DEF1` once on every rank and return (z, q) per rank:
/// the full preconditioned residual and the coarse correction `Z E⁻¹ Zᵀ r`
/// (the component the two coarse-solve modes compute differently).
fn apply_once(
    decomp: &Arc<Decomposition>,
    coarse: CoarseSolve,
    plan: FaultPlan,
) -> Vec<ApplyOutcome> {
    let n = decomp.n_subdomains();
    let d2 = Arc::clone(decomp);
    let r = rhs(decomp.n_global);
    World::run_with_faults(n, CostModel::default(), plan, move |comm| {
        debug_apply_adef1(&d2, comm, &r, 4, coarse).map(|((z, q, _, _), _)| (z, q))
    })
}

fn rel_dist(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let num: f64 = a
        .iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt();
    let den: f64 = b.iter().map(|y| y * y).sum::<f64>().sqrt();
    num / den.max(1e-300)
}

fn assert_modes_agree(decomp: &Arc<Decomposition>, plan: FaultPlan, what: &str) {
    let dist = apply_once(decomp, CoarseSolve::Distributed, plan);
    let red = apply_once(decomp, CoarseSolve::Redundant, FaultPlan::default());
    for (rank, (d, r)) in dist.iter().zip(&red).enumerate() {
        let (zd, qd) = d.as_ref().expect("distributed apply failed");
        let (zr, qr) = r.as_ref().expect("redundant apply failed");
        // The coarse correction Z E⁻¹ Zᵀ r is the quantity the two modes
        // compute by different algorithms: pinned to 1e-12.
        let dq = rel_dist(qd, qr);
        assert!(
            dq < 1e-12,
            "{what}: rank {rank} coarse corrections disagree: rel {dq:e}"
        );
        // The full A-DEF1 application composes q with A·q and a RAS solve,
        // which amplify the last-bit differences slightly.
        let dz = rel_dist(zd, zr);
        assert!(
            dz < 1e-11,
            "{what}: rank {rank} preconditioned residuals disagree: rel {dz:e}"
        );
    }
}

#[test]
fn distributed_matches_redundant_on_fig10_2d() {
    for (order, cells, nparts) in [(1, 12, 8), (2, 10, 6)] {
        let decomp = fig10_2d(order, cells, nparts);
        assert_modes_agree(
            &decomp,
            FaultPlan::default(),
            &format!("2D-P{order} N={nparts}"),
        );
    }
}

#[test]
fn distributed_matches_redundant_on_fig10_3d() {
    let decomp = fig10_3d(2, 4, 6);
    assert_modes_agree(&decomp, FaultPlan::default(), "3D-P2 N=6");
}

#[test]
fn distributed_matches_redundant_under_armed_fault_plan() {
    // Delays perturb only virtual time and dropped messages are redelivered
    // with identical payloads, so even under an armed wire-fault plan the
    // distributed coarse solve must match the *fault-free* redundant one.
    let decomp = fig10_2d(1, 12, 8);
    let plan = FaultPlan::new(29)
        .with_delays(0.3, 2e-4)
        .with_drops(0.25, 2);
    assert_modes_agree(&decomp, plan, "2D-P1 N=8 armed");
}

/// Full-solve differential: distributed and redundant coarse solves give
/// the same iterate sequence on a fig10 workload (same iteration count,
/// solutions equal to solver accuracy), with multiple masters so the
/// fan-in actually crosses ranks.
#[test]
fn full_solve_agrees_across_modes_on_fig10() {
    let decomp = fig10_2d(1, 14, 8);
    let opts = |coarse| SpmdOpts {
        geneo: GeneoOpts {
            nev: 5,
            ..Default::default()
        },
        n_masters: 3,
        gmres: GmresOpts {
            tol: 1e-8,
            max_iters: 400,
            ..Default::default()
        },
        coarse_solve: coarse,
        ..Default::default()
    };
    let run = |o: SpmdOpts| {
        let d2 = Arc::clone(&decomp);
        World::run_default(decomp.n_subdomains(), move |comm| {
            try_run_spmd(&d2, comm, &o).map(|s| (s.report, s.x_local))
        })
    };
    let dist = run(opts(CoarseSolve::Distributed));
    let red = run(opts(CoarseSolve::Redundant));
    let mut xd: Vec<Vec<f64>> = Vec::new();
    let mut xr: Vec<Vec<f64>> = Vec::new();
    for (d, r) in dist.into_iter().zip(red) {
        let (rd, x1) = d.expect("distributed solve failed");
        let (rr, x2) = r.expect("redundant solve failed");
        assert!(rd.converged && rr.converged);
        assert_eq!(rd.iterations, rr.iterations, "same numerics expected");
        xd.push(x1);
        xr.push(x2);
    }
    let gd = decomp.from_locals(&xd);
    let gr = decomp.from_locals(&xr);
    let rel = rel_dist(&gd, &gr);
    assert!(rel < 1e-10, "solutions disagree across modes: rel {rel:e}");
}

/// A dead slave (killed at the post-assembly failpoint) must surface the
/// identical typed-error classification in both coarse-solve modes: the
/// victim sees `Killed`, every survivor sees `Comm(RankDead)` naming it.
#[test]
fn dead_slave_classification_identical_across_modes() {
    let decomp = fig10_2d(1, 12, 8);
    // Rank 1 is a slave under the non-uniform election for every master
    // count ≥ 1 used here (masters start at rank 0).
    let victim = 1usize;
    let classify = |coarse| {
        let o = SpmdOpts {
            geneo: GeneoOpts {
                nev: 5,
                ..Default::default()
            },
            n_masters: 3,
            coarse_solve: coarse,
            ..Default::default()
        };
        let d2 = Arc::clone(&decomp);
        let plan = FaultPlan::new(1).with_kill(victim, "post-assembly");
        let reports = World::run_with_faults(
            decomp.n_subdomains(),
            CostModel::default(),
            plan,
            move |comm| try_run_spmd(&d2, comm, &o).map(|s| s.report),
        );
        reports
            .into_iter()
            .enumerate()
            .map(|(rank, res)| match res {
                Err(SpmdError::Killed { rank: r, phase }) => {
                    assert_eq!(rank, victim, "only the victim sees Killed");
                    assert_eq!(r, victim);
                    assert_eq!(phase, "post-assembly");
                    "killed"
                }
                Err(SpmdError::Comm(CommError::RankDead { rank: dead })) => {
                    assert_ne!(rank, victim);
                    assert_eq!(dead, victim, "survivors must name the dead rank");
                    "rank-dead"
                }
                other => panic!("rank {rank}: unexpected outcome {other:?}"),
            })
            .collect::<Vec<_>>()
    };
    let dist = classify(CoarseSolve::Distributed);
    let red = classify(CoarseSolve::Redundant);
    assert_eq!(dist, red, "modes classify the dead slave differently");
}
