//! Restarted GMRES(m) with left or right preconditioning.
//!
//! The solver the paper uses throughout its experiments ("The GMRES is
//! stopped when a relative 10⁻⁶ decrease of the residual is reached";
//! Figure 7 uses GMRES(40)). Orthogonalization is selectable:
//!
//! * [`Ortho::Mgs`] — modified Gram–Schmidt, `i + 1` reductions per
//!   iteration (robust reference);
//! * [`Ortho::Cgs`] — classical Gram–Schmidt with a single batched Gram
//!   reduction plus one normalization reduction per iteration — two global
//!   synchronizations per iteration, which is the baseline the fused
//!   pipelined variant of §3.5 eliminates.

use crate::checkpoint::{CheckpointCfg, SolveCheckpoint};
use crate::operator::{InnerProduct, Operator, Preconditioner, SolveInterrupt};
use crate::sdc::SdcGuard;
use dd_linalg::givens::Givens;
use dd_linalg::{vector, DMat};

/// Orthogonalization strategy inside the Arnoldi process.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Ortho {
    /// Modified Gram–Schmidt.
    Mgs,
    /// Classical Gram–Schmidt (batched reductions). One Gram reduction per
    /// iteration, but loses orthogonality on ill-conditioned problems.
    Cgs,
    /// Reorthogonalized classical Gram–Schmidt (CGS2): two batched Gram
    /// reductions per iteration — nearly as robust as MGS while keeping
    /// the reduction count independent of the basis size.
    #[default]
    Cgs2,
}

/// Preconditioning side.
///
/// With [`Side::Right`] (`A M⁻¹ u = b`, `x = M⁻¹ u`) the GMRES residual is
/// the **true** residual `‖b − A x‖` — the honest metric for comparing
/// preconditioners of very different quality (a stalled one-level method
/// can look converged in the `M⁻¹`-norm of left preconditioning).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Side {
    /// Solve `M⁻¹ A x = M⁻¹ b`; residual history is the preconditioned
    /// residual.
    Left,
    /// Solve `A M⁻¹ u = b`; residual history is the true residual.
    #[default]
    Right,
}

/// Options for [`gmres`].
#[derive(Clone, Debug)]
pub struct GmresOpts {
    /// Restart length `m`.
    pub restart: usize,
    /// Relative residual tolerance (on the preconditioned residual).
    pub tol: f64,
    /// Maximum total iterations across restarts.
    pub max_iters: usize,
    /// Orthogonalization variant.
    pub ortho: Ortho,
    /// Preconditioning side.
    pub side: Side,
    /// Record the residual at every iteration.
    pub record_history: bool,
    /// Silent-data-corruption guard: `Some` makes convergence verified
    /// (recomputed from the iterate, never trusted from the recurrence
    /// alone) and classifies recurred-vs-recomputed residual drift at cycle
    /// boundaries as a [`SolveInterrupt`] carrying
    /// [`crate::sdc::SdcSuspected`]. `None` (default) is bitwise identical
    /// to the unguarded solver. The pipelined variants ignore it.
    pub guard: Option<SdcGuard>,
}

impl Default for GmresOpts {
    fn default() -> Self {
        GmresOpts {
            restart: 200,
            tol: 1e-6,
            max_iters: 1000,
            ortho: Ortho::Cgs2,
            side: Side::Right,
            record_history: true,
            guard: None,
        }
    }
}

/// Why a Krylov solve stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SolveStatus {
    /// The tolerance was met.
    Converged,
    /// The iteration budget ran out without numerical trouble.
    #[default]
    MaxIterations,
    /// Numerical breakdown — non-finite values, a non-converged invariant
    /// subspace, or stagnation — persisted after one restart.
    Breakdown,
}

impl std::fmt::Display for SolveStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveStatus::Converged => write!(f, "converged"),
            SolveStatus::MaxIterations => write!(f, "max iterations"),
            SolveStatus::Breakdown => write!(f, "breakdown"),
        }
    }
}

/// Consecutive iterations without residual improvement before a solver
/// declares stagnation breakdown.
pub(crate) const STALL_LIMIT: usize = 50;

/// Outcome of a Krylov solve.
#[derive(Clone, Debug)]
pub struct SolveResult {
    /// Final iterate.
    pub x: Vec<f64>,
    /// Total iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was met.
    pub converged: bool,
    /// Relative (preconditioned) residual at each iteration, starting with
    /// iteration 0 (the initial residual, = 1).
    pub history: Vec<f64>,
    /// Final relative residual estimate.
    pub final_residual: f64,
    /// Why the solve stopped.
    pub status: SolveStatus,
    /// Restarts taken in response to detected breakdowns (at most one: a
    /// second breakdown surfaces as [`SolveStatus::Breakdown`]).
    pub breakdown_restarts: usize,
}

/// Solve `A x = b` with restarted, preconditioned GMRES.
///
/// Thin wrapper over [`try_gmres`] with no checkpointing; with the default
/// (infallible) `try_*` trait methods an interrupt is impossible, so this
/// panics if one surfaces — fault-tolerant callers must use [`try_gmres`].
pub fn gmres<O, M, P>(
    op: &O,
    precond: &M,
    ip: &P,
    b: &[f64],
    x0: &[f64],
    opts: &GmresOpts,
) -> SolveResult
where
    O: Operator + ?Sized,
    M: Preconditioner + ?Sized,
    P: InnerProduct + ?Sized,
{
    match try_gmres(op, precond, ip, b, x0, opts, None) {
        Ok(res) => res,
        Err(int) => panic!("gmres interrupted without a fault-tolerant caller: {int}"),
    }
}

/// Reusable buffers for [`try_gmres_with`]: the Arnoldi basis pool, the
/// Hessenberg matrix, and every scratch vector of the inner loop.
///
/// A solve sizes the workspace on entry, allocating only what is missing,
/// so after one warmup solve the steady-state GMRES iteration — together
/// with an allocation-free operator / preconditioner / inner product (e.g.
/// `CsrMatrix` / [`crate::IdentityPrecond`] / [`crate::SeqDot`]) — performs
/// **zero** heap allocations. The CI `kernel-speed` lane pins that count.
pub struct GmresWorkspace {
    ax: Vec<f64>,
    raw: Vec<f64>,
    r: Vec<f64>,
    w: Vec<f64>,
    zk: Vec<f64>,
    /// Arnoldi basis pool (`m + 1` vectors at steady state).
    v: Vec<Vec<f64>>,
    /// Preconditioned directions `z_k = M⁻¹ v_k` (right preconditioning).
    z: Vec<Vec<f64>>,
    h: DMat,
    g: Vec<f64>,
    rot: Vec<Givens>,
    locals: Vec<f64>,
    dots: Vec<f64>,
    y: Vec<f64>,
}

impl Default for GmresWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl GmresWorkspace {
    pub fn new() -> Self {
        GmresWorkspace {
            ax: Vec::new(),
            raw: Vec::new(),
            r: Vec::new(),
            w: Vec::new(),
            zk: Vec::new(),
            v: Vec::new(),
            z: Vec::new(),
            h: DMat::zeros(0, 0),
            g: Vec::new(),
            rot: Vec::new(),
            locals: Vec::new(),
            dots: Vec::new(),
            y: Vec::new(),
        }
    }

    /// Size every buffer for dimension `n` and restart length `m`.
    fn prepare(&mut self, n: usize, m: usize) {
        self.ax.resize(n, 0.0);
        self.raw.resize(n, 0.0);
        self.r.resize(n, 0.0);
        self.w.resize(n, 0.0);
        self.zk.resize(n, 0.0);
        // Basis vectors of a previous, differently-sized solve cannot be
        // reused in place.
        self.v.retain(|p| p.len() == n);
        self.z.retain(|p| p.len() == n);
        if self.h.rows() != m + 1 || self.h.cols() != m {
            self.h = DMat::zeros(m + 1, m);
        }
        self.g.resize(m + 1, 0.0);
        self.rot.clear();
        self.rot.reserve(m);
        self.locals.clear();
        self.locals.reserve(m + 1);
        self.dots.resize(m + 1, 0.0);
        self.y.resize(m, 0.0);
    }
}

/// Write `src` into slot `idx` of a basis pool, allocating only when the
/// pool has never held that many vectors.
fn pool_set(pool: &mut Vec<Vec<f64>>, idx: usize, src: &[f64]) {
    if idx < pool.len() {
        pool[idx].copy_from_slice(src);
    } else {
        debug_assert_eq!(idx, pool.len());
        pool.push(src.to_vec());
    }
}

/// Fallible, checkpointable GMRES: identical numerics to [`gmres`], but
/// operator/preconditioner/inner-product failures surface as
/// [`SolveInterrupt`] instead of panicking, and an optional
/// [`CheckpointCfg`] snapshots the iterate every `interval` iterations
/// (and resumes a previously interrupted solve against its original
/// residual anchor). Allocates a fresh [`GmresWorkspace`]; hot callers use
/// [`try_gmres_with`] to amortize it.
pub fn try_gmres<O, M, P>(
    op: &O,
    precond: &M,
    ip: &P,
    b: &[f64],
    x0: &[f64],
    opts: &GmresOpts,
    ckpt: Option<&CheckpointCfg<'_>>,
) -> Result<SolveResult, SolveInterrupt>
where
    O: Operator + ?Sized,
    M: Preconditioner + ?Sized,
    P: InnerProduct + ?Sized,
{
    let mut ws = GmresWorkspace::new();
    try_gmres_with(op, precond, ip, b, x0, opts, ckpt, &mut ws)
}

/// [`try_gmres`] against a caller-owned [`GmresWorkspace`] — bitwise
/// identical results, but a warmed-up workspace makes the inner loop
/// allocation-free (see [`GmresWorkspace`]).
#[allow(clippy::too_many_arguments)]
pub fn try_gmres_with<O, M, P>(
    op: &O,
    precond: &M,
    ip: &P,
    b: &[f64],
    x0: &[f64],
    opts: &GmresOpts,
    ckpt: Option<&CheckpointCfg<'_>>,
    ws: &mut GmresWorkspace,
) -> Result<SolveResult, SolveInterrupt>
where
    O: Operator + ?Sized,
    M: Preconditioner + ?Sized,
    P: InnerProduct + ?Sized,
{
    let n = op.dim();
    assert_eq!(b.len(), n);
    assert_eq!(x0.len(), n);
    let m = opts.restart.max(1);
    ws.prepare(n, m);
    let GmresWorkspace {
        ax,
        raw,
        r,
        w,
        zk,
        v,
        z: zbasis,
        h,
        g,
        rot,
        locals,
        dots,
        y,
    } = ws;
    let resume = ckpt.and_then(|c| c.resume.as_ref());
    let mut x = match resume {
        Some(cp) => {
            assert_eq!(cp.x.len(), n);
            cp.x.clone()
        }
        None => x0.to_vec(),
    };
    let mut history = Vec::new();
    if opts.record_history {
        // One up-front allocation instead of growth reallocations in the
        // iteration loop.
        history.reserve(opts.max_iters + 2 + resume.map_or(0, |cp| cp.history.len()));
    }
    let mut total_iters = resume.map_or(0, |cp| cp.iteration);

    let right = matches!(opts.side, Side::Right);
    // Initial residual: true (right) or preconditioned (left).
    op.try_apply(&x, ax)?;
    for i in 0..n {
        raw[i] = b[i] - ax[i];
    }
    if right {
        r.copy_from_slice(raw);
    } else {
        precond.try_apply(raw, r)?;
    }
    // A resumed solve converges against the *original* solve's anchor so
    // the combined run meets the same tolerance as a fault-free one.
    let r0_norm = match resume {
        Some(cp) => cp.r0_norm,
        None => ip.try_norm(r)?,
    };
    if opts.record_history {
        match resume {
            Some(cp) => history.extend_from_slice(&cp.history),
            None => history.push(1.0),
        }
    }
    if r0_norm == 0.0 {
        return Ok(SolveResult {
            x,
            iterations: total_iters,
            converged: true,
            history,
            final_residual: 0.0,
            status: SolveStatus::Converged,
            breakdown_restarts: 0,
        });
    }
    if !r0_norm.is_finite() {
        // The input itself is broken; no restart can fix it.
        return Ok(SolveResult {
            x,
            iterations: total_iters,
            converged: false,
            history,
            final_residual: f64::INFINITY,
            status: SolveStatus::Breakdown,
            breakdown_restarts: 0,
        });
    }
    let target = opts.tol * r0_norm;

    let mut converged = false;
    let mut final_res = resume.map_or(1.0, |cp| cp.residual);
    let mut breakdown_restarts = 0usize;
    let mut broke_down = false;
    // Stagnation tracking across cycles: consecutive iterations without
    // any residual improvement.
    let mut best_res = f64::INFINITY;
    let mut stall = 0usize;
    'outer: loop {
        // Residual at the start of this cycle.
        op.try_apply(&x, ax)?;
        for i in 0..n {
            raw[i] = b[i] - ax[i];
        }
        if right {
            r.copy_from_slice(raw);
        } else {
            precond.try_apply(raw, r)?;
        }
        let beta = ip.try_norm(r)?;
        if beta <= target {
            converged = true;
            final_res = beta / r0_norm;
            break;
        }
        if let Some(g) = &opts.guard {
            // The recurred estimate from the previous cycle against the
            // residual just recomputed from the iterate: drift past the
            // guard's threshold (or a non-finite recomputation) means the
            // basis or the iterate was corrupted — hand the caller a typed
            // interrupt to roll back and replay instead of iterating on
            // poison. Mild drift falls through: the fresh cycle
            // self-corrects it.
            if g.drifted(final_res, beta / r0_norm) {
                return Err(g.interrupt(total_iters, final_res, beta / r0_norm));
            }
        }
        if !beta.is_finite() {
            // The iterate itself is poisoned; a restart cannot recover.
            broke_down = true;
            break 'outer;
        }
        // Arnoldi basis (m+1 pool vectors max); right preconditioning also
        // keeps the preconditioned directions `z_k = M⁻¹ v_k` so the final
        // update x += Z y needs no extra preconditioner application. Only
        // the first `nv` pool slots hold this cycle's basis.
        pool_set(v, 0, r);
        vector::scal(1.0 / beta, &mut v[0]);
        let mut nv = 1usize;
        // Hessenberg stored column-wise; Givens-transformed in place. Every
        // h entry read below is written first this cycle, so the reused
        // matrix needs no clearing; g is read one slot ahead of the writes
        // (the rotation touches g[k+1]) and does.
        rot.clear();
        g.fill(0.0);
        g[0] = beta;
        let mut k_done = 0usize;
        let mut cycle_broken = false;
        // dd:hot — the Arnoldi cycle; every buffer below is reused from the
        // workspace, so no allocation is allowed per iteration
        for k in 0..m {
            if total_iters >= opts.max_iters {
                break;
            }
            ip.on_iteration(total_iters);
            total_iters += 1;
            w.fill(0.0);
            if right {
                // w = A M⁻¹ v_k
                zk.fill(0.0);
                precond.try_apply(&v[k], zk)?;
                op.try_apply(zk, w)?;
                pool_set(zbasis, k, zk);
            } else {
                // w = M⁻¹ A v_k
                op.try_apply(&v[k], ax)?;
                precond.try_apply(ax, w)?;
            }
            // Orthogonalize.
            match opts.ortho {
                Ortho::Mgs => {
                    for (j, vj) in v[..nv].iter().enumerate() {
                        let hjk = ip.try_dot(w, vj)?;
                        vector::axpy(-hjk, vj, w);
                        h[(j, k)] = hjk;
                    }
                }
                Ortho::Cgs | Ortho::Cgs2 => {
                    // Batched Gram reduction(s).
                    let passes = if matches!(opts.ortho, Ortho::Cgs2) {
                        2
                    } else {
                        1
                    };
                    for j in 0..=k {
                        h[(j, k)] = 0.0;
                    }
                    for _ in 0..passes {
                        locals.clear();
                        locals.extend(v[..nv].iter().map(|vj| ip.local_dot(w, vj)));
                        ip.try_reduce_into(locals.as_slice(), &mut dots[..nv])?;
                        for (j, (vj, hjk)) in v[..nv].iter().zip(dots[..nv].iter()).enumerate() {
                            vector::axpy(-hjk, vj, w);
                            h[(j, k)] += *hjk;
                        }
                    }
                }
            }
            let hk1 = ip.try_norm(w)?;
            if !hk1.is_finite() {
                // Non-finite Arnoldi column (NaN from the operator or
                // preconditioner, or lost orthogonality blowing up the
                // norm): discard this column and end the cycle.
                cycle_broken = true;
                k_done = k;
                if opts.record_history {
                    history.push(final_res);
                }
                break;
            }
            h[(k + 1, k)] = hk1;
            // Apply accumulated rotations to the new column, then form the
            // rotation annihilating h[k+1][k].
            for (j, gr) in rot.iter().enumerate() {
                let (a2, b2) = gr.apply(h[(j, k)], h[(j + 1, k)]);
                h[(j, k)] = a2;
                h[(j + 1, k)] = b2;
            }
            let (gr, rkk) = Givens::compute(h[(k, k)], h[(k + 1, k)]);
            if hk1 <= 1e-14 * r0_norm && rkk.abs() <= 1e-14 * r0_norm {
                // Fully annihilated column (a singular operator or
                // preconditioner mapped the basis vector to ~zero): the
                // rotated least-squares residual is meaningless and the
                // pivot would be zero — discard the column and stop.
                cycle_broken = true;
                k_done = k;
                if opts.record_history {
                    history.push(final_res);
                }
                break;
            }
            h[(k, k)] = rkk;
            h[(k + 1, k)] = 0.0;
            let (g0, g1) = gr.apply(g[k], g[k + 1]);
            g[k] = g0;
            g[k + 1] = g1;
            rot.push(gr);
            k_done = k + 1;
            let res = g[k + 1].abs();
            if !res.is_finite() {
                cycle_broken = true;
                k_done = k;
                if opts.record_history {
                    history.push(final_res);
                }
                break;
            }
            final_res = res / r0_norm;
            if opts.record_history {
                history.push(final_res);
            }
            if res <= target {
                // With a guard armed, the recurred value only *claims*
                // convergence: end the cycle, and let the cycle-boundary
                // recomputation above confirm (or reject) it against the
                // actual iterate. Unguarded behavior is unchanged.
                if opts.guard.is_none() {
                    converged = true;
                }
                break;
            }
            // dd:cold — periodic checkpoint materialization; snapshots own
            // their state by design and run on a user-chosen cadence
            if let Some(cfg) = ckpt {
                if cfg.due(total_iters) {
                    // Materialize the current iterate by solving the
                    // in-progress least-squares system over the k_done
                    // columns built so far (same back-substitution as the
                    // cycle-end update, on copies — h and g stay live).
                    let mut y = vec![0.0; k_done];
                    for i in (0..k_done).rev() {
                        let mut s = g[i];
                        for j in i + 1..k_done {
                            s -= h[(i, j)] * y[j];
                        }
                        y[i] = s / h[(i, i)];
                    }
                    if y.iter().all(|v| v.is_finite()) {
                        let mut snap = x.clone();
                        for (j, yj) in y.iter().enumerate() {
                            let dir = if right { &zbasis[j] } else { &v[j] };
                            vector::axpy(*yj, dir, &mut snap);
                        }
                        cfg.sink.save(SolveCheckpoint {
                            iteration: total_iters,
                            x: snap,
                            residual: final_res,
                            r0_norm,
                            history: history.clone(),
                        });
                    }
                }
            }
            // Stagnation: no residual improvement at all for STALL_LIMIT
            // consecutive iterations (GMRES residuals are non-increasing,
            // so "no improvement" means exactly flat).
            if res < best_res * (1.0 - 1e-12) {
                best_res = res;
                stall = 0;
            } else {
                stall += 1;
                if stall >= STALL_LIMIT {
                    cycle_broken = true;
                    break;
                }
            }
            if hk1 <= 1e-14 * r0_norm {
                // Invariant Krylov subspace. For a nonsingular operator the
                // least-squares solution below is exact and `res` would have
                // met the tolerance above — reaching here with a large
                // residual means the operator annihilated the space
                // (singular operator / preconditioner): a breakdown, not
                // convergence.
                cycle_broken = true;
                break;
            }
            vector::scal(1.0 / hk1, w);
            pool_set(v, k + 1, w);
            nv = k + 2;
        }
        // Solve the triangular system R y = g and update x (skipped if the
        // coefficients are non-finite — e.g. an exactly zero pivot from a
        // fully annihilated column). Every y slot is written before it is
        // read, so the reused buffer needs no clearing.
        if k_done > 0 {
            let y = &mut y[..k_done];
            for i in (0..k_done).rev() {
                let mut s = g[i];
                for j in i + 1..k_done {
                    s -= h[(i, j)] * y[j];
                }
                y[i] = s / h[(i, i)];
            }
            if y.iter().all(|v| v.is_finite()) {
                for (j, yj) in y.iter().enumerate() {
                    let dir = if right { &zbasis[j] } else { &v[j] };
                    vector::axpy(*yj, dir, &mut x);
                }
            }
        }
        if converged || total_iters >= opts.max_iters {
            break 'outer;
        }
        if cycle_broken {
            if breakdown_restarts == 0 {
                // One restart: rebuild the Krylov space from the current
                // iterate before giving up.
                breakdown_restarts += 1;
                best_res = f64::INFINITY;
                stall = 0;
            } else {
                broke_down = true;
                break 'outer;
            }
        }
    }
    let status = if converged {
        SolveStatus::Converged
    } else if broke_down {
        SolveStatus::Breakdown
    } else {
        SolveStatus::MaxIterations
    };
    Ok(SolveResult {
        x,
        iterations: total_iters,
        converged,
        history,
        final_residual: final_res,
        status,
        breakdown_restarts,
    })
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::checkpoint::CheckpointSink;
    use crate::operator::{FnPrecond, IdentityPrecond, SeqDot};
    use dd_linalg::{CooBuilder, CsrMatrix};
    use std::cell::{Cell, RefCell};

    pub(crate) struct VecSink(pub RefCell<Vec<SolveCheckpoint>>);

    impl VecSink {
        pub(crate) fn new() -> Self {
            VecSink(RefCell::new(Vec::new()))
        }
    }

    impl CheckpointSink for VecSink {
        fn save(&self, checkpoint: SolveCheckpoint) {
            self.0.borrow_mut().push(checkpoint);
        }
    }

    /// Operator whose fallible path dies after a budget of applications —
    /// a stand-in for a halo exchange hitting a dead rank.
    pub(crate) struct FailAfter<'a> {
        pub inner: &'a CsrMatrix,
        pub budget: Cell<usize>,
    }

    impl Operator for FailAfter<'_> {
        fn dim(&self) -> usize {
            self.inner.rows()
        }

        fn apply(&self, x: &[f64], y: &mut [f64]) {
            self.inner.spmv(x, y);
        }

        fn try_apply(&self, x: &[f64], y: &mut [f64]) -> Result<(), SolveInterrupt> {
            if self.budget.get() == 0 {
                return Err(SolveInterrupt::new("operator budget exhausted"));
            }
            self.budget.set(self.budget.get() - 1);
            self.inner.spmv(x, y);
            Ok(())
        }
    }

    /// Operator that silently scales the output of exactly one application
    /// (the `at`-th, 0-based) — a deterministic stand-in for silent data
    /// corruption baking itself into the Krylov basis. Clean before and
    /// after, so a rolled-back replay sees a healthy operator.
    pub(crate) struct CorruptOnce<'a> {
        pub inner: &'a CsrMatrix,
        pub at: usize,
        pub scale: f64,
        pub count: Cell<usize>,
    }

    impl Operator for CorruptOnce<'_> {
        fn dim(&self) -> usize {
            self.inner.rows()
        }

        fn apply(&self, x: &[f64], y: &mut [f64]) {
            self.inner.spmv(x, y);
            let k = self.count.get();
            self.count.set(k + 1);
            if k == self.at {
                vector::scal(self.scale, y);
            }
        }
    }

    fn laplacian_2d(nx: usize, ny: usize) -> CsrMatrix {
        let n = nx * ny;
        let mut b = CooBuilder::new(n, n);
        let id = |i: usize, j: usize| i + j * nx;
        for j in 0..ny {
            for i in 0..nx {
                let u = id(i, j);
                b.push(u, u, 4.0);
                if i + 1 < nx {
                    b.push(u, id(i + 1, j), -1.0);
                    b.push(id(i + 1, j), u, -1.0);
                }
                if j + 1 < ny {
                    b.push(u, id(i, j + 1), -1.0);
                    b.push(id(i, j + 1), u, -1.0);
                }
            }
        }
        b.to_csr()
    }

    fn residual(a: &CsrMatrix, x: &[f64], b: &[f64]) -> f64 {
        let mut ax = vec![0.0; b.len()];
        a.spmv(x, &mut ax);
        vector::dist2(&ax, b) / vector::norm2(b)
    }

    #[test]
    fn solves_spd_unpreconditioned() {
        let a = laplacian_2d(10, 10);
        let n = a.rows();
        let b: Vec<f64> = (0..n).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
        let x0 = vec![0.0; n];
        let opts = GmresOpts {
            tol: 1e-10,
            ..Default::default()
        };
        let res = gmres(&a, &IdentityPrecond, &SeqDot, &b, &x0, &opts);
        assert!(res.converged, "not converged: {}", res.final_residual);
        assert!(residual(&a, &res.x, &b) < 1e-8);
    }

    #[test]
    fn mgs_and_cgs_agree() {
        let a = laplacian_2d(8, 8);
        let n = a.rows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let x0 = vec![0.0; n];
        let mut o1 = GmresOpts {
            tol: 1e-12,
            ..Default::default()
        };
        o1.ortho = Ortho::Mgs;
        let mut o2 = o1.clone();
        o2.ortho = Ortho::Cgs;
        let r1 = gmres(&a, &IdentityPrecond, &SeqDot, &b, &x0, &o1);
        let r2 = gmres(&a, &IdentityPrecond, &SeqDot, &b, &x0, &o2);
        assert!(r1.converged && r2.converged);
        assert!(vector::dist2(&r1.x, &r2.x) < 1e-7 * vector::norm2(&r1.x));
        // iteration counts within 2 of each other
        assert!((r1.iterations as i64 - r2.iterations as i64).abs() <= 2);
    }

    #[test]
    fn restart_still_converges() {
        let a = laplacian_2d(12, 12);
        let n = a.rows();
        let b = vec![1.0; n];
        let x0 = vec![0.0; n];
        let opts = GmresOpts {
            restart: 10,
            tol: 1e-8,
            max_iters: 2000,
            ..Default::default()
        };
        let res = gmres(&a, &IdentityPrecond, &SeqDot, &b, &x0, &opts);
        assert!(res.converged);
        assert!(residual(&a, &res.x, &b) < 1e-6);
    }

    #[test]
    fn jacobi_preconditioning_reduces_iterations() {
        // Badly scaled diagonal: unpreconditioned GMRES struggles, Jacobi
        // fixes the scaling.
        let n = 60;
        let mut c = CooBuilder::new(n, n);
        for i in 0..n {
            let d = 10f64.powi((i % 5) as i32);
            c.push(i, i, d);
            if i + 1 < n {
                c.push(i, i + 1, 0.1);
                c.push(i + 1, i, 0.1);
            }
        }
        let a = c.to_csr();
        let b = vec![1.0; n];
        let x0 = vec![0.0; n];
        let opts = GmresOpts {
            tol: 1e-8,
            max_iters: 300,
            ..Default::default()
        };
        let diag = a.diag();
        let jacobi = FnPrecond::new(move |r: &[f64], z: &mut [f64]| {
            for i in 0..r.len() {
                z[i] = r[i] / diag[i];
            }
        });
        let plain = gmres(&a, &IdentityPrecond, &SeqDot, &b, &x0, &opts);
        let pc = gmres(&a, &jacobi, &SeqDot, &b, &x0, &opts);
        assert!(pc.converged);
        assert!(
            pc.iterations < plain.iterations,
            "jacobi {} !< plain {}",
            pc.iterations,
            plain.iterations
        );
        assert!(residual(&a, &pc.x, &b) < 1e-6);
    }

    #[test]
    fn history_is_monotone_enough_and_final_matches() {
        let a = laplacian_2d(6, 6);
        let n = a.rows();
        let b = vec![1.0; n];
        let res = gmres(
            &a,
            &IdentityPrecond,
            &SeqDot,
            &b,
            &vec![0.0; n],
            &GmresOpts::default(),
        );
        // GMRES residuals are non-increasing within a cycle.
        for w in res.history.windows(2) {
            assert!(w[1] <= w[0] * (1.0 + 1e-12));
        }
        assert_eq!(res.history.len(), res.iterations + 1);
    }

    #[test]
    fn left_and_right_preconditioning_agree() {
        let a = laplacian_2d(9, 7);
        let n = a.rows();
        let b: Vec<f64> = (0..n).map(|i| ((i % 9) as f64) - 4.0).collect();
        let diag = a.diag();
        let jacobi = FnPrecond::new(move |r: &[f64], z: &mut [f64]| {
            for i in 0..r.len() {
                z[i] = r[i] / diag[i];
            }
        });
        let mut left = GmresOpts {
            tol: 1e-10,
            ..Default::default()
        };
        left.side = Side::Left;
        let mut right = left.clone();
        right.side = Side::Right;
        let rl = gmres(&a, &jacobi, &SeqDot, &b, &vec![0.0; n], &left);
        let rr = gmres(&a, &jacobi, &SeqDot, &b, &vec![0.0; n], &right);
        assert!(rl.converged && rr.converged);
        assert!(vector::dist2(&rl.x, &rr.x) < 1e-6 * vector::norm2(&rl.x));
    }

    #[test]
    fn right_preconditioning_tracks_true_residual() {
        let a = laplacian_2d(8, 8);
        let n = a.rows();
        let b = vec![1.0; n];
        let diag = a.diag();
        let jacobi = FnPrecond::new(move |r: &[f64], z: &mut [f64]| {
            for i in 0..r.len() {
                z[i] = r[i] / diag[i];
            }
        });
        let res = gmres(
            &a,
            &jacobi,
            &SeqDot,
            &b,
            &vec![0.0; n],
            &GmresOpts {
                tol: 1e-8,
                side: Side::Right,
                ..Default::default()
            },
        );
        assert!(res.converged);
        // The reported estimate must match the actual true residual.
        let mut ax = vec![0.0; n];
        a.spmv(&res.x, &mut ax);
        let actual = vector::dist2(&ax, &b) / vector::norm2(&b);
        assert!(
            (actual - res.final_residual).abs() < 1e-7,
            "estimate {} vs actual {actual}",
            res.final_residual
        );
    }

    #[test]
    fn cgs2_matches_mgs_on_ill_conditioned() {
        // Badly scaled SPD system where plain CGS loses orthogonality.
        let n = 50;
        let mut c = CooBuilder::new(n, n);
        for i in 0..n {
            c.push(i, i, 10f64.powi((i % 7) as i32));
            if i + 1 < n {
                c.push(i, i + 1, 1.0);
                c.push(i + 1, i, 1.0);
            }
        }
        let a = c.to_csr();
        let b = vec![1.0; n];
        let mk = |ortho: Ortho| GmresOpts {
            tol: 1e-10,
            max_iters: 300,
            ortho,
            record_history: false,
            ..Default::default()
        };
        let r2 = gmres(
            &a,
            &IdentityPrecond,
            &SeqDot,
            &b,
            &vec![0.0; n],
            &mk(Ortho::Cgs2),
        );
        let rm = gmres(
            &a,
            &IdentityPrecond,
            &SeqDot,
            &b,
            &vec![0.0; n],
            &mk(Ortho::Mgs),
        );
        assert!(r2.converged && rm.converged);
        assert!(
            (r2.iterations as i64 - rm.iterations as i64).abs() <= 3,
            "CGS2 {} vs MGS {}",
            r2.iterations,
            rm.iterations
        );
    }

    #[test]
    fn zero_rhs_returns_immediately() {
        let a = laplacian_2d(4, 4);
        let n = a.rows();
        let res = gmres(
            &a,
            &IdentityPrecond,
            &SeqDot,
            &vec![0.0; n],
            &vec![0.0; n],
            &GmresOpts::default(),
        );
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn nan_preconditioner_reports_breakdown() {
        let a = laplacian_2d(5, 5);
        let n = a.rows();
        let nan = FnPrecond::new(|_r: &[f64], z: &mut [f64]| z.fill(f64::NAN));
        let res = gmres(
            &a,
            &nan,
            &SeqDot,
            &vec![1.0; n],
            &vec![0.0; n],
            &GmresOpts::default(),
        );
        assert!(!res.converged);
        assert_eq!(res.status, SolveStatus::Breakdown);
        assert_eq!(res.breakdown_restarts, 1);
        // The iterate must never be poisoned by the NaN columns.
        assert!(res.x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn zero_preconditioner_is_breakdown_not_false_convergence() {
        let a = laplacian_2d(5, 5);
        let n = a.rows();
        let zero = FnPrecond::new(|_r: &[f64], z: &mut [f64]| z.fill(0.0));
        let res = gmres(
            &a,
            &zero,
            &SeqDot,
            &vec![1.0; n],
            &vec![0.0; n],
            &GmresOpts::default(),
        );
        assert!(!res.converged);
        assert_eq!(res.status, SolveStatus::Breakdown);
    }

    #[test]
    fn stagnation_triggers_breakdown_after_one_restart() {
        // Circulant shift: the GMRES residual with b = e₁ stays exactly 1
        // until iteration n — flat far past the stall limit.
        let n = 80;
        let mut c = CooBuilder::new(n, n);
        for i in 0..n {
            c.push((i + 1) % n, i, 1.0);
        }
        let a = c.to_csr();
        let mut b = vec![0.0; n];
        b[0] = 1.0;
        let res = gmres(
            &a,
            &IdentityPrecond,
            &SeqDot,
            &b,
            &vec![0.0; n],
            &GmresOpts::default(),
        );
        assert_eq!(res.status, SolveStatus::Breakdown);
        assert_eq!(res.breakdown_restarts, 1);
    }

    #[test]
    fn checkpoints_fire_on_interval_with_consistent_state() {
        let a = laplacian_2d(10, 10);
        let n = a.rows();
        let b: Vec<f64> = (0..n).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();
        let sink = VecSink::new();
        let cfg = CheckpointCfg::new(5, &sink);
        let opts = GmresOpts {
            tol: 1e-10,
            ..Default::default()
        };
        let res = try_gmres(
            &a,
            &IdentityPrecond,
            &SeqDot,
            &b,
            &vec![0.0; n],
            &opts,
            Some(&cfg),
        )
        .unwrap();
        assert!(res.converged);
        let saved = sink.0.borrow();
        assert!(saved.len() >= 2, "expected several snapshots");
        for cp in saved.iter() {
            assert_eq!(cp.iteration % 5, 0);
            assert_eq!(cp.history.len(), cp.iteration + 1);
            assert_eq!(cp.history[cp.iteration], cp.residual);
            assert!(cp.x.iter().all(|v| v.is_finite()));
            assert!(cp.r0_norm > 0.0);
        }
        // Snapshot iterates must actually be the mid-solve iterates: the
        // materialized x at a checkpoint has the residual the history
        // recorded for that iteration (right preconditioning tracks the
        // true residual).
        let cp = saved.last().unwrap();
        let mut ax = vec![0.0; n];
        a.spmv(&cp.x, &mut ax);
        let actual = vector::dist2(&ax, &b) / vector::norm2(&b);
        assert!(
            (actual - cp.residual).abs() < 1e-8,
            "snapshot residual {} vs actual {actual}",
            cp.residual
        );
    }

    #[test]
    fn interrupted_solve_resumes_from_checkpoint_to_same_tolerance() {
        let a = laplacian_2d(12, 12);
        let n = a.rows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.23).sin()).collect();
        let opts = GmresOpts {
            tol: 1e-8,
            max_iters: 2000,
            ..Default::default()
        };
        let clean = gmres(&a, &IdentityPrecond, &SeqDot, &b, &vec![0.0; n], &opts);
        assert!(clean.converged);

        // Kill the operator mid-solve; the last checkpoint survives.
        let failing = FailAfter {
            inner: &a,
            budget: Cell::new(12),
        };
        let sink = VecSink::new();
        let cfg = CheckpointCfg::new(3, &sink);
        let err = try_gmres(
            &failing,
            &IdentityPrecond,
            &SeqDot,
            &b,
            &vec![0.0; n],
            &opts,
            Some(&cfg),
        )
        .unwrap_err();
        assert!(err.reason().contains("budget"));
        let cp = sink.0.borrow().last().unwrap().clone();
        let resume_iter = cp.iteration;
        assert!(resume_iter > 0);

        // Resume on the healthy operator from the snapshot.
        let sink2 = VecSink::new();
        let cfg2 = CheckpointCfg::resuming(1000, &sink2, cp);
        let res = try_gmres(
            &a,
            &IdentityPrecond,
            &SeqDot,
            &b,
            &vec![0.0; n],
            &opts,
            Some(&cfg2),
        )
        .unwrap();
        assert!(res.converged, "resumed solve must converge");
        assert!(
            res.iterations > resume_iter,
            "iteration count is cumulative"
        );
        assert_eq!(res.history.len(), res.iterations + 1);
        // Same tolerance as the fault-free solve: the resumed run is
        // anchored to the original ‖r₀‖, so its true residual matches.
        assert!(residual(&a, &res.x, &b) <= residual(&a, &clean.x, &b) * 10.0 + 1e-12);
        assert!(residual(&a, &res.x, &b) < 1e-6);
    }

    #[test]
    fn guard_confirms_clean_convergence_with_identical_iterates() {
        let a = laplacian_2d(10, 10);
        let n = a.rows();
        let b: Vec<f64> = (0..n).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
        let x0 = vec![0.0; n];
        let off = GmresOpts {
            tol: 1e-10,
            ..Default::default()
        };
        let on = GmresOpts {
            guard: Some(SdcGuard::default()),
            ..off.clone()
        };
        let r_off = gmres(&a, &IdentityPrecond, &SeqDot, &b, &x0, &off);
        let r_on = gmres(&a, &IdentityPrecond, &SeqDot, &b, &x0, &on);
        assert!(r_off.converged && r_on.converged);
        // The guard changes *when* convergence is accepted, never the
        // iterates: same x bitwise, same iteration count.
        assert_eq!(r_off.x, r_on.x);
        assert_eq!(r_off.iterations, r_on.iterations);
        // The guarded final residual is the recomputed (verified) one.
        assert!((residual(&a, &r_on.x, &b) - r_on.final_residual).abs() < 1e-9);
    }

    #[test]
    fn guard_flags_corrupted_operator_instead_of_false_convergence() {
        let a = laplacian_2d(10, 10);
        let n = a.rows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() + 1.0).collect();
        let x0 = vec![0.0; n];
        let mk = || CorruptOnce {
            inner: &a,
            at: 10,
            scale: 2.0,
            count: Cell::new(0),
        };
        let off = GmresOpts {
            tol: 1e-10,
            ..Default::default()
        };
        // Unguarded: the recurred residual converges on a poisoned basis
        // and the solver silently returns a wrong answer.
        let silent = gmres(&mk(), &IdentityPrecond, &SeqDot, &b, &x0, &off);
        assert!(silent.converged, "baseline silently false-converges");
        assert!(
            residual(&a, &silent.x, &b) > 1e-6,
            "unguarded answer should actually be wrong: {}",
            residual(&a, &silent.x, &b)
        );
        // Guarded: the recomputed residual disagrees with the recurred
        // claim and a typed, downcastable interrupt surfaces.
        let on = GmresOpts {
            guard: Some(SdcGuard::default()),
            ..off
        };
        let err = try_gmres(&mk(), &IdentityPrecond, &SeqDot, &b, &x0, &on, None).unwrap_err();
        let sdc = err.sdc().expect("interrupt must carry the SDC marker");
        assert!(
            sdc.recomputed > sdc.recurred,
            "recomputed {} vs recurred {}",
            sdc.recomputed,
            sdc.recurred
        );
        assert!(err.reason().contains("silent data corruption"));
    }

    #[test]
    fn guarded_solve_replays_from_checkpoint_to_fault_free_answer() {
        // The full recovery loop in miniature: guarded solve trips on
        // corruption, the caller rolls back to the newest checkpoint, and
        // the replay (operator healthy again — the flip was transient)
        // matches the fault-free answer to tight tolerance.
        let a = laplacian_2d(12, 12);
        let n = a.rows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.23).sin()).collect();
        let opts = GmresOpts {
            tol: 1e-10,
            max_iters: 2000,
            guard: Some(SdcGuard::default()),
            ..Default::default()
        };
        let clean = gmres(&a, &IdentityPrecond, &SeqDot, &b, &vec![0.0; n], &opts);
        assert!(clean.converged);

        let corrupt = CorruptOnce {
            inner: &a,
            at: 15,
            scale: 2.0,
            count: Cell::new(0),
        };
        let sink = VecSink::new();
        let cfg = CheckpointCfg::new(4, &sink);
        let err = try_gmres(
            &corrupt,
            &IdentityPrecond,
            &SeqDot,
            &b,
            &vec![0.0; n],
            &opts,
            Some(&cfg),
        )
        .unwrap_err();
        assert!(err.sdc().is_some());

        // Roll back newest → oldest: snapshots taken after the flip carry
        // the poison, and the resumed guard may reject them too. The first
        // checkpoint that replays to verified convergence wins.
        let saved: Vec<_> = sink.0.borrow().clone();
        assert!(!saved.is_empty(), "no checkpoints to roll back to");
        let mut replayed = None;
        for cp in saved.into_iter().rev() {
            let sink2 = VecSink::new();
            let cfg2 = CheckpointCfg::resuming(1000, &sink2, cp);
            if let Ok(res) = try_gmres(
                &a,
                &IdentityPrecond,
                &SeqDot,
                &b,
                &vec![0.0; n],
                &opts,
                Some(&cfg2),
            ) {
                if res.converged {
                    replayed = Some(res);
                    break;
                }
            }
        }
        let res = replayed.expect("some checkpoint must replay to convergence");
        // Verified convergence guarantees the replayed answer is honest:
        // its true residual meets the same tolerance as the fault-free run.
        assert!(residual(&a, &res.x, &b) < 1e-9);
        assert!(
            vector::dist2(&res.x, &clean.x) < 1e-7 * vector::norm2(&clean.x).max(1.0),
            "replayed answer must match fault-free: dist {}",
            vector::dist2(&res.x, &clean.x)
        );
    }

    #[test]
    fn nonzero_initial_guess() {
        let a = laplacian_2d(7, 5);
        let n = a.rows();
        let xref: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).cos()).collect();
        let mut b = vec![0.0; n];
        a.spmv(&xref, &mut b);
        // Start close to the solution: should converge in few iterations.
        let mut x0 = xref.clone();
        x0[0] += 0.01;
        let res = gmres(
            &a,
            &IdentityPrecond,
            &SeqDot,
            &b,
            &x0,
            &GmresOpts::default(),
        );
        assert!(res.converged);
        assert!(res.iterations < 20);
        assert!(vector::dist2(&res.x, &xref) < 1e-5);
    }
}
