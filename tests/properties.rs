//! Property-based tests (proptest) on the core data structures and
//! numerical invariants across the workspace.

use dd_geneo::linalg::{jacobi, vector, CooBuilder, CsrMatrix, DMat, Givens};
use dd_geneo::mesh::{refine::uniform_refine, Mesh};
use dd_geneo::part::{partition_ggp, partition_rcb, quality};
use dd_geneo::solver::{Ordering, SparseLdlt};
use proptest::prelude::*;
use std::collections::HashMap;

/// Random sparse triplets on an n×n matrix.
fn triplets(n: usize, max_nnz: usize) -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    prop::collection::vec(
        (0..n, 0..n, -10.0..10.0f64).prop_map(|(i, j, v)| (i, j, v)),
        0..max_nnz,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn coo_to_csr_accumulates_duplicates(tr in triplets(12, 60)) {
        let mut b = CooBuilder::new(12, 12);
        let mut reference: HashMap<(usize, usize), f64> = HashMap::new();
        for &(i, j, v) in &tr {
            b.push(i, j, v);
            *reference.entry((i, j)).or_insert(0.0) += v;
        }
        let a = b.to_csr();
        for (&(i, j), &v) in &reference {
            prop_assert!((a.get(i, j) - v).abs() < 1e-12 * v.abs().max(1.0));
        }
        // nnz never exceeds the number of distinct positions
        prop_assert!(a.nnz() <= reference.len());
    }

    #[test]
    fn transpose_is_involution(tr in triplets(10, 40)) {
        let mut b = CooBuilder::new(10, 10);
        for &(i, j, v) in &tr {
            b.push(i, j, v);
        }
        let a = b.to_csr();
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn spmv_matches_dense(tr in triplets(9, 40), x in prop::collection::vec(-5.0..5.0f64, 9)) {
        let mut b = CooBuilder::new(9, 9);
        for &(i, j, v) in &tr {
            b.push(i, j, v);
        }
        let a = b.to_csr();
        let ad = a.to_dense();
        let mut ys = vec![0.0; 9];
        a.spmv(&x, &mut ys);
        let mut yd = vec![0.0; 9];
        ad.gemv(1.0, &x, 0.0, &mut yd);
        prop_assert!(vector::dist2(&ys, &yd) < 1e-10);
    }

    #[test]
    fn spmm_transpose_identity(tr1 in triplets(7, 25), tr2 in triplets(7, 25)) {
        // (A B)ᵀ = Bᵀ Aᵀ
        let mk = |tr: &[(usize, usize, f64)]| {
            let mut b = CooBuilder::new(7, 7);
            for &(i, j, v) in tr {
                b.push(i, j, v);
            }
            b.to_csr()
        };
        let a = mk(&tr1);
        let b = mk(&tr2);
        let lhs = a.spmm(&b).transpose();
        let rhs = b.transpose().spmm(&a.transpose());
        let diff = lhs.add_scaled(-1.0, &rhs);
        prop_assert!(diff.values().iter().all(|v| v.abs() < 1e-10));
    }

    #[test]
    fn ldlt_solves_diag_dominant_spd(
        offd in prop::collection::vec(-1.0..1.0f64, 20),
        rhs in prop::collection::vec(-3.0..3.0f64, 21),
    ) {
        // Tridiagonal diagonally dominant SPD matrix of order 21.
        let n = 21;
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 4.0);
            if i + 1 < n {
                b.push(i, i + 1, offd[i]);
                b.push(i + 1, i, offd[i]);
            }
        }
        let a = b.to_csr();
        for ord in [Ordering::Natural, Ordering::Rcm, Ordering::MinDegree] {
            let f = SparseLdlt::factor(&a, ord).unwrap();
            let x = f.solve(&rhs);
            let mut ax = vec![0.0; n];
            a.spmv(&x, &mut ax);
            prop_assert!(vector::dist2(&ax, &rhs) < 1e-9, "ordering {:?}", ord);
        }
    }

    #[test]
    fn givens_always_annihilates(a in -1e6..1e6f64, b in -1e6..1e6f64) {
        let (g, r) = Givens::compute(a, b);
        let (x, y) = g.apply(a, b);
        prop_assert!((x - r).abs() <= 1e-9 * r.abs().max(1.0));
        prop_assert!(y.abs() <= 1e-9 * (a.abs() + b.abs()).max(1.0));
        prop_assert!((g.c * g.c + g.s * g.s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jacobi_eigenvalue_sum_is_trace(vals in prop::collection::vec(-4.0..4.0f64, 15)) {
        // Build a 5×5 symmetric matrix from 15 free entries.
        let n = 5;
        let mut a = DMat::zeros(n, n);
        let mut k = 0;
        for i in 0..n {
            for j in 0..=i {
                a[(i, j)] = vals[k];
                a[(j, i)] = vals[k];
                k += 1;
            }
        }
        let trace: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let e = jacobi::sym_eig(&a, 1e-13);
        let sum: f64 = e.eigenvalues.iter().sum();
        prop_assert!((sum - trace).abs() < 1e-9 * trace.abs().max(1.0));
    }

    #[test]
    fn rcb_partitions_are_balanced(
        pts in prop::collection::vec((0.0..1.0f64, 0.0..1.0f64), 32..200),
        nparts in 2usize..8,
    ) {
        let flat: Vec<f64> = pts.iter().flat_map(|&(x, y)| [x, y]).collect();
        let part = partition_rcb(&flat, 2, nparts);
        let mut sizes = vec![0usize; nparts];
        for &p in &part {
            prop_assert!((p as usize) < nparts);
            sizes[p as usize] += 1;
        }
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        prop_assert!(max - min <= 1 + pts.len() / nparts / 2, "sizes {:?}", sizes);
    }

    #[test]
    fn ggp_covers_all_vertices(n_side in 3usize..8, nparts in 1usize..6) {
        let mesh = Mesh::unit_square(n_side, n_side);
        let adj = mesh.dual_graph();
        let part = partition_ggp(&adj, nparts);
        let q = quality(&adj, &part, nparts);
        prop_assert_eq!(q.nparts, nparts);
        let mut seen = vec![false; nparts];
        for &p in &part {
            seen[p as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s), "empty part");
    }

    #[test]
    fn mesh_refinement_preserves_volume(nx in 1usize..5, ny in 1usize..5, lx in 0.5..3.0f64) {
        let m = Mesh::rectangle(nx, ny, lx, 1.0);
        let r = uniform_refine(&m);
        prop_assert!((r.total_volume() - m.total_volume()).abs() < 1e-10);
        prop_assert_eq!(r.n_elements(), 4 * m.n_elements());
    }

    #[test]
    fn csr_norms_consistent(tr in triplets(8, 30)) {
        let mut b = CooBuilder::new(8, 8);
        for &(i, j, v) in &tr {
            b.push(i, j, v);
        }
        let a = b.to_csr();
        // ‖A‖₁ = ‖Aᵀ‖∞
        prop_assert!((a.norm_1() - a.transpose().norm_inf()).abs() < 1e-12);
    }

    #[test]
    fn dense_lu_inverts_well_conditioned(vals in prop::collection::vec(-1.0..1.0f64, 16)) {
        // Diagonally dominated 4×4.
        let n = 4;
        let mut a = DMat::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = vals[i * n + j];
            }
            a[(i, i)] += 5.0;
        }
        let lu = dd_geneo::linalg::DenseLu::factor(&a).unwrap();
        let b = [1.0, -2.0, 3.0, 0.5];
        let x = lu.solve(&b);
        let mut ax = vec![0.0; n];
        a.gemv(1.0, &x, 0.0, &mut ax);
        prop_assert!(vector::dist2(&ax, &b) < 1e-10);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// End-to-end property: for random connected decompositions of a fixed
    /// mesh, the partition of unity is exact and the distributed SpMV
    /// matches the global one.
    #[test]
    fn decomposition_invariants(nparts in 2usize..7, delta in 1usize..3) {
        use dd_geneo::core::{decompose, problem::presets};
        use dd_geneo::part::partition_mesh_rcb;
        let mesh = Mesh::unit_square(10, 10);
        let part = partition_mesh_rcb(&mesh, nparts);
        let problem = presets::uniform_diffusion(1);
        let d = decompose(&mesh, &problem, &part, nparts, delta);
        prop_assert!(d.pou_defect() < 1e-12);
        let x: Vec<f64> = (0..d.n_global).map(|i| ((i * 29) % 17) as f64 - 8.0).collect();
        let locals = d.to_locals(&x);
        let out = d.dist_spmv(&locals);
        let mut want = vec![0.0; d.n_global];
        d.a_global.spmv(&x, &mut want);
        for (s, o) in d.subdomains.iter().zip(&out) {
            let want_i = s.restrict(&want);
            prop_assert!(vector::dist2(o, &want_i) < 1e-9 * vector::norm2(&want_i).max(1.0));
        }
    }
}

/// Deterministic regression companion to the property tests: a couple of
/// adversarial shapes that once caused trouble.
#[test]
fn csr_empty_and_full_rows() {
    let mut b = CooBuilder::new(3, 3);
    b.push(1, 0, 1.0);
    b.push(1, 1, 2.0);
    b.push(1, 2, 3.0);
    let a = b.to_csr();
    assert_eq!(a.row(0).count(), 0);
    assert_eq!(a.row(1).count(), 3);
    assert_eq!(a.row(2).count(), 0);
    let mut y = vec![0.0; 3];
    a.spmv(&[1.0, 1.0, 1.0], &mut y);
    assert_eq!(y, vec![0.0, 6.0, 0.0]);
}

#[test]
fn identity_matrix_roundtrips() {
    let i5 = CsrMatrix::identity(5);
    assert_eq!(i5.spmm(&i5), i5);
    assert_eq!(i5.transpose(), i5);
    let f = SparseLdlt::factor(&i5, Ordering::MinDegree).unwrap();
    assert_eq!(f.solve(&[1.0, 2.0, 3.0, 4.0, 5.0]), vec![1.0, 2.0, 3.0, 4.0, 5.0]);
}
