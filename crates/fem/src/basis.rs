//! Lagrange shape functions of arbitrary order on reference simplices.
//!
//! The basis of order `k` in dimension `d` is associated with the lattice
//! nodes `α/k` where `α` ranges over non-negative multi-indices of length
//! `d + 1` summing to `k` (barycentric). Shape functions are represented in
//! the monomial basis; the coefficients come from inverting the Vandermonde
//! matrix at the lattice nodes — exact and simple for `k ≤ 4`, which covers
//! every element order the paper uses.

use dd_linalg::{DMat, DenseLu};

/// Multi-index lattice node of a `P_k` element: barycentric numerators
/// (length `dim + 1`, summing to `k`).
pub type LatticeNode = Vec<u8>;

/// Lagrange basis of order `k` on the reference simplex of dimension `dim`
/// (dimension 1 — segments — serves the boundary-facet integrals).
///
/// The reference simplex has vertices at the origin and the unit points of
/// each axis; barycentric coordinate 0 belongs to the origin vertex.
#[derive(Clone, Debug)]
pub struct LagrangeBasis {
    dim: usize,
    order: usize,
    /// Lattice nodes (barycentric numerators), one per basis function.
    nodes: Vec<LatticeNode>,
    /// Monomial exponents (length `dim` each).
    monomials: Vec<Vec<u8>>,
    /// `coeff[(m, i)]`: coefficient of monomial `m` in shape function `i`.
    coeff: DMat,
}

/// Enumerate the multi-indices of length `len` summing to `total`,
/// lexicographically.
fn multi_indices(len: usize, total: usize) -> Vec<Vec<u8>> {
    fn rec(len: usize, total: usize, prefix: &mut Vec<u8>, out: &mut Vec<Vec<u8>>) {
        if len == 1 {
            prefix.push(total as u8);
            out.push(prefix.clone());
            prefix.pop();
            return;
        }
        for first in (0..=total).rev() {
            prefix.push(first as u8);
            rec(len - 1, total - first, prefix, out);
            prefix.pop();
        }
    }
    let mut out = Vec::new();
    rec(len, total, &mut Vec::new(), &mut out);
    out
}

impl LagrangeBasis {
    /// Construct the `P_order` basis in dimension `dim`.
    ///
    /// # Panics
    /// Panics for unsupported combinations (`dim ∉ {2, 3}` or `order = 0`
    /// or `order > 4`).
    pub fn new(dim: usize, order: usize) -> Self {
        assert!((1..=3).contains(&dim), "dim must be 1, 2 or 3");
        assert!((1..=4).contains(&order), "order must be in 1..=4");
        let nodes = multi_indices(dim + 1, order);
        // Monomials x^a y^b (z^c) with total degree ≤ order.
        let mut monomials = Vec::new();
        for total in 0..=order {
            for mi in multi_indices(dim, total) {
                monomials.push(mi);
            }
        }
        let n = nodes.len();
        assert_eq!(monomials.len(), n, "dimension count mismatch");
        // Vandermonde: V[(i, m)] = monomial m at node i (cartesian coords of
        // the node are barycentric numerators 1.. / order).
        let mut v = DMat::zeros(n, n);
        for (i, node) in nodes.iter().enumerate() {
            let x: Vec<f64> = (0..dim)
                .map(|d| node[d + 1] as f64 / order as f64)
                .collect();
            for (m, mono) in monomials.iter().enumerate() {
                let mut t = 1.0;
                for d in 0..dim {
                    t *= x[d].powi(mono[d] as i32);
                }
                v[(i, m)] = t;
            }
        }
        // coeff = V⁻¹ (column i of coeff gives shape function i in the
        // monomial basis: φ_i(x_j) = δ_ij).
        let lu = DenseLu::factor(&v).expect("Vandermonde is nonsingular");
        let mut coeff = DMat::zeros(n, n);
        for i in 0..n {
            let mut e = vec![0.0; n];
            e[i] = 1.0;
            // Solve Vᵀ c = e ⟺ row interpolation; we need φ_i with
            // Σ_m c_m mono_m(x_j) = δ_ij, i.e. V c = e_i.
            let c = lu.solve(&e);
            coeff.col_mut(i).copy_from_slice(&c);
        }
        LagrangeBasis {
            dim,
            order,
            nodes,
            monomials,
            coeff,
        }
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    pub fn order(&self) -> usize {
        self.order
    }

    /// Number of shape functions (= lattice nodes).
    pub fn n_basis(&self) -> usize {
        self.nodes.len()
    }

    /// Lattice nodes (barycentric numerators summing to `order`).
    pub fn nodes(&self) -> &[LatticeNode] {
        &self.nodes
    }

    /// Evaluate all shape functions at a reference point (cartesian
    /// coordinates, `dim` entries), writing into `out`.
    pub fn eval(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.dim);
        assert_eq!(out.len(), self.n_basis());
        let n = self.n_basis();
        // Evaluate monomials once.
        let mut mono = vec![1.0f64; n];
        for (m, exps) in self.monomials.iter().enumerate() {
            let mut t = 1.0;
            for d in 0..self.dim {
                t *= x[d].powi(exps[d] as i32);
            }
            mono[m] = t;
        }
        for i in 0..n {
            let ci = self.coeff.col(i);
            out[i] = dd_linalg::vector::dot(ci, &mono);
        }
    }

    /// Evaluate all shape-function gradients at a reference point,
    /// writing `∂φ_i/∂x_d` into `out[i * dim + d]`.
    pub fn eval_grad(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.dim);
        assert_eq!(out.len(), self.n_basis() * self.dim);
        let n = self.n_basis();
        // d(mono_m)/dx_d evaluated at x.
        let mut dmono = vec![0.0f64; n * self.dim];
        for (m, exps) in self.monomials.iter().enumerate() {
            for d in 0..self.dim {
                let e = exps[d] as i32;
                if e == 0 {
                    continue;
                }
                let mut t = e as f64 * x[d].powi(e - 1);
                for dd in 0..self.dim {
                    if dd != d {
                        t *= x[dd].powi(exps[dd] as i32);
                    }
                }
                dmono[m * self.dim + d] = t;
            }
        }
        for i in 0..n {
            let ci = self.coeff.col(i);
            for d in 0..self.dim {
                let mut s = 0.0;
                for m in 0..n {
                    s += ci[m] * dmono[m * self.dim + d];
                }
                out[i * self.dim + d] = s;
            }
        }
    }

    /// Cartesian reference coordinates of lattice node `i`.
    pub fn node_ref_coords(&self, i: usize) -> Vec<f64> {
        (0..self.dim)
            .map(|d| self.nodes[i][d + 1] as f64 / self.order as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_formula() {
        // dim 2: (k+1)(k+2)/2 ; dim 3: (k+1)(k+2)(k+3)/6
        for k in 1..=4 {
            let b2 = LagrangeBasis::new(2, k);
            assert_eq!(b2.n_basis(), (k + 1) * (k + 2) / 2);
        }
        for k in 1..=2 {
            let b3 = LagrangeBasis::new(3, k);
            assert_eq!(b3.n_basis(), (k + 1) * (k + 2) * (k + 3) / 6);
        }
    }

    #[test]
    fn kronecker_delta_property() {
        for (dim, kmax) in [(2usize, 4usize), (3, 2)] {
            for k in 1..=kmax {
                let b = LagrangeBasis::new(dim, k);
                let n = b.n_basis();
                let mut vals = vec![0.0; n];
                for j in 0..n {
                    let x = b.node_ref_coords(j);
                    b.eval(&x, &mut vals);
                    for i in 0..n {
                        let expect = if i == j { 1.0 } else { 0.0 };
                        assert!(
                            (vals[i] - expect).abs() < 1e-9,
                            "P{k} dim {dim}: φ_{i}(x_{j}) = {}",
                            vals[i]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn partition_of_unity_and_gradient_sum() {
        for (dim, k) in [(2usize, 3usize), (3, 2), (2, 4)] {
            let b = LagrangeBasis::new(dim, k);
            let n = b.n_basis();
            let x: Vec<f64> = match dim {
                2 => vec![0.21, 0.33],
                _ => vec![0.15, 0.22, 0.31],
            };
            let mut vals = vec![0.0; n];
            b.eval(&x, &mut vals);
            let s: f64 = vals.iter().sum();
            assert!((s - 1.0).abs() < 1e-10, "PoU violated: {s}");
            let mut grads = vec![0.0; n * dim];
            b.eval_grad(&x, &mut grads);
            for d in 0..dim {
                let gs: f64 = (0..n).map(|i| grads[i * dim + d]).sum();
                assert!(gs.abs() < 1e-9, "gradient sum {gs}");
            }
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let b = LagrangeBasis::new(2, 3);
        let n = b.n_basis();
        let x = [0.3, 0.25];
        let h = 1e-6;
        let mut g = vec![0.0; n * 2];
        b.eval_grad(&x, &mut g);
        for d in 0..2 {
            let mut xp = x;
            xp[d] += h;
            let mut xm = x;
            xm[d] -= h;
            let mut vp = vec![0.0; n];
            let mut vm = vec![0.0; n];
            b.eval(&xp, &mut vp);
            b.eval(&xm, &mut vm);
            for i in 0..n {
                let fd = (vp[i] - vm[i]) / (2.0 * h);
                assert!(
                    (g[i * 2 + d] - fd).abs() < 1e-6,
                    "grad mismatch i={i} d={d}: {} vs {fd}",
                    g[i * 2 + d]
                );
            }
        }
    }

    #[test]
    fn p1_is_barycentric() {
        let b = LagrangeBasis::new(2, 1);
        let mut vals = vec![0.0; 3];
        b.eval(&[0.2, 0.3], &mut vals);
        // node order: multi-indices lex-descending on the first slot →
        // (1,0,0) = origin vertex first, then (0,1,0) = x-vertex, (0,0,1).
        assert!((vals[0] - 0.5).abs() < 1e-12);
        assert!((vals[1] - 0.2).abs() < 1e-12);
        assert!((vals[2] - 0.3).abs() < 1e-12);
    }
}
