//! Telemetry-based performance-regression gate.
//!
//! Compares freshly generated bench summaries (`<out>/summaries/*.json`,
//! written by the bench binaries — see `DD_BENCH_OUT`) against the
//! committed baselines in `bench_results/baselines/*.json`, applying the
//! per-metric tolerances of `bench_results/baselines/tolerances.json`.
//! Prints a markdown delta table (pipe it into `$GITHUB_STEP_SUMMARY` in
//! CI) and exits nonzero on any unexplained drift: changed communication
//! volume, charged flops, iteration counts, or phases appearing/vanishing.
//!
//! Usage:
//!
//! ```text
//! perf_gate [--current <dir>] [--baseline <dir>] [--tolerances <file>]
//!           [--only <stem>]...
//! ```
//!
//! Defaults: `--current` = `$DD_BENCH_OUT/summaries` (or
//! `bench_results/summaries`), `--baseline` = `bench_results/baselines`,
//! `--tolerances` = `<baseline>/tolerances.json` (exact match if the file
//! does not exist). `--only` (repeatable) restricts the gate to the named
//! baseline stems — for CI jobs that regenerate a subset of the
//! summaries. To accept intended changes, regenerate and copy the
//! summaries over the baselines (see EXPERIMENTS.md).
//!
//! `*_wall.json` baselines are skipped: those hold calibrated wall-clock
//! ratios, which are runner-dependent and gated softly by
//! `kernel_bench --gate-wall` instead of this exact diff.

use dd_bench::summary::{compare, markdown_table, Summary, Tolerances};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn parse_args() -> (PathBuf, PathBuf, Option<PathBuf>, Vec<String>) {
    let mut current = dd_bench::bench_out_dir().join("summaries");
    let mut baseline = PathBuf::from("bench_results").join("baselines");
    let mut tolerances = None;
    let mut only = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match a.as_str() {
            "--current" => current = PathBuf::from(val("--current")),
            "--baseline" => baseline = PathBuf::from(val("--baseline")),
            "--tolerances" => tolerances = Some(PathBuf::from(val("--tolerances"))),
            "--only" => only.push(val("--only")),
            other => panic!("unknown argument `{other}`"),
        }
    }
    (current, baseline, tolerances, only)
}

fn load_summary(path: &Path) -> Result<Summary, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Summary::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn main() -> ExitCode {
    let (current_dir, baseline_dir, tol_path, only) = parse_args();
    let tol_path = tol_path.unwrap_or_else(|| baseline_dir.join("tolerances.json"));
    let tol = match std::fs::read_to_string(&tol_path) {
        Ok(text) => match Tolerances::from_json(&text) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: bad tolerance file {}: {e}", tol_path.display());
                return ExitCode::FAILURE;
            }
        },
        Err(_) => Tolerances::default(),
    };

    let mut baselines: Vec<PathBuf> = match std::fs::read_dir(&baseline_dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.extension().is_some_and(|x| x == "json")
                    && p.file_name().is_some_and(|f| f != "tolerances.json")
                    // `*_wall.json` holds calibrated wall-clock ratios —
                    // runner-dependent by nature, gated softly by
                    // `kernel_bench --gate-wall` instead of this exact diff.
                    && !p
                        .file_stem()
                        .is_some_and(|s| s.to_string_lossy().ends_with("_wall"))
                    && (only.is_empty()
                        || p.file_stem()
                            .is_some_and(|s| only.iter().any(|o| *o == s.to_string_lossy())))
            })
            .collect(),
        Err(e) => {
            eprintln!(
                "error: cannot read baseline dir {}: {e}",
                baseline_dir.display()
            );
            return ExitCode::FAILURE;
        }
    };
    baselines.sort();
    if baselines.is_empty() {
        eprintln!(
            "error: no baselines in {} — run the benches and copy \
             <out>/summaries/*.json there first",
            baseline_dir.display()
        );
        return ExitCode::FAILURE;
    }

    println!("## Perf gate: telemetry drift vs committed baselines\n");
    let mut failed = false;
    for path in &baselines {
        let stem = path.file_stem().unwrap().to_string_lossy().to_string();
        let base = match load_summary(path) {
            Ok(s) => s,
            Err(e) => {
                println!("### `{stem}` — **unreadable baseline**: {e}\n");
                failed = true;
                continue;
            }
        };
        let cur_path = current_dir.join(format!("{stem}.json"));
        let cur = match load_summary(&cur_path) {
            Ok(s) => s,
            Err(e) => {
                println!(
                    "### `{stem}` — **missing current summary** \
                     (did the bench run with DD_BENCH_OUT set?): {e}\n"
                );
                failed = true;
                continue;
            }
        };
        let deltas = compare(&cur, &base, &tol);
        failed |= deltas.iter().any(|d| !d.ok);
        println!("{}", markdown_table(&stem, &deltas));
    }

    if failed {
        println!("\n**Perf gate FAILED** — unexplained telemetry drift.");
        println!(
            "If the change is intended, regenerate the baselines \
             (see EXPERIMENTS.md, \"Perf gate\") and commit them."
        );
        ExitCode::FAILURE
    } else {
        println!("\nPerf gate passed: all summaries within tolerance.");
        ExitCode::SUCCESS
    }
}
