//! Liveness-agreement schedule suites (satellite of the rank-death PR):
//! one seeded death at a failpoint, N = 3..4. In every explored
//! interleaving the survivors must commit the *same* shrink — identical
//! epoch, identical membership (no split-brain) — or surface a
//! structured error; the scheduler must never abort a stuck schedule,
//! and blocked survivors must wake to a typed error rather than hang on
//! the dead rank. The elastic-membership PR adds the suspect-then-evict
//! scenario: a straggler's heartbeats freeze, a survivor evicts it under
//! a suspicion policy, and wherever the eviction is observed the shrink
//! must record it *evicted*, never dead.

use dd_check::{check_world_with_faults, scaled, Budget, Config, FailureKind, Report};
use dd_comm::{CommError, FaultPlan, RankState, SuspicionPolicy};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn budget(max: usize) -> Budget {
    Budget {
        max_schedules: scaled(max),
        check_divergence: true,
    }
}

fn assert_graceful(r: &Report, what: &str) {
    for f in &r.failures {
        assert_ne!(
            f.kind,
            FailureKind::Stuck,
            "{what}: undetected hang (stuck schedule), replay script {:?}",
            f.script
        );
        assert_ne!(
            f.kind,
            FailureKind::Panic,
            "{what}: panic instead of graceful recovery: {}",
            f.message
        );
    }
    r.assert_clean();
}

/// The victim dies at a failpoint before communicating; every survivor
/// calls `try_shrink` and must land on the same epoch-1 communicator of
/// size `n − 1`, live enough to complete a collective. The committed
/// outcome is a pure function of the fault plan, so results must be
/// byte-identical across schedules.
fn death_then_shrink(n: usize, victim: usize, max: usize) -> Report {
    let faults = FaultPlan::new(23).with_kill(victim, "work");
    check_world_with_faults(n, Config::default(), budget(max), faults, move |comm| {
        if comm.failpoint("work").is_err() {
            // Killed: unwind without touching the runtime again.
            return vec![0xDD];
        }
        let sub = comm.try_shrink().expect("survivor must shrink");
        assert_eq!(sub.size(), n - 1, "agreement missed the death");
        assert_eq!(sub.epoch(), 1, "split-brain: unexpected epoch");
        assert_eq!(comm.dead_ranks(), vec![victim], "wrong dead set");
        let sum = sub
            .try_allreduce_sum(comm.world_rank() as f64)
            .expect("shrunk communicator must be live");
        let mut out = vec![0x51, sub.rank() as u8, sub.epoch() as u8];
        out.extend_from_slice(&sum.to_bits().to_le_bytes());
        out
    })
}

/// Survivors first block in a full-world collective the victim never
/// joins. Whatever the interleaving — kill before, during, or after the
/// survivors park — the collective must fail with a *structured* error
/// (never hang), after which the shrink still commits consistently.
/// The error variant a survivor observes is schedule-dependent
/// (`RankDead` vs `Revoked` vs `Timeout` races), so it is kept out of
/// the canonical bytes and only its presence is asserted.
fn blocked_collective_then_shrink(n: usize, victim: usize, max: usize) -> (Report, usize) {
    let faults = FaultPlan::new(31).with_kill(victim, "work");
    let structured = Arc::new(AtomicUsize::new(0));
    let seen = Arc::clone(&structured);
    let report = check_world_with_faults(n, Config::default(), budget(max), faults, move |comm| {
        if comm.failpoint("work").is_err() {
            return vec![0xDD];
        }
        let pre = comm.try_allreduce_sum(1.0);
        assert!(pre.is_err(), "collective over a dead rank must not succeed");
        if matches!(
            pre,
            Err(CommError::RankDead { .. }) | Err(CommError::Revoked { .. })
        ) {
            seen.fetch_add(1, Ordering::SeqCst);
        }
        let sub = comm.try_shrink().expect("survivor must shrink");
        assert_eq!(sub.size(), n - 1, "agreement missed the death");
        assert_eq!(sub.epoch(), 1, "split-brain: unexpected epoch");
        let sum = sub
            .try_allreduce_sum(comm.world_rank() as f64)
            .expect("shrunk communicator must be live");
        let mut out = vec![0x52, sub.rank() as u8, sub.epoch() as u8];
        out.extend_from_slice(&sum.to_bits().to_le_bytes());
        out
    });
    (report, structured.load(Ordering::SeqCst))
}

/// Suspect-then-evict: the victim's heartbeats freeze at the failpoint
/// while it parks in a collective its peers have abandoned — it keeps
/// running, it is *not* killed. Rank 0 classifies it under the suspicion
/// policy once its own heartbeat lead trips the `k_missed` budget and
/// evicts it; the revocation wakes the parked straggler with a
/// structured error and the survivors commit the same epoch-1 shrink.
/// Whether the departure is recorded as an eviction or as a plain exit
/// is schedule-dependent (a timeout or a peer's shrink-revocation can
/// wake the victim before rank 0 classifies it), so — like the error
/// variant in [`blocked_collective_then_shrink`] — the classification is
/// kept out of the canonical bytes and only asserted where observed,
/// plus a cross-schedule coverage count that at least one interleaving
/// performed a genuine eviction.
fn straggle_then_evict(n: usize, victim: usize, max: usize) -> (Report, usize) {
    let faults = FaultPlan::new(37).with_straggle(victim, "work");
    let evictions = Arc::new(AtomicUsize::new(0));
    let seen = Arc::clone(&evictions);
    let report = check_world_with_faults(n, Config::default(), budget(max), faults, move |comm| {
        let policy = SuspicionPolicy {
            deadline: f64::INFINITY,
            k_missed: 2,
        };
        comm.failpoint("work").expect("no kills in this plan");
        if comm.rank() == victim {
            // The straggler: alive but frozen. Park in a wait the peers
            // have abandoned; the eviction's revocation (or a timeout)
            // wakes it with a structured error and it withdraws.
            let woke = comm.try_allreduce_sum(1.0);
            assert!(woke.is_err(), "abandoned collective must not succeed");
            return vec![0xEE];
        }
        if comm.rank() == 0 {
            // A single designated observer classifies and evicts: by
            // heartbeat lag alone a starved-but-healthy peer is
            // indistinguishable from the frozen straggler, so a blanket
            // `maintain` here could evict a survivor the scheduler chose
            // not to run. Production drivers call `maintain` at iteration
            // boundaries, where collectives keep live peers in lockstep.
            for _ in 0..=policy.k_missed {
                comm.heartbeat();
            }
            if !comm.is_world_rank_gone(victim) {
                assert_eq!(
                    comm.rank_states(&policy)[victim],
                    RankState::Suspected,
                    "the frozen straggler must trip the k_missed budget"
                );
                comm.evict(victim);
                seen.fetch_add(1, Ordering::SeqCst);
            }
        }
        if comm.is_world_rank_evicted(victim) {
            assert_eq!(
                comm.evicted_ranks(),
                vec![victim],
                "the eviction must be recorded as an eviction"
            );
            assert_eq!(
                comm.dead_ranks(),
                Vec::<usize>::new(),
                "eviction is not death"
            );
        }
        let sub = comm.try_shrink().expect("survivor must shrink");
        assert_eq!(sub.size(), n - 1, "agreement missed the eviction");
        assert_eq!(sub.epoch(), 1, "split-brain: unexpected epoch");
        let sum = sub
            .try_allreduce_sum(comm.world_rank() as f64)
            .expect("shrunk communicator must be live");
        let mut out = vec![0x53, sub.rank() as u8, sub.epoch() as u8];
        out.extend_from_slice(&sum.to_bits().to_le_bytes());
        out
    });
    (report, evictions.load(Ordering::SeqCst))
}

#[test]
fn shrink_agrees_n3_victim0() {
    let r = death_then_shrink(3, 0, 3000);
    assert_graceful(&r, "n=3 victim=0");
    assert!(r.schedules > 10, "explored {}", r.schedules);
}

#[test]
fn shrink_agrees_n3_victim2() {
    assert_graceful(&death_then_shrink(3, 2, 3000), "n=3 victim=2");
}

#[test]
fn shrink_agrees_n4_victim1() {
    assert_graceful(&death_then_shrink(4, 1, 4000), "n=4 victim=1");
}

#[test]
fn blocked_survivors_wake_structured_n3() {
    let (r, structured) = blocked_collective_then_shrink(3, 1, 3000);
    assert_graceful(&r, "n=3 blocked collective");
    assert!(
        structured > 0,
        "no schedule ever surfaced a RankDead/Revoked from the dead-rank collective"
    );
}

#[test]
fn blocked_survivors_wake_structured_n4() {
    let (r, _) = blocked_collective_then_shrink(4, 3, 4000);
    assert_graceful(&r, "n=4 blocked collective");
}

#[test]
fn straggler_evicted_not_dead_n3() {
    let (r, evictions) = straggle_then_evict(3, 2, 2500);
    assert_graceful(&r, "n=3 straggler eviction");
    assert!(r.schedules > 10, "explored {}", r.schedules);
    assert!(
        evictions > 0,
        "no schedule ever evicted the straggler before it withdrew"
    );
}
