//! Property-style tests on the core data structures and numerical
//! invariants across the workspace, driven by a seeded deterministic RNG
//! (see `common::Rng`) so failures replay exactly.

mod common;

use common::Rng;
use dd_geneo::linalg::{jacobi, vector, CooBuilder, CsrMatrix, DMat, Givens};
use dd_geneo::mesh::{refine::uniform_refine, Mesh};
use dd_geneo::part::{partition_ggp, partition_rcb, quality};
use dd_geneo::solver::{Ordering, SparseLdlt};
use std::collections::HashMap;

/// Random sparse triplets on an n×n matrix.
fn triplets(rng: &mut Rng, n: usize, max_nnz: usize) -> Vec<(usize, usize, f64)> {
    let nnz = rng.range_usize(0, max_nnz);
    (0..nnz)
        .map(|_| {
            (
                rng.range_usize(0, n),
                rng.range_usize(0, n),
                rng.range_f64(-10.0, 10.0),
            )
        })
        .collect()
}

fn csr_from(tr: &[(usize, usize, f64)], n: usize) -> CsrMatrix {
    let mut b = CooBuilder::new(n, n);
    for &(i, j, v) in tr {
        b.push(i, j, v);
    }
    b.to_csr()
}

#[test]
fn coo_to_csr_accumulates_duplicates() {
    let mut rng = Rng::new(101);
    for _ in 0..48 {
        let tr = triplets(&mut rng, 12, 60);
        let mut b = CooBuilder::new(12, 12);
        let mut reference: HashMap<(usize, usize), f64> = HashMap::new();
        for &(i, j, v) in &tr {
            b.push(i, j, v);
            *reference.entry((i, j)).or_insert(0.0) += v;
        }
        let a = b.to_csr();
        for (&(i, j), &v) in &reference {
            assert!((a.get(i, j) - v).abs() < 1e-12 * v.abs().max(1.0));
        }
        // nnz never exceeds the number of distinct positions
        assert!(a.nnz() <= reference.len());
    }
}

#[test]
fn transpose_is_involution() {
    let mut rng = Rng::new(102);
    for _ in 0..48 {
        let a = csr_from(&triplets(&mut rng, 10, 40), 10);
        assert_eq!(a.transpose().transpose(), a);
    }
}

#[test]
fn spmv_matches_dense() {
    let mut rng = Rng::new(103);
    for _ in 0..48 {
        let a = csr_from(&triplets(&mut rng, 9, 40), 9);
        let x = rng.vec_f64(9, -5.0, 5.0);
        let ad = a.to_dense();
        let mut ys = vec![0.0; 9];
        a.spmv(&x, &mut ys);
        let mut yd = vec![0.0; 9];
        ad.gemv(1.0, &x, 0.0, &mut yd);
        assert!(vector::dist2(&ys, &yd) < 1e-10);
    }
}

#[test]
fn spmm_transpose_identity() {
    // (A B)ᵀ = Bᵀ Aᵀ
    let mut rng = Rng::new(104);
    for _ in 0..48 {
        let a = csr_from(&triplets(&mut rng, 7, 25), 7);
        let b = csr_from(&triplets(&mut rng, 7, 25), 7);
        let lhs = a.spmm(&b).transpose();
        let rhs = b.transpose().spmm(&a.transpose());
        let diff = lhs.add_scaled(-1.0, &rhs);
        assert!(diff.values().iter().all(|v| v.abs() < 1e-10));
    }
}

#[test]
fn ldlt_solves_diag_dominant_spd() {
    let mut rng = Rng::new(105);
    for _ in 0..24 {
        // Tridiagonal diagonally dominant SPD matrix of order 21.
        let n = 21;
        let offd = rng.vec_f64(n - 1, -1.0, 1.0);
        let rhs = rng.vec_f64(n, -3.0, 3.0);
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 4.0);
        }
        for (i, &v) in offd.iter().enumerate() {
            b.push(i, i + 1, v);
            b.push(i + 1, i, v);
        }
        let a = b.to_csr();
        for ord in [Ordering::Natural, Ordering::Rcm, Ordering::MinDegree] {
            let f = SparseLdlt::factor(&a, ord).unwrap();
            let x = f.solve(&rhs);
            let mut ax = vec![0.0; n];
            a.spmv(&x, &mut ax);
            assert!(vector::dist2(&ax, &rhs) < 1e-9, "ordering {ord:?}");
        }
    }
}

#[test]
fn givens_always_annihilates() {
    let mut rng = Rng::new(106);
    for _ in 0..200 {
        let a = rng.range_f64(-1e6, 1e6);
        let b = rng.range_f64(-1e6, 1e6);
        let (g, r) = Givens::compute(a, b);
        let (x, y) = g.apply(a, b);
        assert!((x - r).abs() <= 1e-9 * r.abs().max(1.0));
        assert!(y.abs() <= 1e-9 * (a.abs() + b.abs()).max(1.0));
        assert!((g.c * g.c + g.s * g.s - 1.0).abs() < 1e-12);
    }
}

#[test]
fn jacobi_eigenvalue_sum_is_trace() {
    let mut rng = Rng::new(107);
    for _ in 0..48 {
        // Build a 5×5 symmetric matrix from 15 free entries.
        let n = 5;
        let vals = rng.vec_f64(15, -4.0, 4.0);
        let mut a = DMat::zeros(n, n);
        let mut k = 0;
        for i in 0..n {
            for j in 0..=i {
                a[(i, j)] = vals[k];
                a[(j, i)] = vals[k];
                k += 1;
            }
        }
        let trace: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let e = jacobi::sym_eig(&a, 1e-13);
        let sum: f64 = e.eigenvalues.iter().sum();
        assert!((sum - trace).abs() < 1e-9 * trace.abs().max(1.0));
    }
}

#[test]
fn rcb_partitions_are_balanced() {
    let mut rng = Rng::new(108);
    for _ in 0..48 {
        let npts = rng.range_usize(32, 200);
        let nparts = rng.range_usize(2, 8);
        let flat = rng.vec_f64(2 * npts, 0.0, 1.0);
        let part = partition_rcb(&flat, 2, nparts);
        let mut sizes = vec![0usize; nparts];
        for &p in &part {
            assert!((p as usize) < nparts);
            sizes[p as usize] += 1;
        }
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max - min <= 1 + npts / nparts / 2, "sizes {sizes:?}");
    }
}

#[test]
fn ggp_covers_all_vertices() {
    for n_side in 3..8 {
        for nparts in 1..6 {
            let mesh = Mesh::unit_square(n_side, n_side);
            let adj = mesh.dual_graph();
            let part = partition_ggp(&adj, nparts);
            let q = quality(&adj, &part, nparts);
            assert_eq!(q.nparts, nparts);
            let mut seen = vec![false; nparts];
            for &p in &part {
                seen[p as usize] = true;
            }
            assert!(seen.iter().all(|&s| s), "empty part");
        }
    }
}

#[test]
fn mesh_refinement_preserves_volume() {
    let mut rng = Rng::new(109);
    for nx in 1..5 {
        for ny in 1..5 {
            let lx = rng.range_f64(0.5, 3.0);
            let m = Mesh::rectangle(nx, ny, lx, 1.0);
            let r = uniform_refine(&m);
            assert!((r.total_volume() - m.total_volume()).abs() < 1e-10);
            assert_eq!(r.n_elements(), 4 * m.n_elements());
        }
    }
}

#[test]
fn csr_norms_consistent() {
    let mut rng = Rng::new(110);
    for _ in 0..48 {
        let a = csr_from(&triplets(&mut rng, 8, 30), 8);
        // ‖A‖₁ = ‖Aᵀ‖∞
        assert!((a.norm_1() - a.transpose().norm_inf()).abs() < 1e-12);
    }
}

#[test]
fn dense_lu_inverts_well_conditioned() {
    let mut rng = Rng::new(111);
    for _ in 0..48 {
        // Diagonally dominated 4×4.
        let n = 4;
        let vals = rng.vec_f64(16, -1.0, 1.0);
        let mut a = DMat::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = vals[i * n + j];
            }
            a[(i, i)] += 5.0;
        }
        let lu = dd_geneo::linalg::DenseLu::factor(&a).unwrap();
        let b = [1.0, -2.0, 3.0, 0.5];
        let x = lu.solve(&b);
        let mut ax = vec![0.0; n];
        a.gemv(1.0, &x, 0.0, &mut ax);
        assert!(vector::dist2(&ax, &b) < 1e-10);
    }
}

/// End-to-end property: for every small decomposition of a fixed mesh, the
/// partition of unity is exact and the distributed SpMV matches the global
/// one.
#[test]
fn decomposition_invariants() {
    use dd_geneo::core::{decompose, problem::presets};
    use dd_geneo::part::partition_mesh_rcb;
    for nparts in 2..7 {
        for delta in 1..3 {
            let mesh = Mesh::unit_square(10, 10);
            let part = partition_mesh_rcb(&mesh, nparts);
            let problem = presets::uniform_diffusion(1);
            let d = decompose(&mesh, &problem, &part, nparts, delta);
            assert!(d.pou_defect() < 1e-12);
            let x: Vec<f64> = (0..d.n_global)
                .map(|i| ((i * 29) % 17) as f64 - 8.0)
                .collect();
            let locals = d.to_locals(&x);
            let out = d.dist_spmv(&locals);
            let mut want = vec![0.0; d.n_global];
            d.a_global.spmv(&x, &mut want);
            for (s, o) in d.subdomains.iter().zip(&out) {
                let want_i = s.restrict(&want);
                assert!(vector::dist2(o, &want_i) < 1e-9 * vector::norm2(&want_i).max(1.0));
            }
        }
    }
}

/// Deterministic regression companion to the property tests: a couple of
/// adversarial shapes that once caused trouble.
#[test]
fn csr_empty_and_full_rows() {
    let mut b = CooBuilder::new(3, 3);
    b.push(1, 0, 1.0);
    b.push(1, 1, 2.0);
    b.push(1, 2, 3.0);
    let a = b.to_csr();
    assert_eq!(a.row(0).count(), 0);
    assert_eq!(a.row(1).count(), 3);
    assert_eq!(a.row(2).count(), 0);
    let mut y = vec![0.0; 3];
    a.spmv(&[1.0, 1.0, 1.0], &mut y);
    assert_eq!(y, vec![0.0, 6.0, 0.0]);
}

#[test]
fn identity_matrix_roundtrips() {
    let i5 = CsrMatrix::identity(5);
    assert_eq!(i5.spmm(&i5), i5);
    assert_eq!(i5.transpose(), i5);
    let f = SparseLdlt::factor(&i5, Ordering::MinDegree).unwrap();
    assert_eq!(
        f.solve(&[1.0, 2.0, 3.0, 4.0, 5.0]),
        vec![1.0, 2.0, 3.0, 4.0, 5.0]
    );
}
