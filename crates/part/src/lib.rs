//! # dd-part
//!
//! Graph partitioning — the workspace's replacement for METIS/SCOTCH, used
//! to split the dual graph of a mesh into `N` balanced, connected
//! subdomains with small interfaces (§2 of the paper: "partitioned into N
//! non-overlapping meshes using graph partitioners such as METIS or
//! SCOTCH").
//!
//! Two algorithms are provided:
//!
//! * [`partition_ggp`] — recursive bisection by greedy graph growing from a
//!   pseudo-peripheral seed, followed by a Kernighan–Lin style boundary
//!   refinement pass on every bisection;
//! * [`partition_rcb`] — recursive coordinate bisection on element
//!   centroids (geometric; very fast, good on structured meshes).
//!
//! Both return an element → part map. [`quality`] computes edge cut,
//! imbalance, and per-part connectivity for tests and benches.

use std::collections::VecDeque;

/// Edge cut, balance and connectivity statistics of a partition.
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionQuality {
    /// Number of dual-graph edges crossing between parts.
    pub edge_cut: usize,
    /// max part size / average part size.
    pub imbalance: f64,
    /// Number of parts that induce a connected subgraph.
    pub connected_parts: usize,
    /// Number of parts.
    pub nparts: usize,
}

/// Compute quality statistics for a partition of the graph `adj`.
pub fn quality(adj: &[Vec<u32>], part: &[u32], nparts: usize) -> PartitionQuality {
    let n = adj.len();
    assert_eq!(part.len(), n);
    let mut sizes = vec![0usize; nparts];
    for &p in part {
        sizes[p as usize] += 1;
    }
    let mut cut = 0usize;
    for (u, nbrs) in adj.iter().enumerate() {
        for &v in nbrs {
            if part[u] != part[v as usize] && u < v as usize {
                cut += 1;
            }
        }
    }
    let avg = n as f64 / nparts as f64;
    let imbalance = sizes.iter().copied().max().unwrap_or(0) as f64 / avg;
    // Connectivity per part via BFS.
    let mut connected = 0;
    let mut visited = vec![false; n];
    for p in 0..nparts as u32 {
        let members: Vec<usize> = (0..n).filter(|&u| part[u] == p).collect();
        if members.is_empty() {
            continue;
        }
        for &m in &members {
            visited[m] = false;
        }
        let mut queue = VecDeque::new();
        visited[members[0]] = true;
        queue.push_back(members[0]);
        let mut reached = 1;
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                let v = v as usize;
                if part[v] == p && !visited[v] {
                    visited[v] = true;
                    reached += 1;
                    queue.push_back(v);
                }
            }
        }
        if reached == members.len() {
            connected += 1;
        }
    }
    PartitionQuality {
        edge_cut: cut,
        imbalance,
        connected_parts: connected,
        nparts,
    }
}

/// Find a vertex far away from `seed` within the sub-graph `mask` (BFS
/// eccentricity heuristic).
fn far_vertex(adj: &[Vec<u32>], mask: &[bool], seed: usize) -> usize {
    let mut level = vec![usize::MAX; adj.len()];
    let mut queue = VecDeque::new();
    level[seed] = 0;
    queue.push_back(seed);
    let mut far = seed;
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            let v = v as usize;
            if mask[v] && level[v] == usize::MAX {
                level[v] = level[u] + 1;
                if level[v] > level[far] {
                    far = v;
                }
                queue.push_back(v);
            }
        }
    }
    far
}

/// Bisect the vertices flagged in `mask` into two sides of sizes
/// `target` and `len − target` by greedy graph growing, returning a side
/// flag for each vertex (true = side 0 / grown region).
fn grow_bisection(adj: &[Vec<u32>], mask: &[bool], members: &[usize], target: usize) -> Vec<bool> {
    let n = adj.len();
    let mut side = vec![false; n];
    if members.is_empty() || target == 0 {
        return side;
    }
    // Seed at a pseudo-peripheral vertex: far from a far vertex.
    let s0 = far_vertex(adj, mask, members[0]);
    let seed = far_vertex(adj, mask, s0);
    let mut in_region = vec![false; n];
    let mut queue = VecDeque::new();
    in_region[seed] = true;
    side[seed] = true;
    queue.push_back(seed);
    let mut grown = 1usize;
    while grown < target {
        let u = match queue.pop_front() {
            Some(u) => u,
            None => {
                // Disconnected remainder: jump to any unclaimed vertex.
                match members.iter().find(|&&m| !in_region[m]) {
                    Some(&m) => {
                        in_region[m] = true;
                        side[m] = true;
                        grown += 1;
                        queue.push_back(m);
                        continue;
                    }
                    None => break,
                }
            }
        };
        for &v in &adj[u] {
            let v = v as usize;
            if mask[v] && !in_region[v] && grown < target {
                in_region[v] = true;
                side[v] = true;
                grown += 1;
                queue.push_back(v);
            }
        }
    }
    side
}

/// Boundary Kernighan–Lin refinement on a bisection: move boundary vertices
/// with positive gain while keeping balance within a small slack of the
/// target size.
fn kl_refine(
    adj: &[Vec<u32>],
    mask: &[bool],
    members: &[usize],
    side: &mut [bool],
    target: usize,
    passes: usize,
) {
    let slack = (target / 20).max(1);
    for _ in 0..passes {
        let mut size0 = members.iter().filter(|&&m| side[m]).count();
        let mut moved_any = false;
        for &u in members {
            // gain = (external − internal) edges if u switched sides.
            let mut same = 0i64;
            let mut other = 0i64;
            for &v in &adj[u] {
                let v = v as usize;
                if !mask[v] {
                    continue;
                }
                if side[v] == side[u] {
                    same += 1;
                } else {
                    other += 1;
                }
            }
            let gain = other - same;
            if gain > 0 {
                let new_size0 = if side[u] { size0 - 1 } else { size0 + 1 };
                if new_size0 + slack >= target && new_size0 <= target + slack {
                    side[u] = !side[u];
                    size0 = new_size0;
                    moved_any = true;
                }
            }
        }
        if !moved_any {
            break;
        }
    }
}

/// Recursive-bisection greedy graph-growing partitioner with KL refinement.
///
/// `adj` is a symmetric adjacency list; returns `part[u] ∈ 0..nparts`.
pub fn partition_ggp(adj: &[Vec<u32>], nparts: usize) -> Vec<u32> {
    let n = adj.len();
    assert!(nparts >= 1);
    let mut part = vec![0u32; n];
    // Recursive splitting with proportional targets so that non-power-of-two
    // part counts stay balanced.
    fn recurse(
        adj: &[Vec<u32>],
        part: &mut [u32],
        members: Vec<usize>,
        first_part: u32,
        count: usize,
    ) {
        if count <= 1 {
            for &m in &members {
                part[m] = first_part;
            }
            return;
        }
        let left_count = count / 2;
        let target = members.len() * left_count / count;
        let mut mask = vec![false; adj.len()];
        for &m in &members {
            mask[m] = true;
        }
        let mut side = grow_bisection(adj, &mask, &members, target);
        kl_refine(adj, &mask, &members, &mut side, target, 4);
        let (left, right): (Vec<usize>, Vec<usize>) = members.into_iter().partition(|&m| side[m]);
        recurse(adj, part, left, first_part, left_count);
        recurse(
            adj,
            part,
            right,
            first_part + left_count as u32,
            count - left_count,
        );
    }
    recurse(adj, &mut part, (0..n).collect(), 0, nparts);
    part
}

/// Recursive coordinate bisection on points (`dim`-interleaved coordinates,
/// e.g. element centroids). Splits along the longest axis at the median.
pub fn partition_rcb(points: &[f64], dim: usize, nparts: usize) -> Vec<u32> {
    let n = points.len() / dim;
    assert_eq!(points.len(), n * dim);
    let mut part = vec![0u32; n];
    fn recurse(
        points: &[f64],
        dim: usize,
        part: &mut [u32],
        mut members: Vec<usize>,
        first_part: u32,
        count: usize,
    ) {
        if count <= 1 || members.len() <= 1 {
            for &m in &members {
                part[m] = first_part;
            }
            return;
        }
        // Longest axis of the bounding box.
        let mut lo = vec![f64::INFINITY; dim];
        let mut hi = vec![f64::NEG_INFINITY; dim];
        for &m in &members {
            for d in 0..dim {
                let x = points[m * dim + d];
                lo[d] = lo[d].min(x);
                hi[d] = hi[d].max(x);
            }
        }
        let axis = (0..dim)
            .max_by(|&a, &b| (hi[a] - lo[a]).partial_cmp(&(hi[b] - lo[b])).unwrap())
            .unwrap();
        let left_count = count / 2;
        let split = members.len() * left_count / count;
        members.sort_by(|&a, &b| {
            points[a * dim + axis]
                .partial_cmp(&points[b * dim + axis])
                .unwrap()
        });
        let right = members.split_off(split);
        recurse(points, dim, part, members, first_part, left_count);
        recurse(
            points,
            dim,
            part,
            right,
            first_part + left_count as u32,
            count - left_count,
        );
    }
    recurse(points, dim, &mut part, (0..n).collect(), 0, nparts);
    part
}

/// Partition a mesh's dual graph into `nparts` (convenience wrapper used by
/// examples and benches).
pub fn partition_mesh(mesh: &dd_mesh::Mesh, nparts: usize) -> Vec<u32> {
    partition_ggp(&mesh.dual_graph(), nparts)
}

/// Geometric partition of a mesh via element centroids.
pub fn partition_mesh_rcb(mesh: &dd_mesh::Mesh, nparts: usize) -> Vec<u32> {
    let dim = mesh.dim();
    let mut pts = Vec::with_capacity(mesh.n_elements() * dim);
    for e in 0..mesh.n_elements() {
        pts.extend(mesh.element_centroid(e));
    }
    partition_rcb(&pts, dim, nparts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_mesh::Mesh;

    fn grid_graph(nx: usize, ny: usize) -> Vec<Vec<u32>> {
        let id = |i: usize, j: usize| (i + j * nx) as u32;
        let mut adj = vec![Vec::new(); nx * ny];
        for j in 0..ny {
            for i in 0..nx {
                let u = id(i, j) as usize;
                if i + 1 < nx {
                    adj[u].push(id(i + 1, j));
                    adj[id(i + 1, j) as usize].push(u as u32);
                }
                if j + 1 < ny {
                    adj[u].push(id(i, j + 1));
                    adj[id(i, j + 1) as usize].push(u as u32);
                }
            }
        }
        adj
    }

    #[test]
    fn ggp_balanced_on_grid() {
        let adj = grid_graph(16, 16);
        for nparts in [2usize, 4, 7, 8] {
            let p = partition_ggp(&adj, nparts);
            let q = quality(&adj, &p, nparts);
            assert!(
                q.imbalance <= 1.15,
                "nparts={nparts}: imbalance {}",
                q.imbalance
            );
            let mut sizes = vec![0usize; nparts];
            for &pi in &p {
                sizes[pi as usize] += 1;
            }
            assert!(
                sizes.iter().all(|&s| s > 0),
                "empty part for nparts={nparts}"
            );
        }
    }

    #[test]
    fn ggp_cut_reasonable() {
        // A 2-way split of a 16×16 grid has a minimum cut of 16; greedy +
        // KL should stay within 2× of optimal.
        let adj = grid_graph(16, 16);
        let p = partition_ggp(&adj, 2);
        let q = quality(&adj, &p, 2);
        assert!(q.edge_cut <= 32, "cut {}", q.edge_cut);
    }

    #[test]
    fn rcb_balanced_and_connected_on_mesh() {
        let m = Mesh::unit_square(12, 12);
        let p = partition_mesh_rcb(&m, 8);
        let q = quality(&m.dual_graph(), &p, 8);
        assert!(q.imbalance <= 1.1, "imbalance {}", q.imbalance);
        assert_eq!(q.connected_parts, 8);
    }

    #[test]
    fn ggp_on_mesh_parts_mostly_connected() {
        let m = Mesh::unit_square(16, 16);
        let p = partition_mesh(&m, 16);
        let q = quality(&m.dual_graph(), &p, 16);
        assert!(q.connected_parts >= 14, "{q:?}");
        assert!(q.imbalance <= 1.2, "{q:?}");
    }

    #[test]
    fn rcb_3d() {
        let m = Mesh::unit_cube(6, 6, 6);
        let p = partition_mesh_rcb(&m, 8);
        let q = quality(&m.dual_graph(), &p, 8);
        assert!(q.imbalance <= 1.05, "{q:?}");
        assert_eq!(q.connected_parts, 8);
    }

    #[test]
    fn single_part_trivial() {
        let adj = grid_graph(4, 4);
        let p = partition_ggp(&adj, 1);
        assert!(p.iter().all(|&x| x == 0));
    }

    #[test]
    fn quality_counts_cut_edges_once() {
        // two vertices, one edge, split apart → cut = 1
        let adj = vec![vec![1u32], vec![0u32]];
        let q = quality(&adj, &[0, 1], 2);
        assert_eq!(q.edge_cut, 1);
        assert_eq!(q.connected_parts, 2);
    }
}
