//! Compact telemetry summaries and the perf-gate comparison.
//!
//! A full [`WorldTrace`] JSON runs to hundreds of thousands of lines; CI
//! keeps those as build artifacts only. What gets *committed* (under
//! `bench_results/baselines/`) is the compact summary defined here: every
//! phase's deterministic counters summed over ranks, plus scalar metrics
//! the benches insert (iteration counts, per-master factor sizes). The
//! `perf_gate` binary regenerates summaries and diffs them against the
//! committed baselines with per-metric tolerances, failing CI on
//! unexplained drift in communication volume, charged flops, or
//! convergence behavior.
//!
//! Everything here is hand-rolled (the workspace deliberately has no
//! external dependencies): a flat `BTreeMap<String, f64>` metric space, a
//! deterministic JSON writer, and a minimal recursive-descent JSON reader
//! that accepts exactly what the writer (and the hand-edited tolerance
//! file) produce.

use dd_comm::WorldTrace;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A named, flat bag of deterministic metrics. Phase counters use keys of
/// the form `phase/<name>/<counter>`; benches add scalars like
/// `iterations` or `coarse/p4/dist_nnz_per_master` beside them.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Summary {
    pub name: String,
    pub metrics: BTreeMap<String, f64>,
}

impl Summary {
    pub fn new(name: &str) -> Self {
        Summary {
            name: name.to_string(),
            metrics: BTreeMap::new(),
        }
    }

    /// Build from a trace: per-phase counters summed over ranks (the
    /// deterministic subset only — no virtual times).
    pub fn from_trace(name: &str, trace: &WorldTrace) -> Self {
        let mut s = Summary::new(name);
        s.metrics.insert("n_ranks".into(), trace.n_ranks() as f64);
        for phase in trace.phase_names() {
            let c = trace.phase_totals(&phase);
            for (k, v) in [
                ("sends", c.sends),
                ("send_bytes", c.send_bytes),
                ("recvs", c.recvs),
                ("recv_bytes", c.recv_bytes),
                ("collectives_eq", c.collectives_eq),
                ("collectives_v", c.collectives_v),
                ("collective_bytes", c.collective_bytes),
                ("collective_msgs", c.collective_msgs),
                ("retries", c.retries),
                ("flops", c.flops),
            ] {
                s.metrics.insert(format!("phase/{phase}/{k}"), v as f64);
            }
        }
        s
    }

    pub fn insert(&mut self, key: &str, value: f64) {
        self.metrics.insert(key.to_string(), value);
    }

    /// Deterministic JSON (sorted keys, one metric per line).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"version\": 1,\n");
        let _ = writeln!(s, "  \"name\": {:?},", self.name);
        s.push_str("  \"metrics\": {\n");
        let n = self.metrics.len();
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            let _ = write!(s, "    {:?}: {}", k, fmt_f64(*v));
            s.push_str(if i + 1 < n { ",\n" } else { "\n" });
        }
        s.push_str("  }\n}\n");
        s
    }

    /// Parse a summary previously written by [`Summary::to_json`].
    pub fn from_json(json: &str) -> Result<Self, String> {
        let v = parse_json(json)?;
        let obj = v.as_object().ok_or("summary: top level is not an object")?;
        let name = obj
            .field("name")
            .and_then(|n| n.as_str())
            .ok_or("summary: missing \"name\"")?
            .to_string();
        let metrics_obj = obj
            .field("metrics")
            .and_then(|m| m.as_object())
            .ok_or("summary: missing \"metrics\" object")?;
        let mut metrics = BTreeMap::new();
        for (k, v) in metrics_obj {
            let num = v
                .as_f64()
                .ok_or_else(|| format!("summary: metric {k:?} is not a number"))?;
            metrics.insert(k.clone(), num);
        }
        Ok(Summary { name, metrics })
    }
}

/// Format a metric so integral values round-trip exactly.
fn fmt_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

// ------------------------------------------------------------- tolerances

/// Relative tolerances for the perf gate. The committed file
/// `bench_results/baselines/tolerances.json` looks like
///
/// ```json
/// { "default": 0.0, "overrides": { "phase/solve/flops": 0.02 } }
/// ```
///
/// The default applies to every metric without an override; `0.0` demands
/// an exact match (the counters are deterministic, so that is the normal
/// setting). Override keys may end in `*` to match a prefix.
#[derive(Clone, Debug)]
pub struct Tolerances {
    pub default: f64,
    pub overrides: Vec<(String, f64)>,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            default: 0.0,
            overrides: Vec::new(),
        }
    }
}

impl Tolerances {
    pub fn from_json(json: &str) -> Result<Self, String> {
        let v = parse_json(json)?;
        let obj = v
            .as_object()
            .ok_or("tolerances: top level is not an object")?;
        let default = obj
            .field("default")
            .and_then(|d| d.as_f64())
            .ok_or("tolerances: missing numeric \"default\"")?;
        let mut overrides = Vec::new();
        if let Some(o) = obj.field("overrides") {
            let o = o
                .as_object()
                .ok_or("tolerances: \"overrides\" is not an object")?;
            for (k, v) in o {
                let tol = v
                    .as_f64()
                    .ok_or_else(|| format!("tolerances: override {k:?} is not a number"))?;
                overrides.push((k.clone(), tol));
            }
        }
        Ok(Tolerances { default, overrides })
    }

    /// Tolerance for `key`: the most specific matching override (longest
    /// pattern wins), else the default.
    pub fn for_key(&self, key: &str) -> f64 {
        let mut best: Option<(usize, f64)> = None;
        for (pat, tol) in &self.overrides {
            let matches = match pat.strip_suffix('*') {
                Some(prefix) => key.starts_with(prefix),
                None => key == pat,
            };
            if matches && best.is_none_or(|(len, _)| pat.len() > len) {
                best = Some((pat.len(), *tol));
            }
        }
        best.map_or(self.default, |(_, t)| t)
    }
}

// -------------------------------------------------------------- comparison

/// One metric's comparison against the baseline.
#[derive(Clone, Debug)]
pub struct Delta {
    pub key: String,
    /// `None` when the metric exists on only one side.
    pub baseline: Option<f64>,
    pub current: Option<f64>,
    /// Relative drift `|cur − base| / max(|base|, 1)`; infinite when a
    /// side is missing.
    pub rel: f64,
    pub tol: f64,
    pub ok: bool,
}

/// Compare `current` against `baseline` metric by metric. Metrics present
/// on only one side always fail (a new phase appearing, or one vanishing,
/// is exactly the drift the gate exists to catch).
pub fn compare(current: &Summary, baseline: &Summary, tol: &Tolerances) -> Vec<Delta> {
    let mut keys: Vec<&String> = current.metrics.keys().collect();
    for k in baseline.metrics.keys() {
        if !current.metrics.contains_key(k) {
            keys.push(k);
        }
    }
    keys.sort();
    keys.iter()
        .map(|&k| {
            let b = baseline.metrics.get(k).copied();
            let c = current.metrics.get(k).copied();
            let t = tol.for_key(k);
            let (rel, ok) = match (b, c) {
                (Some(b), Some(c)) => {
                    let rel = (c - b).abs() / b.abs().max(1.0);
                    (rel, rel <= t)
                }
                _ => (f64::INFINITY, false),
            };
            Delta {
                key: k.clone(),
                baseline: b,
                current: c,
                rel,
                tol: t,
                ok,
            }
        })
        .collect()
}

/// Render a markdown delta table for one summary: failing rows first, then
/// every row that drifted at all; identical metrics are summarized in one
/// trailing line. Suitable for `$GITHUB_STEP_SUMMARY`.
pub fn markdown_table(name: &str, deltas: &[Delta]) -> String {
    let mut s = String::new();
    let n_fail = deltas.iter().filter(|d| !d.ok).count();
    let _ = writeln!(
        s,
        "### `{name}` — {}",
        if n_fail == 0 {
            "OK".to_string()
        } else {
            format!("**{n_fail} metric(s) out of tolerance**")
        }
    );
    let changed: Vec<&Delta> = deltas.iter().filter(|d| !d.ok || d.rel > 0.0).collect();
    if !changed.is_empty() {
        s.push_str("| metric | baseline | current | drift | tolerance | |\n");
        s.push_str("|---|---:|---:|---:|---:|---|\n");
        for d in &changed {
            let fmt_opt = |v: Option<f64>| v.map_or("—".to_string(), fmt_f64);
            let _ = writeln!(
                s,
                "| `{}` | {} | {} | {} | {:.1}% | {} |",
                d.key,
                fmt_opt(d.baseline),
                fmt_opt(d.current),
                if d.rel.is_finite() {
                    format!("{:.2}%", d.rel * 100.0)
                } else {
                    "missing".to_string()
                },
                d.tol * 100.0,
                if d.ok { "ok" } else { "**FAIL**" },
            );
        }
    }
    let unchanged = deltas.len() - changed.len();
    let _ = writeln!(s, "\n{unchanged} metric(s) identical to baseline.");
    s
}

// ---------------------------------------------------------- minimal JSON

/// The JSON subset the summaries and tolerance files use.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }
}

/// Key lookup on the `&[(String, Json)]` object representation.
pub trait ObjExt {
    fn field(&self, key: &str) -> Option<&Json>;
}

impl ObjExt for [(String, Json)] {
    fn field(&self, key: &str) -> Option<&Json> {
        self.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Parse a JSON document (objects, arrays, strings with `\"`/`\\`/`\n`
/// escapes, numbers, booleans, null). Errors carry the byte offset.
pub fn parse_json(input: &str) -> Result<Json, String> {
    let b = input.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && (b[*pos] as char).is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let c = *b.get(*pos).ok_or("unterminated escape")?;
                out.push(match c {
                    b'"' => '"',
                    b'\\' => '\\',
                    b'/' => '/',
                    b'n' => '\n',
                    b't' => '\t',
                    b'r' => '\r',
                    other => return Err(format!("unsupported escape `\\{}`", other as char)),
                });
                *pos += 1;
            }
            c => {
                // Multi-byte UTF-8 sequences pass through untouched.
                let ch_len = utf8_len(c);
                out.push_str(
                    std::str::from_utf8(&b[*pos..*pos + ch_len]).map_err(|e| e.to_string())?,
                );
                *pos += ch_len;
            }
        }
    }
    Err("unterminated string".to_string())
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(items));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        items.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(items));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Summary {
        let mut s = Summary::new("bench");
        s.insert("iterations", 25.0);
        s.insert("phase/solve/flops", 123456.0);
        s.insert("phase/solve/send_bytes", 8192.0);
        s
    }

    #[test]
    fn summary_json_round_trips() {
        let s = sample();
        let back = Summary::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn tolerances_parse_and_match() {
        let t = Tolerances::from_json(
            r#"{ "default": 0.0,
                 "overrides": { "phase/solve/*": 0.1, "phase/solve/flops": 0.02 } }"#,
        )
        .unwrap();
        assert_eq!(t.for_key("iterations"), 0.0);
        assert_eq!(t.for_key("phase/solve/send_bytes"), 0.1);
        // Longest pattern wins.
        assert_eq!(t.for_key("phase/solve/flops"), 0.02);
    }

    #[test]
    fn identical_summaries_pass_exact_gate() {
        let deltas = compare(&sample(), &sample(), &Tolerances::default());
        assert!(deltas.iter().all(|d| d.ok));
        let md = markdown_table("bench", &deltas);
        assert!(md.contains("OK"));
    }

    #[test]
    fn drift_beyond_tolerance_fails() {
        let mut cur = sample();
        cur.insert("phase/solve/flops", 123456.0 * 1.5);
        let tol = Tolerances {
            default: 0.0,
            overrides: vec![("phase/solve/flops".to_string(), 0.1)],
        };
        let deltas = compare(&cur, &sample(), &tol);
        let bad: Vec<_> = deltas.iter().filter(|d| !d.ok).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].key, "phase/solve/flops");
        assert!(markdown_table("bench", &deltas).contains("FAIL"));
    }

    #[test]
    fn drift_within_tolerance_passes_and_is_reported() {
        let mut cur = sample();
        cur.insert("phase/solve/flops", 123456.0 * 1.05);
        let tol = Tolerances {
            default: 0.0,
            overrides: vec![("phase/solve/flops".to_string(), 0.1)],
        };
        let deltas = compare(&cur, &sample(), &tol);
        assert!(deltas.iter().all(|d| d.ok));
        // Drifted-but-tolerated rows still show in the table.
        assert!(markdown_table("bench", &deltas).contains("5.00%"));
    }

    #[test]
    fn missing_and_extra_metrics_fail() {
        let mut cur = sample();
        cur.metrics.remove("iterations");
        cur.insert("phase/new-phase/flops", 1.0);
        let deltas = compare(&cur, &sample(), &Tolerances::default());
        let bad: Vec<String> = deltas
            .iter()
            .filter(|d| !d.ok)
            .map(|d| d.key.clone())
            .collect();
        assert_eq!(bad, vec!["iterations", "phase/new-phase/flops"]);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("{ \"a\": }").is_err());
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("{} trailing").is_err());
    }

    #[test]
    fn parser_handles_nesting_and_escapes() {
        let v = parse_json(r#"{ "a": [1, -2.5e3, "x\n\"y\""], "b": { "c": true } }"#).unwrap();
        let o = v.as_object().unwrap();
        match o.field("a").unwrap() {
            Json::Arr(items) => {
                assert_eq!(items[1].as_f64(), Some(-2500.0));
                assert_eq!(items[2].as_str(), Some("x\n\"y\""));
            }
            _ => panic!("expected array"),
        }
    }
}
