//! Figure 10: weak scaling of the two-level method on heterogeneous
//! diffusion — constant dofs per subdomain, growing subdomain count.
//!
//! Paper setup: 2D P4 (~2.7e6 dofs/subdomain, up to 2.2e10 total) and 3D P2
//! (~2.8e5 dofs/subdomain, up to 2.3e9) on N = 256…8192. Scaled here to
//! laptop meshes with N = 2…32. Expected shape: per-phase virtual times
//! and iteration counts stay nearly constant, so efficiency
//! `eff(N) = (T₀ · dofs_N · N₀) / (T_N · dofs₀ · N)` stays near 90%+.

use dd_bench::{
    aggregate, masters_for, print_scaling_table, print_telemetry_table, run_workload_traced,
    write_summary, write_telemetry, Summary, Workload,
};
use dd_comm::WorldTrace;
use dd_core::{decompose, problem::presets, GeneoOpts, SpmdOpts};
use dd_krylov::GmresOpts;
use dd_mesh::Mesh;
use dd_part::partition_mesh_rcb;
use std::sync::Arc;

/// 2D: double the mesh area with N so dofs/subdomain stays constant.
fn weak_2d(order: usize, n: usize, base_cells: usize) -> Workload {
    // cells ∝ √N keeps elements per subdomain constant.
    let cells = (base_cells as f64 * (n as f64).sqrt()).round() as usize;
    let mesh = Mesh::unit_square(cells, cells);
    let part = partition_mesh_rcb(&mesh, n);
    let problem = presets::heterogeneous_diffusion(order);
    Workload {
        name: format!("2D-P{order}"),
        decomp: Arc::new(decompose(&mesh, &problem, &part, n, 1)),
        nparts: n,
    }
}

/// 3D: cells ∝ N^{1/3}.
fn weak_3d(order: usize, n: usize, base_cells: usize) -> Workload {
    let cells = (base_cells as f64 * (n as f64).cbrt()).round() as usize;
    let mesh = Mesh::unit_cube(cells, cells, cells);
    let part = partition_mesh_rcb(&mesh, n);
    let problem = presets::heterogeneous_diffusion(order);
    Workload {
        name: format!("3D-P{order}"),
        decomp: Arc::new(decompose(&mesh, &problem, &part, n, 1)),
        nparts: n,
    }
}

fn sweep(
    make: impl Fn(usize) -> Workload,
    ns: &[usize],
) -> (Vec<(dd_bench::ScalingRow, f64)>, Vec<WorldTrace>) {
    let mut traces = Vec::new();
    let rows = ns
        .iter()
        .map(|&n| {
            let w = make(n);
            // Halo factor: max local size over the ideal dofs/subdomain.
            // The paper's subdomains carry 280k–2.7M dofs, so their halo
            // factor is ≈1; at laptop scale it grows with N and dominates
            // the efficiency loss.
            let max_local = w
                .decomp
                .subdomains
                .iter()
                .map(|s| s.n_local())
                .max()
                .unwrap();
            let halo = max_local as f64 / (w.decomp.n_global as f64 / n as f64);
            let opts = SpmdOpts {
                geneo: GeneoOpts {
                    nev: 12,
                    ..Default::default()
                },
                n_masters: masters_for(n),
                gmres: GmresOpts {
                    tol: 1e-6,
                    max_iters: 400,
                    side: dd_krylov::Side::Left,
                    ..Default::default()
                },
                ..Default::default()
            };
            let (reports, trace) = run_workload_traced(&w, &opts);
            traces.push(trace);
            (aggregate(&reports, w.decomp.n_global), halo)
        })
        .collect();
    (rows, traces)
}

fn efficiency(rows: &[(dd_bench::ScalingRow, f64)]) -> Vec<f64> {
    let r0 = &rows[0].0;
    rows.iter()
        .map(|(r, _)| {
            (r0.total * r.dofs as f64 * r0.n as f64) / (r.total * r0.dofs as f64 * r.n as f64)
        })
        .collect()
}

fn main() {
    println!("# Figure 10 reproduction (weak scaling, virtual time)");
    let ns = [2usize, 4, 8, 16, 32];

    let (rows3d, traces3d) = sweep(|n| weak_3d(2, n, 6), &ns);
    let bare3d: Vec<_> = rows3d.iter().map(|(r, _)| r.clone()).collect();
    print_scaling_table(
        "3D-P2 heterogeneous diffusion (constant dofs/subdomain)",
        &bare3d,
    );

    let (rows2d, traces2d) = sweep(|n| weak_2d(4, n, 12), &ns);
    let bare2d: Vec<_> = rows2d.iter().map(|(r, _)| r.clone()).collect();
    print_scaling_table(
        "2D-P4 heterogeneous diffusion (constant dofs/subdomain)",
        &bare2d,
    );

    // Telemetry of the largest runs (messages/bytes per phase).
    print_telemetry_table("3D-P2, largest N", traces3d.last().unwrap());
    print_telemetry_table("2D-P4, largest N", traces2d.last().unwrap());
    for (stem, trace, row) in [
        (
            "fig10_diffusion_3d",
            traces3d.last().unwrap(),
            &rows3d.last().unwrap().0,
        ),
        (
            "fig10_diffusion_2d",
            traces2d.last().unwrap(),
            &rows2d.last().unwrap().0,
        ),
    ] {
        match write_telemetry(stem, trace) {
            Ok(p) => println!("telemetry: {}", p.display()),
            Err(e) => eprintln!("telemetry write failed: {e}"),
        }
        let mut summary = Summary::from_trace(stem, trace);
        summary.insert("iterations", row.iterations as f64);
        summary.insert("nnz_e_factor_per_master", row.nnz_e_factor as f64);
        match write_summary(stem, &summary) {
            Ok(p) => println!("summary: {}", p.display()),
            Err(e) => eprintln!("summary write failed: {e}"),
        }
    }

    println!(
        "\n== efficiency relative to N = {} (halo factor in parentheses) ==",
        ns[0]
    );
    let e3 = efficiency(&rows3d);
    let e2 = efficiency(&rows2d);
    println!("{:>5} {:>16} {:>16}", "N", "3D-P2", "2D-P4");
    for (i, &n) in ns.iter().enumerate() {
        println!(
            "{:>5} {:>9.0}% ({:.1}×) {:>9.0}% ({:.1}×)",
            n,
            100.0 * e3[i],
            rows3d[i].1,
            100.0 * e2[i],
            rows2d[i].1
        );
    }

    for (rows, eff, floor) in [(&rows3d, &e3, 0.05), (&rows2d, &e2, 0.3)] {
        assert!(
            rows.iter().all(|(r, _)| r.converged),
            "all runs must converge"
        );
        // Iterations stay bounded under weak scaling (the GenEO guarantee).
        // At laptop scale (≈1–3k dofs/subdomain vs the paper's 280k–2.7M)
        // the overlap halo is a large fraction of each subdomain, so some
        // fluctuation is expected; blow-ups are not.
        let it_max = rows.iter().map(|(r, _)| r.iterations).max().unwrap();
        let it_min = rows.iter().map(|(r, _)| r.iterations).min().unwrap();
        assert!(
            it_max <= 4 * it_min.max(5),
            "iterations grow with N: {it_min} → {it_max}"
        );
        let _ = floor;
        // Efficiency bound, laptop scale: the paper reaches ~90% with 280k+
        // dofs per subdomain; with tiny subdomains the halo and coarse
        // costs weigh disproportionately, so we require it not to collapse.
        // The efficiency floor is scale-dependent: in 3D the δ+1 halo
        // multiplies the max local problem several-fold at these sizes
        // (see the printed halo factors), which the paper's 280k+-dof
        // subdomains never experience.
        assert!(
            *eff.last().unwrap() > floor,
            "weak-scaling efficiency collapsed: {:.0}%",
            eff.last().unwrap() * 100.0
        );
    }
    println!("\n# SHAPE OK: bounded iterations, non-collapsing efficiency");
}
