//! Legacy-VTK export of meshes and nodal fields — the inspection path a
//! user of this library expects (the paper's figures 2, 6 and 9 are
//! exactly such visualizations: decompositions, geometries, coefficient
//! fields, solution fields).

use crate::Mesh;
use std::io::{self, Write};

/// A named piece of data attached to the mesh for export.
pub enum VtkField<'a> {
    /// One value per mesh vertex (P1 nodal field).
    PointScalars(&'a str, &'a [f64]),
    /// One value per element (e.g. subdomain id, coefficient value).
    CellScalars(&'a str, &'a [f64]),
}

/// Write the mesh and the given fields as a legacy VTK (ASCII) dataset.
///
/// 2D meshes are written with a zero z-coordinate; triangles use VTK cell
/// type 5, tetrahedra type 10.
pub fn write_vtk<W: Write>(out: &mut W, mesh: &Mesh, fields: &[VtkField<'_>]) -> io::Result<()> {
    let dim = mesh.dim();
    writeln!(out, "# vtk DataFile Version 3.0")?;
    writeln!(out, "dd-geneo export")?;
    writeln!(out, "ASCII")?;
    writeln!(out, "DATASET UNSTRUCTURED_GRID")?;
    writeln!(out, "POINTS {} double", mesh.n_vertices())?;
    for v in 0..mesh.n_vertices() {
        let p = mesh.vertex(v);
        match dim {
            2 => writeln!(out, "{} {} 0.0", p[0], p[1])?,
            _ => writeln!(out, "{} {} {}", p[0], p[1], p[2])?,
        }
    }
    let k = mesh.verts_per_elem();
    writeln!(
        out,
        "CELLS {} {}",
        mesh.n_elements(),
        mesh.n_elements() * (k + 1)
    )?;
    for e in 0..mesh.n_elements() {
        write!(out, "{k}")?;
        for &v in mesh.element(e) {
            write!(out, " {v}")?;
        }
        writeln!(out)?;
    }
    writeln!(out, "CELL_TYPES {}", mesh.n_elements())?;
    let cell_type = if dim == 2 { 5 } else { 10 };
    for _ in 0..mesh.n_elements() {
        writeln!(out, "{cell_type}")?;
    }
    // Fields, grouped by attachment.
    let mut wrote_point_header = false;
    for f in fields {
        if let VtkField::PointScalars(name, data) = f {
            assert_eq!(data.len(), mesh.n_vertices(), "point field length");
            if !wrote_point_header {
                writeln!(out, "POINT_DATA {}", mesh.n_vertices())?;
                wrote_point_header = true;
            }
            writeln!(out, "SCALARS {name} double 1")?;
            writeln!(out, "LOOKUP_TABLE default")?;
            for v in data.iter() {
                writeln!(out, "{v}")?;
            }
        }
    }
    let mut wrote_cell_header = false;
    for f in fields {
        if let VtkField::CellScalars(name, data) = f {
            assert_eq!(data.len(), mesh.n_elements(), "cell field length");
            if !wrote_cell_header {
                writeln!(out, "CELL_DATA {}", mesh.n_elements())?;
                wrote_cell_header = true;
            }
            writeln!(out, "SCALARS {name} double 1")?;
            writeln!(out, "LOOKUP_TABLE default")?;
            for v in data.iter() {
                writeln!(out, "{v}")?;
            }
        }
    }
    Ok(())
}

/// Convenience: export to a file path.
pub fn write_vtk_file(
    path: &std::path::Path,
    mesh: &Mesh,
    fields: &[VtkField<'_>],
) -> io::Result<()> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    write_vtk(&mut f, mesh, fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exports_2d_mesh_with_fields() {
        let m = Mesh::unit_square(2, 2);
        let pdata: Vec<f64> = (0..m.n_vertices()).map(|v| v as f64).collect();
        let cdata: Vec<f64> = (0..m.n_elements()).map(|e| (e % 3) as f64).collect();
        let mut buf = Vec::new();
        write_vtk(
            &mut buf,
            &m,
            &[
                VtkField::PointScalars("u", &pdata),
                VtkField::CellScalars("part", &cdata),
            ],
        )
        .unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("POINTS 9 double"));
        assert!(s.contains("CELLS 8 32"));
        assert!(s.contains("CELL_TYPES 8"));
        assert!(s.contains("SCALARS u double 1"));
        assert!(s.contains("SCALARS part double 1"));
        // every triangle line starts with its arity
        assert_eq!(s.matches("\n3 ").count(), 8);
    }

    #[test]
    fn exports_3d_mesh() {
        let m = Mesh::unit_cube(1, 1, 1);
        let mut buf = Vec::new();
        write_vtk(&mut buf, &m, &[]).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("POINTS 8 double"));
        assert!(s.contains("CELL_TYPES 6"));
        assert!(s.contains("\n10\n")); // tetra cell type
    }

    #[test]
    #[should_panic]
    fn wrong_field_length_panics() {
        let m = Mesh::unit_square(1, 1);
        let bad = vec![0.0; 3];
        let mut buf = Vec::new();
        let _ = write_vtk(&mut buf, &m, &[VtkField::PointScalars("u", &bad)]);
    }
}
