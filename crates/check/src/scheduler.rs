//! The virtual scheduler: a [`SyncBackend`] that owns the interleaving.
//!
//! Controlled threads hand their blocking to this backend and run one at a
//! time under a *run token*. Every point where more than one thread could
//! run next is a **decision**; the scheduler resolves it from a replay
//! script (DFS exploration), a seeded RNG (randomized search), or the
//! default lowest-thread-first rule, and records what it chose so the
//! explorer can branch off alternatives. One `VirtualScheduler` drives
//! exactly one schedule — the explorer builds a fresh one per run.
//!
//! # Decision points
//!
//! *Forced* — the running thread can no longer continue: it blocked on a
//! held mutex, parked in a timed condvar wait, or finished. *Voluntary* —
//! the running thread could continue but a preemption is modeled instead:
//! after a successful acquire, a release, or a notify. Voluntary switches
//! are bounded by [`Config::preemption_bound`] (CHESS-style iterative
//! context bounding): most concurrency bugs reproduce under a small number
//! of preemptions, and the bound keeps the schedule tree finite and
//! shallow.
//!
//! # Timed waits
//!
//! The runtime's blocking waits are tick loops (`wait_timeout(TICK)`
//! re-checking a predicate), so a parked thread may *always* legally wake
//! by timeout. The scheduler models that by keeping parked threads
//! schedulable — a "fruitless wake" — up to
//! [`Config::fruitless_budget`] consecutive wakes with no global progress
//! event (a notify or a thread exit) in between. The budget is sized above
//! the runtime's `STALL_TICKS` so the deadlock detector always gets enough
//! wakes to run its confirmation probes before the scheduler declares the
//! world stuck: a genuine deadlock therefore surfaces as the runtime's own
//! graceful `CommError::Deadlock` in every schedule, and the scheduler's
//! stuck-abort only fires if the detector *failed*.
//!
//! # Stuck schedules
//!
//! If no thread is schedulable and not all have finished, the world is
//! stuck (a deadlock the runtime did not catch). The scheduler switches to
//! abort mode: each remaining thread, as it is granted the token, panics
//! with [`STUCK_MSG`]; the panics unwind through the runtime (whose RAII
//! guards release locks and mark ranks dead), every thread exits, and the
//! explorer reports the schedule as a [`Stuck`](crate::FailureKind::Stuck)
//! failure with its replay script.

use dd_comm::sync::{ResourceId, SyncBackend};
use std::cell::Cell;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Panic message of threads killed by the stuck-abort. The explorer
/// recognizes schedules that died with this prefix as `Stuck`.
pub const STUCK_MSG: &str = "dd-check: stuck schedule (undetected deadlock)";

/// Panic message when a schedule wedges the scheduler itself (a bug in
/// dd-check, not in the checked program).
const WEDGED_MSG: &str = "dd-check: scheduler wedged (no token handoff)";

/// How long a controlled thread waits for the run token before concluding
/// the scheduler itself is broken. Real handoffs take microseconds.
const WEDGE_TIMEOUT: Duration = Duration::from_secs(30);

thread_local! {
    /// Ordinal of the controlled thread on this OS thread, set by
    /// `thread_start`. `None` on uncontrolled threads (the test driver).
    static TID: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Exploration parameters of one schedule run.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Maximum voluntary context switches per schedule.
    pub preemption_bound: usize,
    /// Consecutive timeout wakes a parked thread may take without any
    /// global progress event before it stops being schedulable. Must
    /// exceed the runtime's `STALL_TICKS` (6) so the deadlock detector can
    /// always confirm.
    pub fruitless_budget: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: 2,
            fruitless_budget: 8,
        }
    }
}

/// What a schedulable thread will do when granted the token, as far as the
/// scheduler can know. Used for independence-based pruning: two known
/// actions touching disjoint resources commute, so only one of their
/// orders needs exploring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NextAction {
    /// Thread is mid-run; its next operation is not visible.
    Unknown,
    /// Thread will operate on exactly these resources (a blocked acquire,
    /// or a condvar wake followed by a mutex re-acquire).
    Touch(Vec<ResourceId>),
}

impl NextAction {
    /// Known to commute: both actions are visible and resource-disjoint.
    pub fn independent(&self, other: &NextAction) -> bool {
        match (self, other) {
            (NextAction::Touch(a), NextAction::Touch(b)) => a.iter().all(|r| !b.contains(r)),
            _ => false,
        }
    }
}

/// One recorded decision: which threads were schedulable, what each would
/// do, and which was chosen. `chosen` indexes `enabled`.
#[derive(Debug, Clone)]
pub struct Decision {
    pub enabled: Vec<usize>,
    pub actions: Vec<NextAction>,
    pub chosen: usize,
    pub forced: bool,
}

/// How the scheduler resolves decisions beyond the replay script.
#[derive(Debug, Clone)]
pub enum Policy {
    /// Lowest-ordinal schedulable thread (the DFS default branch).
    First,
    /// Seeded LCG over the enabled set — randomized schedule search whose
    /// failing seeds replay exactly.
    Random(u64),
}

#[derive(Debug, Clone)]
enum TState {
    NotStarted,
    /// Has (or is waiting for) the token at a point where it can run.
    Runnable,
    /// Blocked acquiring this held mutex.
    BlockedLock(ResourceId),
    /// Parked in a timed condvar wait; wakes re-acquire `mutex`.
    Waiting {
        cv: ResourceId,
        mutex: ResourceId,
        notified: bool,
    },
    Finished,
}

struct State {
    threads: Vec<TState>,
    /// Consecutive fruitless timeout wakes per thread; reset globally on
    /// progress (notify / thread exit).
    fruitless: Vec<u32>,
    /// Threads that already panicked under abort mode (they now unwind and
    /// must not be re-killed).
    panicked: Vec<bool>,
    started: usize,
    /// Holder of the run token.
    current: Option<usize>,
    /// Mutex owner by resource id (`None` entries double for condvars).
    owner: Vec<Option<usize>>,
    preemptions: usize,
    abort: bool,
    script_pos: usize,
    policy: Policy,
    trace: Vec<Decision>,
}

/// A deterministic user-space scheduler implementing [`SyncBackend`].
pub struct VirtualScheduler {
    state: Mutex<State>,
    cv: Condvar,
    n: usize,
    script: Vec<usize>,
    cfg: Config,
}

impl VirtualScheduler {
    /// A scheduler for `n` controlled threads replaying `script` choices
    /// and resolving further decisions by `policy`.
    pub fn new(n: usize, cfg: Config, script: Vec<usize>, policy: Policy) -> Self {
        VirtualScheduler {
            state: Mutex::new(State {
                threads: vec![TState::NotStarted; n],
                fruitless: vec![0; n],
                panicked: vec![false; n],
                started: 0,
                current: None,
                owner: Vec::new(),
                preemptions: 0,
                abort: false,
                script_pos: 0,
                policy,
                trace: Vec::new(),
            }),
            cv: Condvar::new(),
            n,
            script,
            cfg,
        }
    }

    /// The decisions of the completed (or aborted) schedule.
    pub fn trace(&self) -> Vec<Decision> {
        self.lock().trace.clone()
    }

    /// Did this schedule hit the stuck-abort?
    pub fn was_stuck(&self) -> bool {
        self.lock().abort
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn me(&self) -> usize {
        TID.with(|t| t.get())
            .unwrap_or_else(|| panic!("dd-check: uncontrolled thread used a scheduled primitive"))
    }

    /// Is `t` schedulable, and what would it do? `None` when it cannot run.
    fn runnable(&self, st: &State, t: usize) -> Option<NextAction> {
        if st.abort {
            // Abort mode: everyone still alive is eligible — a thread that
            // has not yet panicked will be killed on grant without touching
            // its resource; one already unwinding blocks only on a held
            // mutex (released when its owner unwinds).
            return match &st.threads[t] {
                TState::Finished | TState::NotStarted => None,
                TState::BlockedLock(m) if st.panicked[t] => {
                    st.owner[*m].is_none().then(|| NextAction::Touch(vec![*m]))
                }
                _ => Some(NextAction::Unknown),
            };
        }
        match &st.threads[t] {
            TState::NotStarted | TState::Finished => None,
            TState::Runnable => Some(NextAction::Unknown),
            TState::BlockedLock(m) => st.owner[*m].is_none().then(|| NextAction::Touch(vec![*m])),
            TState::Waiting {
                cv,
                mutex,
                notified,
                ..
            } => {
                if *notified || st.fruitless[t] < self.cfg.fruitless_budget {
                    Some(NextAction::Touch(vec![*cv, *mutex]))
                } else {
                    None
                }
            }
        }
    }

    fn enabled(&self, st: &State, exclude: Option<usize>) -> (Vec<usize>, Vec<NextAction>) {
        let mut ids = Vec::new();
        let mut acts = Vec::new();
        for t in 0..self.n {
            if Some(t) == exclude {
                continue;
            }
            if let Some(a) = self.runnable(st, t) {
                ids.push(t);
                acts.push(a);
            }
        }
        (ids, acts)
    }

    /// Resolve a decision among `enabled`, recording it when non-trivial.
    fn choose(
        &self,
        st: &mut State,
        enabled: Vec<usize>,
        actions: Vec<NextAction>,
        forced: bool,
    ) -> usize {
        if enabled.len() == 1 {
            return enabled[0];
        }
        let idx = if st.script_pos < self.script.len() {
            // Replay: clamp defensively — a stale script on a changed
            // program should still terminate, not index out of bounds.
            self.script[st.script_pos].min(enabled.len() - 1)
        } else {
            match &mut st.policy {
                Policy::First => 0,
                Policy::Random(s) => {
                    // Deterministic splitmix-style step; top bits decide.
                    *s = s
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((*s >> 33) as usize) % enabled.len()
                }
            }
        };
        st.script_pos += 1;
        let chosen = enabled[idx];
        st.trace.push(Decision {
            enabled,
            actions,
            chosen: idx,
            forced,
        });
        chosen
    }

    /// Grant the token to `t`, applying its wake-side bookkeeping.
    fn grant(&self, st: &mut State, t: usize) {
        let woke = match &st.threads[t] {
            TState::Waiting { notified, .. } => Some(*notified),
            // A blocked thread's acquire loop re-takes the (now free)
            // mutex itself once it sees the token.
            TState::BlockedLock(_) => None,
            _ => {
                st.current = Some(t);
                return;
            }
        };
        match woke {
            Some(true) => st.fruitless[t] = 0,
            Some(false) => st.fruitless[t] += 1,
            None => {}
        }
        st.threads[t] = TState::Runnable;
        st.current = Some(t);
    }

    /// The running thread can no longer continue: hand the token elsewhere.
    fn forced_switch(&self, st: &mut State, me: usize) {
        let (enabled, actions) = self.enabled(st, Some(me));
        if enabled.is_empty() {
            if st
                .threads
                .iter()
                .enumerate()
                .all(|(t, s)| t == me || matches!(s, TState::Finished))
                && self.runnable(st, me).is_some()
            {
                // Everyone else is done and this thread can still move
                // (e.g. a timeout wake that will observe the deaths): the
                // token comes straight back.
                self.grant(st, me);
                self.cv.notify_all();
                return;
            }
            // Undetected deadlock: enter abort mode and re-derive the
            // eligible set under its (more permissive) rules — `me` itself
            // becomes a kill candidate too.
            st.abort = true;
            let (enabled, actions) = self.enabled(st, None);
            if enabled.is_empty() {
                // Only unwinding threads remain and all are blocked on each
                // other — cannot happen with RAII lock release, but do not
                // hang if it somehow does.
                panic!("{WEDGED_MSG}");
            }
            let t = self.choose(st, enabled, actions, true);
            self.grant(st, t);
        } else {
            let t = self.choose(st, enabled, actions, true);
            self.grant(st, t);
        }
        self.cv.notify_all();
    }

    /// A voluntary preemption opportunity for the running thread `me`:
    /// possibly hand the token to another thread and wait for it back.
    fn preemption_point<'a>(
        &'a self,
        mut st: MutexGuard<'a, State>,
        me: usize,
    ) -> MutexGuard<'a, State> {
        if st.abort || std::thread::panicking() || st.preemptions >= self.cfg.preemption_bound {
            return st;
        }
        let (mut enabled, mut actions) = self.enabled(&st, None);
        if enabled.len() <= 1 {
            return st;
        }
        // Keep "continue running" as the default (first) branch so the
        // no-preemption schedule is the DFS trunk.
        if let Some(pos) = enabled.iter().position(|&t| t == me) {
            enabled.swap(0, pos);
            actions.swap(0, pos);
        }
        let t = self.choose(&mut st, enabled, actions, false);
        if t == me {
            return st;
        }
        st.preemptions += 1;
        st.threads[me] = TState::Runnable;
        self.grant(&mut st, t);
        self.cv.notify_all();
        self.wait_for_token(st, me)
    }

    /// Block until this thread holds the token. Under abort mode, the
    /// grant kills the thread instead (unless it is already unwinding).
    fn wait_for_token<'a>(
        &'a self,
        mut st: MutexGuard<'a, State>,
        me: usize,
    ) -> MutexGuard<'a, State> {
        loop {
            if st.current == Some(me) {
                if st.abort && !st.panicked[me] && !std::thread::panicking() {
                    st.panicked[me] = true;
                    drop(st);
                    panic!("{STUCK_MSG}: thread {me} aborted");
                }
                return st;
            }
            let (g, timeout) = self
                .cv
                .wait_timeout(st, WEDGE_TIMEOUT)
                .unwrap_or_else(|e| e.into_inner());
            st = g;
            if timeout.timed_out() && st.current != Some(me) {
                panic!("{WEDGED_MSG}: thread {me} starved");
            }
        }
    }
}

impl SyncBackend for VirtualScheduler {
    fn is_virtual(&self) -> bool {
        true
    }

    fn register_mutex(&self) -> ResourceId {
        let mut st = self.lock();
        st.owner.push(None);
        st.owner.len() - 1
    }

    fn register_condvar(&self) -> ResourceId {
        // Condvars share the id space; their owner slot is simply unused.
        self.register_mutex()
    }

    fn acquire(&self, m: ResourceId) {
        let me = self.me();
        let mut st = self.lock();
        debug_assert_eq!(st.current, Some(me), "acquire without the token");
        if std::thread::panicking() {
            st.panicked[me] = true;
        }
        loop {
            if st.owner[m].is_none() {
                st.owner[m] = Some(me);
                let _st = self.preemption_point(st, me);
                return;
            }
            debug_assert_ne!(st.owner[m], Some(me), "dd-check: re-entrant lock");
            st.threads[me] = TState::BlockedLock(m);
            self.forced_switch(&mut st, me);
            st = self.wait_for_token(st, me);
        }
    }

    fn try_acquire(&self, m: ResourceId) -> bool {
        let me = self.me();
        let mut st = self.lock();
        debug_assert_eq!(st.current, Some(me), "try_acquire without the token");
        if st.owner[m].is_none() {
            st.owner[m] = Some(me);
            true
        } else {
            false
        }
    }

    fn release(&self, m: ResourceId) {
        let me = self.me();
        let mut st = self.lock();
        debug_assert_eq!(st.owner[m], Some(me), "release of a mutex not held");
        st.owner[m] = None;
        let _st = self.preemption_point(st, me);
    }

    fn wait_timeout(&self, cv: ResourceId, m: ResourceId) {
        let me = self.me();
        let mut st = self.lock();
        debug_assert_eq!(st.owner[m], Some(me), "wait on a mutex not held");
        if std::thread::panicking() {
            st.panicked[me] = true;
        }
        st.owner[m] = None;
        st.threads[me] = TState::Waiting {
            cv,
            mutex: m,
            notified: false,
        };
        self.forced_switch(&mut st, me);
        st = self.wait_for_token(st, me);
        // Woken (by notify or modeled timeout): re-acquire the mutex.
        loop {
            if st.owner[m].is_none() {
                st.owner[m] = Some(me);
                return;
            }
            st.threads[me] = TState::BlockedLock(m);
            self.forced_switch(&mut st, me);
            st = self.wait_for_token(st, me);
        }
    }

    fn notify_all(&self, cv: ResourceId) {
        let me = self.me();
        let mut st = self.lock();
        // Progress: wake flags for this condvar's waiters, and a global
        // fruitless reset — the system moved, so every parked thread gets
        // its full budget to observe the new state.
        for t in 0..self.n {
            if let TState::Waiting {
                cv: wcv, notified, ..
            } = &mut st.threads[t]
            {
                if *wcv == cv {
                    *notified = true;
                }
            }
        }
        for f in st.fruitless.iter_mut() {
            *f = 0;
        }
        let _st = self.preemption_point(st, me);
    }

    fn thread_start(&self, ordinal: usize) {
        assert!(ordinal < self.n, "dd-check: thread ordinal out of range");
        TID.with(|t| t.set(Some(ordinal)));
        let mut st = self.lock();
        assert!(
            matches!(st.threads[ordinal], TState::NotStarted),
            "dd-check: duplicate thread ordinal {ordinal}"
        );
        st.threads[ordinal] = TState::Runnable;
        st.started += 1;
        if st.started == self.n {
            // Start barrier complete: the first decision of the schedule.
            let (enabled, actions) = self.enabled(&st, None);
            let t = self.choose(&mut st, enabled, actions, true);
            self.grant(&mut st, t);
            self.cv.notify_all();
        }
        let st = self.wait_for_token(st, ordinal);
        drop(st);
    }

    fn thread_finish(&self) {
        let me = self.me();
        TID.with(|t| t.set(None));
        let mut st = self.lock();
        st.threads[me] = TState::Finished;
        debug_assert!(
            !st.owner.contains(&Some(me)),
            "dd-check: thread finished while holding a mutex"
        );
        // A thread's exit is observable progress (health probes see the
        // death): refresh every parked thread's wake budget.
        for f in st.fruitless.iter_mut() {
            *f = 0;
        }
        if st.threads.iter().all(|s| matches!(s, TState::Finished)) {
            st.current = None;
            self.cv.notify_all();
            return;
        }
        self.forced_switch(&mut st, me);
    }
}
