//! The solve server as a long-lived service: one resident setup (local
//! LDLᵀ factorizations, GenEO deflation basis, distributed coarse factor)
//! answering a stream of 32 right-hand sides — singles, multi-RHS batches,
//! and admissibly perturbed operators reusing the resident preconditioner.
//!
//! ```sh
//! cargo run --release --example solve_server
//! ```
//!
//! ## CI artifact mode
//!
//! With `DD_KILL_PHASE` set, one rank is killed mid-stream at that
//! failpoint; the survivors must shrink, adopt its subdomains, re-solve
//! exactly the incomplete responses, and finish the stream. The example
//! writes a machine-readable JSON artifact with per-request latencies and
//! exits non-zero when the gate fails:
//!
//! ```sh
//! DD_KILL_PHASE=solve-iteration-1 DD_SEED=9 DD_OUT=report.json \
//!     cargo run --release --example solve_server
//! ```
//!
//! * `DD_KILL_PHASE` — failpoint label to kill at (`ras`,
//!   `solve-iteration-1`, `post-assembly`, …);
//! * `DD_KILL_RANK` — the victim (default 1);
//! * `DD_SEED` — fault-plan seed, also arming 20% message delays so
//!   different seeds exercise different timing (default 9);
//! * `DD_OUT` — artifact path (default: stdout).

use dd_geneo::comm::{CostModel, FaultPlan, World};
use dd_geneo::core::problem::presets;
use dd_geneo::core::{decompose, CoarseCache, Decomposition, GeneoOpts, SpmdError, SpmdOpts};
use dd_geneo::krylov::GmresOpts;
use dd_geneo::mesh::Mesh;
use dd_geneo::part::partition_mesh_rcb;
use dd_geneo::serve::{
    try_serve, Payload, ResponseStore, ServeOpts, ServeReport, StreamCfg, Workload,
};
use std::sync::Arc;

/// The smoke row's contract: exactly this many right-hand sides.
const N_RHS: usize = 32;

fn opts() -> ServeOpts {
    let mut o = ServeOpts {
        spmd: SpmdOpts {
            geneo: GeneoOpts {
                nev: 5,
                ..Default::default()
            },
            gmres: GmresOpts {
                tol: 1e-8,
                max_iters: 500,
                ..Default::default()
            },
            ..Default::default()
        },
        ..Default::default()
    };
    o.spmd.recovery.enabled = true;
    o.spmd.recovery.checkpoint_interval = 1;
    o
}

/// Seeded stream trimmed to exactly [`N_RHS`] right-hand sides.
fn stream_of(seed: u64, n_global: usize) -> Workload {
    let cfg = StreamCfg {
        n_requests: 2 * N_RHS,
        mean_interarrival: 1e-3,
        batch_fraction: 0.3,
        max_rhs_per_request: 3,
        perturb_fraction: 0.3,
        theta_max: 0.04,
    };
    let full = Workload::generate(seed, n_global, &cfg);
    let mut requests = Vec::new();
    let mut total = 0usize;
    for mut r in full.requests {
        if total == N_RHS {
            break;
        }
        if let Payload::Batch(b) = &mut r.payload {
            b.truncate(N_RHS - total);
            if b.len() == 1 {
                r.payload = Payload::Rhs(b.remove(0));
            }
        }
        total += r.n_rhs();
        r.id = requests.len();
        requests.push(r);
    }
    assert_eq!(total, N_RHS);
    Workload::from_requests(requests)
}

type ServeResult = Result<ServeReport, SpmdError>;

fn run(
    decomp: &Arc<Decomposition>,
    nranks: usize,
    plan: FaultPlan,
    w: &Workload,
) -> Vec<ServeResult> {
    let d = Arc::clone(decomp);
    let o = opts();
    let w = w.clone();
    let cache = Arc::new(CoarseCache::new());
    let store = Arc::new(ResponseStore::new());
    World::run_with_faults(nranks, CostModel::default(), plan, move |comm| {
        try_serve(&d, comm, &o, &w, &cache, &store)
    })
}

fn print_report(report: &ServeReport) {
    println!(
        "{:>4} {:>4} {:>9} {:>10} {:>10} {:>6} {:>7}",
        "req", "rhs", "theta", "arrival", "latency", "#it.", "reused"
    );
    for r in &report.responses {
        println!(
            "{:>4} {:>4} {:>9.4} {:>10.4} {:>10.4} {:>6} {:>7}",
            r.req, r.rhs, r.theta, r.arrival, r.latency, r.iterations, r.reused
        );
    }
    println!(
        "\n{} responses | {} solves | {} reused applies | {} re-setups | \
         {} recoveries | setup {:.4}s | p50 {:.4}s | p99 {:.4}s",
        report.responses.len(),
        report.solves,
        report.reused_applies,
        report.resetups,
        report.recoveries,
        report.t_setup,
        report.latency_percentile(50.0),
        report.latency_percentile(99.0),
    );
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Hand-rolled JSON artifact (the workspace has no serde): stream-level
/// counters plus every response's latency, iteration count, and reuse flag.
fn artifact_json(phase: &str, seed: u64, victim: usize, report: &ServeReport) -> String {
    let responses: Vec<String> = report
        .responses
        .iter()
        .map(|r| {
            format!(
                "{{\"req\":{},\"rhs\":{},\"theta\":{:e},\"arrival\":{:e},\
                 \"completed\":{:e},\"latency\":{:e},\"iterations\":{},\
                 \"converged\":{},\"reused\":{}}}",
                r.req,
                r.rhs,
                r.theta,
                r.arrival,
                r.completed,
                r.latency,
                r.iterations,
                r.converged,
                r.reused,
            )
        })
        .collect();
    format!(
        "{{\"kill_phase\":\"{}\",\"seed\":{seed},\"victim\":{victim},\
         \"n_requests\":{},\"n_rhs\":{},\"solves\":{},\"reused_applies\":{},\
         \"resetups\":{},\"recoveries\":{},\"t_setup\":{:e},\
         \"latency_p50\":{:e},\"latency_p99\":{:e},\"responses\":[{}]}}\n",
        json_escape(phase),
        report.n_requests,
        report.responses.len(),
        report.solves,
        report.reused_applies,
        report.resetups,
        report.recoveries,
        report.t_setup,
        report.latency_percentile(50.0),
        report.latency_percentile(99.0),
        responses.join(",")
    )
}

/// CI artifact mode: kill one rank mid-stream, JSON out, non-zero exit
/// when the survivors fail to answer the whole stream.
fn artifact_mode(decomp: &Arc<Decomposition>, phase: &str) -> ! {
    let env_num = |k: &str, d: u64| {
        std::env::var(k)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(d)
    };
    let seed = env_num("DD_SEED", 9);
    let victim = env_num("DD_KILL_RANK", 1) as usize;
    let w = stream_of(seed, decomp.n_global);
    let plan = FaultPlan::new(seed)
        .with_kill(victim, phase)
        .with_delays(0.2, 2e-4);
    let results = run(decomp, 4, plan, &w);

    let victim_killed = matches!(
        results.get(victim),
        Some(Err(SpmdError::Killed { rank, .. })) if *rank == victim
    );
    let survivor = results
        .iter()
        .enumerate()
        .filter(|(r, _)| *r != victim)
        .find_map(|(_, res)| res.as_ref().ok());
    let (json, stream_ok) = match survivor {
        Some(report) => {
            let ok = report.responses.len() == N_RHS
                && report.responses.iter().all(|r| r.converged)
                && report.recoveries >= 1;
            (artifact_json(phase, seed, victim, report), ok)
        }
        None => (
            format!(
                "{{\"kill_phase\":\"{}\",\"seed\":{seed},\"victim\":{victim},\
                 \"error\":\"no surviving rank produced a report\"}}\n",
                json_escape(phase)
            ),
            false,
        ),
    };
    match std::env::var("DD_OUT") {
        Ok(path) => std::fs::write(&path, &json).expect("write DD_OUT artifact"),
        Err(_) => print!("{json}"),
    }
    if victim_killed && stream_ok {
        eprintln!("serve smoke gate passed: {N_RHS} RHS answered through the kill");
        std::process::exit(0);
    }
    eprintln!("serve smoke gate FAILED: victim_killed {victim_killed}, stream_ok {stream_ok}");
    std::process::exit(1);
}

fn main() {
    let nsubs = 6;
    let mesh = Mesh::unit_square(16, 16);
    let part = partition_mesh_rcb(&mesh, nsubs);
    let problem = presets::heterogeneous_diffusion(1);
    let decomp = Arc::new(decompose(&mesh, &problem, &part, nsubs, 1));

    if let Ok(phase) = std::env::var("DD_KILL_PHASE") {
        if !phase.is_empty() {
            artifact_mode(&decomp, &phase);
        }
    }

    println!("=== fault-free: 4 ranks serving 6 subdomains, {N_RHS} RHS ===\n");
    let w = stream_of(9, decomp.n_global);
    let results = run(&decomp, 4, FaultPlan::default(), &w);
    let report = results[0].as_ref().expect("fault-free serve must succeed");
    print_report(report);

    println!("\n=== rank 1 killed at solve-iteration-1, stream continues ===\n");
    let plan = FaultPlan::new(9).with_kill(1, "solve-iteration-1");
    let results = run(&decomp, 4, plan, &w);
    for (rank, res) in results.iter().enumerate() {
        match res {
            Ok(r) => println!(
                "rank {rank}: {} responses, {} recoveries",
                r.responses.len(),
                r.recoveries
            ),
            Err(e) => println!("rank {rank}: {e}"),
        }
    }
    let survivor = results
        .iter()
        .skip(2)
        .find_map(|r| r.as_ref().ok())
        .expect("a survivor must finish the stream");
    print_report(survivor);
}
