//! §3.5 differential test: pipelined and fused-pipelined GMRES are
//! mathematically equivalent to classical GMRES — same Krylov space, same
//! minimization — so at a fixed iteration count their iterates must agree
//! to floating-point drift. The paper's Figure 12 problem (2D P2
//! heterogeneous diffusion, 8 subdomains) is the reference workload.

use dd_comm::{CostModel, World};
use dd_core::{
    decompose, problem::presets, run_spmd, Decomposition, GeneoOpts, SolverKind, SpmdOpts,
};
use dd_krylov::{GmresOpts, Side};
use dd_mesh::Mesh;
use dd_part::partition_mesh_rcb;
use std::sync::Arc;

const N: usize = 8;

/// The fig12 workload: `unit_square(28, 28)`, P2, 8 subdomains, δ = 1.
fn fig12_decomp() -> Arc<Decomposition> {
    let mesh = Mesh::unit_square(28, 28);
    let part = partition_mesh_rcb(&mesh, N);
    let problem = presets::heterogeneous_diffusion(2);
    Arc::new(decompose(&mesh, &problem, &part, N, 1))
}

fn opts(kind: SolverKind, tol: f64, max_iters: usize) -> SpmdOpts {
    SpmdOpts {
        solver: kind,
        geneo: GeneoOpts {
            nev: 6,
            ..Default::default()
        },
        n_masters: 2,
        gmres: GmresOpts {
            tol,
            max_iters,
            side: Side::Left,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Run one solver kind and return the global iterate (per-rank locals
/// concatenated in rank order) plus rank 0's residual history.
fn run(decomp: &Arc<Decomposition>, o: &SpmdOpts) -> (Vec<f64>, Vec<f64>, usize, bool) {
    let d = Arc::clone(decomp);
    let o = o.clone();
    let sols = World::run(N, CostModel::default(), move |comm| run_spmd(&d, comm, &o));
    let x: Vec<f64> = sols
        .iter()
        .flat_map(|s| s.x_local.iter().copied())
        .collect();
    let r0 = &sols[0].report;
    (x, r0.history.clone(), r0.iterations, r0.converged)
}

fn rel_inf(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let scale = a.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-300);
    a.iter()
        .zip(b)
        .fold(0.0f64, |m, (x, y)| m.max((x - y).abs()))
        / scale
}

/// At fixed iteration counts the three solvers produce the same iterate to
/// 1e-10 — pipelining reorganizes the reductions, not the mathematics.
#[test]
fn iterates_agree_to_1e10_at_fixed_iteration_counts() {
    let decomp = fig12_decomp();
    // This workload converges in ~11 iterations, and once the residual
    // falls below ~1e-7 (k ≥ 8) the least-squares update is degenerate
    // enough that recurrence drift crosses 1e-10 — so compare while the
    // solve is still in progress.
    for k in [2usize, 4, 6] {
        let (x_ref, h_ref, it_ref, _) = run(&decomp, &opts(SolverKind::Classical, 0.0, k));
        assert_eq!(it_ref, k);
        for kind in [SolverKind::Pipelined, SolverKind::Fused] {
            let (x, h, it, _) = run(&decomp, &opts(kind, 0.0, k));
            assert_eq!(it, k, "{kind:?} must run exactly {k} iterations");
            let d = rel_inf(&x_ref, &x);
            assert!(
                d <= 1e-10,
                "{kind:?} iterate diverged from classical GMRES after {k} \
                 iterations: rel err {d:.3e}"
            );
            // Residual histories track each other too. The pipelined
            // variants estimate the norm through recurrences instead of
            // recomputing it, so drift relative to the *current* residual
            // grows as it shrinks; normalize by the initial residual.
            let scale = h_ref.first().copied().unwrap_or(1.0).max(1e-300);
            for (i, (a, b)) in h_ref.iter().zip(&h).enumerate() {
                let dr = (a - b).abs() / scale;
                assert!(
                    dr <= 1e-8,
                    "{kind:?} residual history drifts at iteration {i}: \
                     {a:.6e} vs {b:.6e}"
                );
            }
        }
    }
}

/// Run to convergence: all three stop within a couple of iterations of
/// each other at the same tolerance, and all produce a solution whose
/// iterate matches classical GMRES at the shared iteration count.
#[test]
fn converged_runs_agree_on_iteration_counts() {
    let decomp = fig12_decomp();
    let (_, _, it_ref, conv_ref) = run(&decomp, &opts(SolverKind::Classical, 1e-6, 300));
    assert!(conv_ref);
    for kind in [SolverKind::Pipelined, SolverKind::Fused] {
        let (_, _, it, conv) = run(&decomp, &opts(kind, 1e-6, 300));
        assert!(conv, "{kind:?} failed to converge");
        assert!(
            it.abs_diff(it_ref) <= 2,
            "{kind:?} iteration count {it} far from classical {it_ref}"
        );
    }
}
