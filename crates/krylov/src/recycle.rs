//! Krylov-subspace recycling across a stream of related solves.
//!
//! A resident solve server (`dd-serve`) answers many right-hand sides with
//! the same operator (or a boundedly perturbed one). Each completed solve
//! leaves behind a useful by-product: the solution increment `x − x₀` is a
//! direction the operator has already been applied to. [`RecycleSpace`]
//! banks a small window of such directions together with their images
//! `A·u`, and projects the next solve's initial guess onto the banked
//! space by a residual-minimizing (Petrov–Galerkin) correction
//!
//! ```text
//! x₀ ← x₀ + U c,   c = argmin ‖b − A(x₀ + U c)‖ = (AU)ᵀ(AU) \ (AU)ᵀ r₀
//! ```
//!
//! so GMRES starts from the best combination of previously explored
//! directions instead of from scratch. This never hurts the *answer* (the
//! solve still converges to the same tolerance against the same system)
//! and typically removes the iterations that would re-discover the shared
//! low-frequency content of related right-hand sides.
//!
//! Everything here is rank-local data plus [`InnerProduct`] reductions, so
//! in an SPMD run every rank derives the identical projection
//! deterministically — the small normal-equations solve happens redundantly
//! on each rank from globally reduced scalars.
//!
//! [`try_gmres_multi`] is the batch driver built on top: solve a slice of
//! right-hand sides sequentially, threading the recycle space through so
//! later members of the batch benefit from earlier ones. With recycling
//! disabled (`None`) the batch is bit-identical to solving each right-hand
//! side alone — the batcher invariants of `dd-serve` rely on that.

use crate::checkpoint::CheckpointCfg;
use crate::gmres::{try_gmres, GmresOpts, SolveResult};
use crate::operator::{InnerProduct, Operator, Preconditioner, SolveInterrupt};

/// A bounded bank of `(u, A·u)` direction pairs harvested from completed
/// solves, oldest evicted first.
pub struct RecycleSpace {
    max_dim: usize,
    u: Vec<Vec<f64>>,
    au: Vec<Vec<f64>>,
}

impl RecycleSpace {
    /// An empty space keeping at most `max_dim` directions (`0` disables
    /// recycling — every call becomes a no-op).
    pub fn new(max_dim: usize) -> Self {
        RecycleSpace {
            max_dim,
            u: Vec::new(),
            au: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.u.len()
    }

    pub fn is_empty(&self) -> bool {
        self.u.is_empty()
    }

    /// Drop every banked direction (call after the operator changes more
    /// than the admissibility policy tolerates — stale `A·u` images would
    /// otherwise poison the projection).
    pub fn clear(&mut self) {
        self.u.clear();
        self.au.clear();
    }

    /// Residual-minimizing correction of `x0` over the banked space:
    /// `x0 += U c` with `c = (AU)ᵀ(AU) \ (AU)ᵀ (b − A x0)`. Returns `true`
    /// if a correction was applied. The normal-equations system is tiny
    /// (`len() ≤ max_dim`) and solved redundantly on every rank from the
    /// globally reduced Gram entries, so all ranks stay in lockstep.
    pub fn try_improve_guess<O, P>(
        &self,
        op: &O,
        ip: &P,
        b: &[f64],
        x0: &mut [f64],
    ) -> Result<bool, SolveInterrupt>
    where
        O: Operator + ?Sized,
        P: InnerProduct + ?Sized,
    {
        let k = self.u.len();
        if k == 0 {
            return Ok(false);
        }
        let mut r = vec![0.0; b.len()];
        op.try_apply(x0, &mut r)?;
        for (ri, (&bi, _)) in r.iter_mut().zip(b.iter().zip(x0.iter())) {
            *ri = bi - *ri;
        }
        // One batched reduction: the k×k Gram matrix of AU plus the k
        // projections ⟨A·u_i, r⟩.
        let mut locals = Vec::with_capacity(k * k + k);
        for i in 0..k {
            for j in 0..k {
                locals.push(ip.local_dot(&self.au[i], &self.au[j]));
            }
        }
        for aui in &self.au {
            locals.push(ip.local_dot(aui, &r));
        }
        let reduced = ip.try_reduce(locals)?;
        let (gram, rhs) = reduced.split_at(k * k);
        let c = match solve_spd_small(k, gram, rhs) {
            Some(c) => c,
            // Numerically degenerate bank (e.g. duplicate right-hand
            // sides): skip the correction rather than inject noise.
            None => return Ok(false),
        };
        for (i, ci) in c.iter().enumerate() {
            for (x, &ui) in x0.iter_mut().zip(&self.u[i]) {
                *x += ci * ui;
            }
        }
        Ok(true)
    }

    /// Bank the increment `x − x0_before` of a completed solve as a new
    /// direction (skipped when the increment is numerically zero). `x0`
    /// must be the guess the solve *started* from — i.e. captured before
    /// [`RecycleSpace::try_improve_guess`]'s correction is overwritten by
    /// the solve.
    pub fn try_harvest<O, P>(
        &mut self,
        op: &O,
        ip: &P,
        x0: &[f64],
        x: &[f64],
    ) -> Result<(), SolveInterrupt>
    where
        O: Operator + ?Sized,
        P: InnerProduct + ?Sized,
    {
        if self.max_dim == 0 {
            return Ok(());
        }
        let mut u: Vec<f64> = x.iter().zip(x0).map(|(a, b)| a - b).collect();
        let norm = ip.try_norm(&u)?;
        if !(norm.is_finite() && norm > 0.0) {
            return Ok(());
        }
        for v in &mut u {
            *v /= norm;
        }
        let mut au = vec![0.0; u.len()];
        op.try_apply(&u, &mut au)?;
        if self.u.len() == self.max_dim {
            self.u.remove(0);
            self.au.remove(0);
        }
        self.u.push(u);
        self.au.push(au);
        Ok(())
    }
}

/// Solve the k×k SPD system `G c = rhs` (row-major `gram`) by unpivoted
/// Cholesky; `None` when `G` is not numerically positive definite.
fn solve_spd_small(k: usize, gram: &[f64], rhs: &[f64]) -> Option<Vec<f64>> {
    let mut l = gram.to_vec();
    // Scale guard: diagonal entries must dominate representable noise.
    let dmax = (0..k).map(|i| gram[i * k + i]).fold(0.0f64, f64::max);
    if !(dmax.is_finite() && dmax > 0.0) {
        return None;
    }
    for j in 0..k {
        let mut d = l[j * k + j];
        for p in 0..j {
            d -= l[j * k + p] * l[j * k + p];
        }
        if !(d.is_finite() && d > dmax * 1e-14) {
            return None;
        }
        let d = d.sqrt();
        l[j * k + j] = d;
        for i in (j + 1)..k {
            let mut v = l[i * k + j];
            for p in 0..j {
                v -= l[i * k + p] * l[j * k + p];
            }
            l[i * k + j] = v / d;
        }
    }
    // Forward then backward substitution with Lᵀ.
    let mut y = rhs.to_vec();
    for i in 0..k {
        for p in 0..i {
            y[i] -= l[i * k + p] * y[p];
        }
        y[i] /= l[i * k + i];
    }
    for i in (0..k).rev() {
        for p in (i + 1)..k {
            y[i] -= l[p * k + i] * y[p];
        }
        y[i] /= l[i * k + i];
    }
    Some(y)
}

/// Solve a batch of right-hand sides against one operator/preconditioner,
/// sequentially and in order, optionally threading a [`RecycleSpace`]
/// through so each solve's harvested direction improves the next one's
/// initial guess.
///
/// Semantics the callers (the `dd-serve` batcher and its property tests)
/// rely on:
///
/// * responses come back in input order, one [`SolveResult`] per RHS;
/// * with `recycle = None` each solve is exactly the solve
///   [`try_gmres`] would perform alone — batching is then a pure
///   amortization of setup, with bit-identical iterates;
/// * recycled solves converge against the *caller's* residual anchor
///   `tol · ‖b − A x₀‖` (with the original `x₀`, not the improved
///   guess). GMRES itself anchors its relative criterion to whatever
///   guess it starts from, so without this rescaling an improved guess
///   would proportionally tighten the target and save nothing; with it,
///   recycling can only shed iterations, never loosen accuracy.
///
/// Per-solve checkpointing is deliberately not threaded through: a batch
/// member that dies is re-solved from scratch by the caller's recovery
/// loop (see `dd-serve`), which keeps the checkpoint-store contract
/// one-solve-at-a-time.
pub fn try_gmres_multi<O, M, P>(
    op: &O,
    precond: &M,
    ip: &P,
    rhs_batch: &[Vec<f64>],
    x0: &[f64],
    opts: &GmresOpts,
    mut recycle: Option<&mut RecycleSpace>,
) -> Result<Vec<SolveResult>, SolveInterrupt>
where
    O: Operator + ?Sized,
    M: Preconditioner + ?Sized,
    P: InnerProduct + ?Sized,
{
    let mut results = Vec::with_capacity(rhs_batch.len());
    for b in rhs_batch {
        let mut guess = x0.to_vec();
        let mut eff = opts.clone();
        if let Some(space) = recycle.as_deref_mut() {
            if !space.is_empty() {
                let anchor = residual_norm(op, ip, b, &guess)?;
                if space.try_improve_guess(op, ip, b, &mut guess)? {
                    let improved = residual_norm(op, ip, b, &guess)?;
                    // Keep the absolute target tol·anchor: GMRES will aim
                    // for eff.tol·improved = opts.tol·anchor. The
                    // projection minimizes the residual, so improved ≤
                    // anchor up to roundoff; the max() guards roundoff.
                    if improved > 0.0 && anchor.is_finite() && anchor > 0.0 {
                        eff.tol = (opts.tol * anchor / improved).max(opts.tol);
                    }
                }
            }
        }
        let ckpt: Option<&CheckpointCfg<'_>> = None;
        let result = try_gmres(op, precond, ip, b, &guess, &eff, ckpt)?;
        if let Some(space) = recycle.as_deref_mut() {
            space.try_harvest(op, ip, &guess, &result.x)?;
        }
        results.push(result);
    }
    Ok(results)
}

/// `‖b − A x‖` under the distributed inner product.
fn residual_norm<O, P>(op: &O, ip: &P, b: &[f64], x: &[f64]) -> Result<f64, SolveInterrupt>
where
    O: Operator + ?Sized,
    P: InnerProduct + ?Sized,
{
    let mut r = vec![0.0; b.len()];
    op.try_apply(x, &mut r)?;
    for (ri, &bi) in r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
    ip.try_norm(&r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::SeqDot;
    use dd_linalg::CooBuilder;

    /// 1D Laplacian with Dirichlet ends, n interior points.
    fn laplacian(n: usize) -> dd_linalg::CsrMatrix {
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 2.0);
            if i + 1 < n {
                b.push(i, i + 1, -1.0);
                b.push(i + 1, i, -1.0);
            }
        }
        b.to_csr()
    }

    fn rhs(n: usize, seed: u64) -> Vec<f64> {
        // Cheap deterministic pseudo-random RHS.
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).max(1);
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s % 1000) as f64 / 500.0 - 1.0
            })
            .collect()
    }

    fn opts() -> GmresOpts {
        GmresOpts {
            tol: 1e-12,
            max_iters: 500,
            ..Default::default()
        }
    }

    #[test]
    fn multi_without_recycling_matches_solo_solves_exactly() {
        let a = laplacian(40);
        let batch: Vec<Vec<f64>> = (0..4).map(|k| rhs(40, k + 1)).collect();
        let x0 = vec![0.0; 40];
        let p = crate::operator::IdentityPrecond;
        let multi = try_gmres_multi(&a, &p, &SeqDot, &batch, &x0, &opts(), None).unwrap();
        for (b, m) in batch.iter().zip(&multi) {
            let solo = try_gmres(&a, &p, &SeqDot, b, &x0, &opts(), None).unwrap();
            assert_eq!(m.iterations, solo.iterations);
            assert_eq!(m.x, solo.x, "batched solve must be bit-identical");
        }
    }

    #[test]
    fn recycling_converges_and_never_needs_more_iterations_on_repeats() {
        let a = laplacian(60);
        let b = rhs(60, 7);
        // The same RHS four times: after the first solve the recycle space
        // contains the solution direction, so the remaining solves start
        // (numerically) converged.
        let batch = vec![b.clone(), b.clone(), b.clone(), b];
        let x0 = vec![0.0; 60];
        let p = crate::operator::IdentityPrecond;
        let mut space = RecycleSpace::new(4);
        let res = try_gmres_multi(&a, &p, &SeqDot, &batch, &x0, &opts(), Some(&mut space)).unwrap();
        assert!(res.iter().all(|r| r.converged));
        assert!(
            res[1].iterations < res[0].iterations,
            "recycling must shortcut a repeated RHS: {} vs {}",
            res[1].iterations,
            res[0].iterations
        );
        // Solutions still match the solo solve to tight accuracy.
        let solo = try_gmres(&a, &p, &SeqDot, &batch[1], &x0, &opts(), None).unwrap();
        let diff: f64 = res[1]
            .x
            .iter()
            .zip(&solo.x)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(diff < 1e-9, "recycled solution drifted: {diff}");
    }

    #[test]
    fn harvest_evicts_oldest_and_clear_empties() {
        let a = laplacian(20);
        let x0 = vec![0.0; 20];
        let p = crate::operator::IdentityPrecond;
        let mut space = RecycleSpace::new(2);
        for k in 0..3 {
            let b = rhs(20, 100 + k);
            let r = try_gmres(&a, &p, &SeqDot, &b, &x0, &opts(), None).unwrap();
            space.try_harvest(&a, &SeqDot, &x0, &r.x).unwrap();
        }
        assert_eq!(space.len(), 2, "bank must stay bounded");
        space.clear();
        assert!(space.is_empty());
    }

    #[test]
    fn zero_increment_and_zero_capacity_are_noops() {
        let a = laplacian(10);
        let x = vec![1.0; 10];
        let mut space = RecycleSpace::new(3);
        space.try_harvest(&a, &SeqDot, &x, &x).unwrap();
        assert!(space.is_empty(), "zero increment must not be banked");
        let mut off = RecycleSpace::new(0);
        let y = vec![2.0; 10];
        off.try_harvest(&a, &SeqDot, &x, &y).unwrap();
        assert!(off.is_empty());
        let mut guess = vec![0.0; 10];
        assert!(!off.try_improve_guess(&a, &SeqDot, &y, &mut guess).unwrap());
    }

    #[test]
    fn degenerate_gram_is_skipped_not_fatal() {
        // Two identical directions make the Gram matrix singular.
        let a = laplacian(10);
        let b = rhs(10, 3);
        let x0 = vec![0.0; 10];
        let p = crate::operator::IdentityPrecond;
        let r = try_gmres(&a, &p, &SeqDot, &b, &x0, &opts(), None).unwrap();
        let mut space = RecycleSpace::new(4);
        space.try_harvest(&a, &SeqDot, &x0, &r.x).unwrap();
        space.try_harvest(&a, &SeqDot, &x0, &r.x).unwrap();
        let mut guess = vec![0.0; 10];
        // Must not panic; either applies a correction from the
        // well-conditioned subset or skips.
        let _ = space
            .try_improve_guess(&a, &SeqDot, &b, &mut guess)
            .unwrap();
    }
}
