//! Join-protocol schedule suites (elastic-membership PR): a reserve rank
//! waits in the lobby, a seeded `FaultPlan::with_join` marks it pending at
//! a failpoint, and every founder calls `try_grow`. In every explored
//! interleaving the world must commit the *same* grown communicator —
//! identical epoch, identical membership, the joiner admitted exactly once
//! (no split-brain, no double admission) — and a survivor parked in a
//! stale pre-grow collective must wake `Revoked`, never hang.

use dd_check::{check_elastic_world_with_faults, scaled, Budget, Config, FailureKind, Report};
use dd_comm::{CommError, Communicator, FaultPlan};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn budget(max: usize) -> Budget {
    Budget {
        max_schedules: scaled(max),
        check_divergence: true,
    }
}

fn assert_graceful(r: &Report, what: &str) {
    for f in &r.failures {
        assert_ne!(
            f.kind,
            FailureKind::Stuck,
            "{what}: undetected hang (stuck schedule), replay script {:?}",
            f.script
        );
        assert_ne!(
            f.kind,
            FailureKind::Panic,
            "{what}: panic instead of graceful admission: {}",
            f.message
        );
    }
    r.assert_clean();
    eprintln!(
        "{what}: {} schedules explored, zero split-brain",
        r.schedules
    );
}

/// Shared epilogue of every join program: the committed world must be the
/// full founder set plus the joiner appended, each world rank appearing
/// exactly once, at the expected epoch, and live enough to complete a
/// collective whose value pins the membership.
fn assert_grown(grown: &Communicator, total: usize, epoch: usize) -> Vec<u8> {
    assert_eq!(grown.size(), total, "agreement missed the join");
    assert_eq!(grown.epoch(), epoch, "split-brain: unexpected epoch");
    let ranks = grown.world_ranks();
    let expect: Vec<usize> = (0..total).collect();
    assert_eq!(ranks, &expect[..], "wrong or double-admitted membership");
    let sum = grown
        .try_allreduce_sum(grown.world_rank() as f64)
        .expect("grown communicator must be live");
    let expect_sum = (total * (total - 1) / 2) as f64;
    assert_eq!(sum, expect_sum, "collective saw a different membership");
    let mut out = vec![0x61, grown.rank() as u8, grown.epoch() as u8];
    out.extend_from_slice(&sum.to_bits().to_le_bytes());
    out
}

/// `n` founders admit one reserve rank announced at the `work` failpoint;
/// everyone lands on the same epoch-1 world of size `n + 1`.
fn join_then_grow(n: usize, max: usize) -> Report {
    let faults = FaultPlan::new(47).with_join(n, "work");
    check_elastic_world_with_faults(n, 1, Config::default(), budget(max), faults, move |comm| {
        let grown_owned;
        let grown = if comm.is_joiner() {
            comm
        } else {
            comm.failpoint("work").expect("no kills in this plan");
            grown_owned = comm.try_grow().expect("founder must grow");
            &grown_owned
        };
        assert_grown(grown, n + 1, 1)
    })
}

/// Rank 0 parks in an epoch-0 collective its peers have abandoned for the
/// grow agreement. The pending joiner revokes the old epoch (via
/// `maintain`), so the stale wait must wake with a structured `Revoked`
/// (or observe the revocation immediately) — never hang — after which
/// rank 0 joins the same agreement as everyone else.
fn stale_wait_then_grow(n: usize, max: usize) -> (Report, usize) {
    let faults = FaultPlan::new(53).with_join(n, "work");
    let revoked = Arc::new(AtomicUsize::new(0));
    let seen = Arc::clone(&revoked);
    let report = check_elastic_world_with_faults(
        n,
        1,
        Config::default(),
        budget(max),
        faults,
        move |comm| {
            let grown_owned;
            let grown = if comm.is_joiner() {
                comm
            } else {
                comm.failpoint("work").expect("no kills in this plan");
                comm.maintain();
                if comm.rank() == 0 {
                    let pre = comm.try_allreduce_sum(1.0);
                    assert!(pre.is_err(), "stale pre-grow collective must not succeed");
                    if matches!(pre, Err(CommError::Revoked { .. })) {
                        seen.fetch_add(1, Ordering::SeqCst);
                    }
                }
                grown_owned = comm.try_grow().expect("founder must grow");
                &grown_owned
            };
            assert_grown(grown, n + 1, 1)
        },
    );
    (report, revoked.load(Ordering::SeqCst))
}

#[test]
fn join_agrees_n2_to_n3() {
    let r = join_then_grow(2, 2500);
    assert_graceful(&r, "n=2→3");
    assert!(r.schedules > 10, "explored {}", r.schedules);
}

#[test]
fn join_agrees_n3_to_n4() {
    let r = join_then_grow(3, 3000);
    assert_graceful(&r, "n=3→4");
}

#[test]
fn stale_wait_wakes_revoked_n3_to_n4() {
    let (r, revoked) = stale_wait_then_grow(3, 3000);
    assert_graceful(&r, "n=3→4 stale collective");
    assert!(
        revoked > 0,
        "no schedule ever surfaced a Revoked from the abandoned epoch-0 collective"
    );
}

/// After the grow commits, every member (joiner included) runs a second
/// empty agreement: the epoch advances but the membership must not change
/// — in particular the joiner must not be admitted a second time.
#[test]
fn no_double_admission_n2_to_n3() {
    let n = 2;
    let faults = FaultPlan::new(59).with_join(n, "work");
    let r = check_elastic_world_with_faults(
        n,
        1,
        Config::default(),
        budget(2000),
        faults,
        move |comm| {
            let grown_owned;
            let grown = if comm.is_joiner() {
                comm
            } else {
                comm.failpoint("work").expect("no kills in this plan");
                grown_owned = comm.try_grow().expect("founder must grow");
                &grown_owned
            };
            let again = grown.try_grow().expect("empty agreement must commit");
            assert_grown(&again, n + 1, 2)
        },
    );
    assert_graceful(&r, "n=2→3 double agreement");
}
