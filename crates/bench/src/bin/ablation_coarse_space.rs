//! Ablation: GenEO spectral coarse space vs the classical Nicolaides
//! (kernel-based) coarse space.
//!
//! Nicolaides deflation (PoU-weighted constants / rigid body modes) fixes
//! the `1/H` scalability problem of one-level methods but is oblivious to
//! coefficient jumps; GenEO also captures the heterogeneity-induced bad
//! modes. Expected: on high-contrast problems GenEO needs far fewer
//! iterations at comparable (or smaller) coarse size.

use dd_core::coarse::{CoarseOperator, CoarseSpace};
use dd_core::geneo::{deflation_block, nicolaides_block, resize_block};
use dd_core::{decompose, problem::presets, GeneoOpts, RasPrecond, TwoLevelPrecond, Variant};
use dd_krylov::{gmres, GmresOpts, SeqDot};
use dd_mesh::Mesh;
use dd_part::partition_mesh_rcb;
use dd_solver::Ordering;

fn main() {
    println!("# Ablation: GenEO vs Nicolaides coarse spaces");
    let mesh = Mesh::unit_square(48, 48);
    let n_sub = 16;
    let part = partition_mesh_rcb(&mesh, n_sub);
    let problem = presets::heterogeneous_diffusion(1);
    let d = decompose(&mesh, &problem, &part, n_sub, 1);
    let opts = GmresOpts {
        tol: 1e-6,
        max_iters: 400,
        record_history: false,
        ..Default::default()
    };
    let x0 = vec![0.0; d.n_global];

    // Nicolaides: one PoU vector per subdomain.
    let nico_blocks: Vec<_> = d
        .subdomains
        .iter()
        .map(|s| nicolaides_block(s, 1))
        .collect();
    let nico_space = CoarseSpace::new(nico_blocks);
    let nico_dim = nico_space.dim;
    let nico = TwoLevelPrecond::new(
        RasPrecond::build(&d, Ordering::MinDegree),
        CoarseOperator::build(&d, nico_space, Ordering::MinDegree),
        Variant::ADef1,
    );
    let r_nico = gmres(&d.a_global, &nico, &SeqDot, &d.rhs_global, &x0, &opts);

    // GenEO with a handful of vectors.
    let geneo_opts = GeneoOpts {
        nev: 8,
        ..Default::default()
    };
    let gen_blocks: Vec<_> = d
        .subdomains
        .iter()
        .map(|s| {
            let b = deflation_block(s, &geneo_opts);
            resize_block(&b, b.kept)
        })
        .collect();
    let gen_space = CoarseSpace::new(gen_blocks);
    let gen_dim = gen_space.dim;
    let geneo = TwoLevelPrecond::new(
        RasPrecond::build(&d, Ordering::MinDegree),
        CoarseOperator::build(&d, gen_space, Ordering::MinDegree),
        Variant::ADef1,
    );
    let r_geneo = gmres(&d.a_global, &geneo, &SeqDot, &d.rhs_global, &x0, &opts);

    println!(
        "{:<12} {:>8} {:>8} {:>10}",
        "space", "dim(E)", "#it.", "converged"
    );
    println!(
        "{:<12} {:>8} {:>8} {:>10}",
        "Nicolaides", nico_dim, r_nico.iterations, r_nico.converged
    );
    println!(
        "{:<12} {:>8} {:>8} {:>10}",
        "GenEO", gen_dim, r_geneo.iterations, r_geneo.converged
    );
    assert!(r_geneo.converged);
    assert!(
        !r_nico.converged || r_geneo.iterations * 2 <= r_nico.iterations,
        "GenEO ({}) not clearly ahead of Nicolaides ({})",
        r_geneo.iterations,
        r_nico.iterations
    );
    println!("# SHAPE OK: GenEO handles the heterogeneity Nicolaides cannot");
}
