//! Ablation: `P_A-DEF1` vs `P_A-DEF2` (§2.1). Both variants have similar
//! numerical properties; A-DEF1 needs one coarse solve per application,
//! A-DEF2 two — and "applying a coarse correction is the most
//! communication-intensive operation when preconditioning an iterative
//! method", which is why the paper picks A-DEF1.

use dd_core::{decompose, problem::presets, two_level, GeneoOpts, TwoLevelOpts, Variant};
use dd_krylov::{gmres, GmresOpts, SeqDot};
use dd_mesh::Mesh;
use dd_part::partition_mesh_rcb;

fn main() {
    println!("# Ablation: A-DEF1 vs A-DEF2 (coarse-solve economy)");
    let mesh = Mesh::unit_square(40, 40);
    let n_sub = 16;
    let part = partition_mesh_rcb(&mesh, n_sub);
    let problem = presets::heterogeneous_diffusion(1);
    let d = decompose(&mesh, &problem, &part, n_sub, 1);
    let opts = GmresOpts {
        tol: 1e-6,
        max_iters: 300,
        record_history: false,
        ..Default::default()
    };
    let x0 = vec![0.0; d.n_global];
    println!(
        "{:<8} {:>6} {:>14} {:>18}",
        "variant", "#it.", "coarse solves", "solves/iteration"
    );
    let mut rows = Vec::new();
    for (name, variant) in [("A-DEF1", Variant::ADef1), ("A-DEF2", Variant::ADef2)] {
        let tl = two_level(
            &d,
            &TwoLevelOpts {
                geneo: GeneoOpts {
                    nev: 8,
                    ..Default::default()
                },
                variant,
                ..Default::default()
            },
        );
        let r = gmres(&d.a_global, &tl, &SeqDot, &d.rhs_global, &x0, &opts);
        assert!(r.converged, "{name} did not converge");
        let solves = tl.coarse_solve_count();
        let per_iter = solves as f64 / r.iterations.max(1) as f64;
        println!(
            "{:<8} {:>6} {:>14} {:>18.2}",
            name, r.iterations, solves, per_iter
        );
        rows.push((r.iterations, per_iter));
    }
    // Similar convergence, double the coarse solves for A-DEF2.
    let (it1, s1) = rows[0];
    let (it2, s2) = rows[1];
    assert!(
        (it1 as i64 - it2 as i64).abs() <= (it1 / 2 + 3) as i64,
        "variants should converge similarly: {it1} vs {it2}"
    );
    assert!(
        s2 > 1.8 * s1,
        "A-DEF2 must need ~2× the coarse solves: {s1:.2} vs {s2:.2}"
    );
    println!("# SHAPE OK: same convergence, A-DEF2 pays twice the coarse corrections");
}
