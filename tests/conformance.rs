//! Communication-complexity conformance suite.
//!
//! The paper's central scalability claims are *structural*: each coarse
//! block `E_{i,j}` costs one neighbor exchange (§3.1.1), the Algorithm 1–2
//! gathers touch only elected masters, and the Krylov loop uses only
//! equal-count (`O(log N)`) collectives (§3.2). These tests pin those
//! claims against the deterministic telemetry layer (`dd_comm::trace`):
//! every invariant is asserted from a recorded [`WorldTrace`], and golden
//! fixtures under `tests/golden/` lock the full canonical trace so any
//! change to the communication pattern fails loudly.
//!
//! Parameterized by environment for the CI matrix:
//! * `CONFORMANCE_N` — world size (default 4);
//! * `CONFORMANCE_SEED` — fault-plan seed for the determinism runs
//!   (default 1).
//!
//! Regenerate goldens with `UPDATE_GOLDEN=1 cargo test --test conformance`.

use dd_comm::{CollClass, CostModel, EventKind, FaultPlan, World, WorldTrace};
use dd_core::{
    decompose, masters::group_of, masters::nonuniform_masters, problem::presets, run_spmd,
    Decomposition, GeneoOpts, SolverKind, SpmdOpts, SpmdReport,
};
use dd_krylov::GmresOpts;
use dd_mesh::Mesh;
use dd_part::partition_mesh_rcb;
use std::path::PathBuf;
use std::sync::Arc;

mod common;

fn conf_n() -> usize {
    std::env::var("CONFORMANCE_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4)
}

fn conf_seed() -> u64 {
    std::env::var("CONFORMANCE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

fn masters_for(n: usize) -> usize {
    (n / 4).clamp(2, 8).min(n)
}

fn setup(n: usize) -> Arc<Decomposition> {
    let mesh = Mesh::unit_square(16, 16);
    let part = partition_mesh_rcb(&mesh, n);
    let p = presets::heterogeneous_diffusion(1);
    Arc::new(decompose(&mesh, &p, &part, n, 1))
}

fn opts_for(n: usize) -> SpmdOpts {
    SpmdOpts {
        geneo: GeneoOpts {
            nev: 3,
            ..Default::default()
        },
        n_masters: masters_for(n),
        gmres: GmresOpts {
            tol: 1e-8,
            max_iters: 200,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn traced_solve(
    decomp: &Arc<Decomposition>,
    opts: &SpmdOpts,
    faults: FaultPlan,
) -> (Vec<SpmdReport>, WorldTrace) {
    let n = decomp.n_subdomains();
    let d = Arc::clone(decomp);
    let opts = opts.clone();
    World::run_traced_with_faults(n, CostModel::default(), faults, move |comm| {
        run_spmd(&d, comm, &opts).report
    })
}

// ---------------------------------------------------------------- determinism

/// Acceptance criterion: two identical-seed runs produce byte-identical
/// canonical traces — with and without an armed fault plan.
#[test]
fn identical_runs_produce_byte_identical_traces() {
    let n = conf_n();
    let decomp = setup(n);
    let opts = opts_for(n);
    let (_, t1) = traced_solve(&decomp, &opts, FaultPlan::default());
    let (_, t2) = traced_solve(&decomp, &opts, FaultPlan::default());
    assert_eq!(
        t1.canonical_json(),
        t2.canonical_json(),
        "trace must be a deterministic function of the program"
    );
}

#[test]
fn identical_seed_fault_runs_produce_byte_identical_traces() {
    let n = conf_n();
    let seed = conf_seed();
    let decomp = setup(n);
    let opts = opts_for(n);
    let plan = || {
        FaultPlan::new(seed)
            .with_delays(0.2, 1e-4)
            .with_drops(0.05, 1)
    };
    let (_, t1) = traced_solve(&decomp, &opts, plan());
    let (_, t2) = traced_solve(&decomp, &opts, plan());
    let j1 = t1.canonical_json();
    assert_eq!(
        j1,
        t2.canonical_json(),
        "fault decisions must be pure functions of the seed"
    );
    // The injected drops are visible (and stable) in the trace.
    let retries: u64 = t1
        .phase_names()
        .iter()
        .map(|p| t1.phase_totals(p).retries)
        .sum();
    assert!(retries > 0, "drop plan produced no observable retries");
}

// ------------------------------------------------------- structural invariants

/// §3.1.1: assembling all `E_{i,j}` blocks costs exactly one exchange per
/// neighbor pair — rank i sends exactly one message to each neighbor j and
/// receives exactly one back, and nothing else moves in the exchange phase.
#[test]
fn one_exchange_per_neighbor_during_e_assembly() {
    let n = conf_n();
    let decomp = setup(n);
    let (_, trace) = traced_solve(&decomp, &opts_for(n), FaultPlan::default());
    for r in &trace.ranks {
        let neighbors: Vec<usize> = decomp.subdomains[r.rank]
            .neighbors
            .iter()
            .map(|l| l.j)
            .collect();
        let phase_id = r
            .phases
            .iter()
            .position(|(name, _)| name == "assembly:exchange")
            .expect("missing assembly:exchange phase") as u16;
        let mut sends: Vec<usize> = Vec::new();
        let mut recvs: Vec<usize> = Vec::new();
        for e in r.events.iter().filter(|e| e.phase == phase_id) {
            match &e.kind {
                EventKind::Send { dest, .. } => sends.push(*dest),
                EventKind::Recv { src, .. } => recvs.push(*src),
                EventKind::Collective { op, .. } => {
                    panic!("unexpected collective `{op}` in the exchange phase")
                }
                EventKind::Iteration { .. } => panic!("unexpected iteration event"),
            }
        }
        let mut expect = neighbors.clone();
        expect.sort_unstable();
        let (mut s, mut v) = (sends.clone(), recvs.clone());
        s.sort_unstable();
        v.sort_unstable();
        assert_eq!(s, expect, "rank {}: one send per neighbor", r.rank);
        assert_eq!(v, expect, "rank {}: one recv per neighbor", r.rank);
    }
}

/// Algorithms 1–2: every rooted collective of the coarse gather and of the
/// solve loop is rooted at an elected master.
#[test]
fn gather_scatter_traffic_touches_only_masters() {
    let n = conf_n();
    let decomp = setup(n);
    let opts = opts_for(n);
    let (_, trace) = traced_solve(&decomp, &opts, FaultPlan::default());
    let masters = nonuniform_masters(n, opts.n_masters.min(n));
    for phase in ["assembly:gather", "solve"] {
        let mut rooted = 0usize;
        for (rank, e) in trace.events_in_phase(phase) {
            if let EventKind::Collective {
                op,
                root: Some(root),
                comm,
                ..
            } = &e.kind
            {
                rooted += 1;
                let root = *root as usize;
                assert!(
                    masters.contains(&root),
                    "rank {rank}: `{op}` in {phase} rooted at non-master {root} \
                     (comm label id {comm}, masters {masters:?})"
                );
                // The root must be the master of the sender's own group.
                let g = group_of(rank, &masters);
                assert_eq!(
                    root, masters[g],
                    "rank {rank}: rooted at a master outside its group"
                );
            }
        }
        assert!(rooted > 0, "no rooted collectives observed in {phase}");
    }
}

/// §3.2: the Krylov loop performs zero `v`-variant collectives — only
/// equal-count (`O(log N)`) operations.
#[test]
fn zero_v_variant_collectives_in_the_solve_loop() {
    let n = conf_n();
    let decomp = setup(n);
    let (_, trace) = traced_solve(&decomp, &opts_for(n), FaultPlan::default());
    let solve = trace.phase_totals("solve");
    assert_eq!(
        solve.collectives_v, 0,
        "v-variant collective inside the Krylov loop"
    );
    assert!(
        solve.collectives_eq > 0,
        "solve loop recorded no collectives"
    );
    // Sanity of the detector: the index-free assembly gather IS a gatherv.
    let gather = trace.phase_totals("assembly:gather");
    assert!(
        gather.collectives_v > 0,
        "expected the assembly gatherv to register as a v-variant"
    );
}

/// §3.2: every equal-count collective is charged `⌈log₂ p⌉` messages
/// (bounded by `⌈log₂ N⌉`), every `v`-variant `p − 1`.
#[test]
fn collective_message_counts_are_log_bounded() {
    let n = conf_n();
    let decomp = setup(n);
    let (_, trace) = traced_solve(&decomp, &opts_for(n), FaultPlan::default());
    let log_n = dd_comm::model::tree_msgs(n);
    let mut eq_seen = 0usize;
    for r in &trace.ranks {
        for e in &r.events {
            if let EventKind::Collective {
                op,
                class,
                size,
                msgs,
                ..
            } = &e.kind
            {
                let p = *size as usize;
                match class {
                    CollClass::EqualCount => {
                        eq_seen += 1;
                        assert_eq!(
                            *msgs,
                            dd_comm::model::tree_msgs(p),
                            "`{op}` on {p} ranks: wrong tree message count"
                        );
                        assert!(
                            *msgs <= log_n,
                            "`{op}`: {msgs} messages exceeds ⌈log₂ N⌉ = {log_n}"
                        );
                    }
                    CollClass::Varying => {
                        assert_eq!(
                            *msgs,
                            dd_comm::model::linear_msgs(p),
                            "`{op}` on {p} ranks: wrong linear message count"
                        );
                    }
                }
            }
        }
    }
    assert!(eq_seen > 0);
}

/// §3.1.1 index-free assembly: rank i's slave message is exactly
/// `1 + |O_i| + ν_i² + Σ_{j ∈ O_i} ν_i ν_j` doubles — the `1` is the
/// neighbor-count prefix; no global indices ship.
#[test]
fn gatherv_byte_volume_matches_nu_closed_form() {
    let n = conf_n();
    let decomp = setup(n);
    let (reports, trace) = traced_solve(&decomp, &opts_for(n), FaultPlan::default());
    for r in &trace.ranks {
        let nu_i = reports[r.rank].nu;
        let nbrs = &decomp.subdomains[r.rank].neighbors;
        let expected_doubles = 1
            + nbrs.len()
            + nu_i * nu_i
            + nbrs.iter().map(|l| nu_i * reports[l.j].nu).sum::<usize>();
        let gatherv_bytes: Vec<u64> = r
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Collective { op, bytes, .. } if *op == "gatherv" => Some(*bytes),
                _ => None,
            })
            .collect();
        assert_eq!(
            gatherv_bytes,
            vec![8 * expected_doubles as u64],
            "rank {}: index-free slave message volume off (ν_i = {nu_i})",
            r.rank
        );
    }
}

/// Global conservation: every sent message is received, byte for byte.
#[test]
fn sends_and_recvs_balance_globally() {
    let n = conf_n();
    let decomp = setup(n);
    let (reports, trace) = traced_solve(&decomp, &opts_for(n), FaultPlan::default());
    let (mut sends, mut send_bytes, mut recvs, mut recv_bytes) = (0u64, 0u64, 0u64, 0u64);
    for p in trace.phase_names() {
        let c = trace.phase_totals(&p);
        sends += c.sends;
        send_bytes += c.send_bytes;
        recvs += c.recvs;
        recv_bytes += c.recv_bytes;
    }
    assert_eq!(sends, recvs, "lost or duplicated messages");
    assert_eq!(send_bytes, recv_bytes, "byte volume mismatch");
    // Iteration events match the reported iteration count on every rank.
    for r in &trace.ranks {
        let iters = r
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Iteration { .. }))
            .count();
        assert_eq!(
            iters, reports[r.rank].iterations,
            "rank {}: iteration events vs report",
            r.rank
        );
    }
}

// ------------------------------------------------------------- golden traces

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, canonical: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, canonical).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); regenerate with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        canonical,
        golden,
        "canonical trace drifted from {}; if the comm-pattern change is \
         intentional, regenerate with UPDATE_GOLDEN=1",
        path.display()
    );
}

/// Golden regression: a hand-written 4-rank communication program whose
/// canonical trace is committed. Platform-independent by construction
/// (no floating-point control flow).
#[test]
fn golden_trace_hand_written_program() {
    let (_, trace) = World::run_traced(4, CostModel::default(), |comm| {
        let rank = comm.rank();
        let n = comm.size();
        comm.trace_phase("ring");
        comm.send((rank + 1) % n, 7, vec![rank as f64; rank + 1]);
        let got: Vec<f64> = comm.recv((rank + n - 1) % n, 7);
        comm.charge_flops(got.len() as u64);
        comm.trace_phase("collectives");
        comm.barrier();
        let sum = comm.allreduce_sum(rank as f64);
        assert_eq!(sum, 6.0);
        let all = comm.allgather(rank as u64);
        assert_eq!(all.len(), n);
        let rooted = comm.gatherv(0, vec![1.0f64; rank + 1]);
        assert_eq!(rooted.is_some(), rank == 0);
        comm.trace_phase("split");
        let sub = comm.split(Some(rank % 2)).unwrap();
        sub.set_trace_label("evenOdd");
        let s = sub.allreduce_sum(1.0);
        assert_eq!(s, 2.0);
    });
    check_golden("comm_program.json", &trace.canonical_json());
}

/// Golden regression: the full SPMD solve at fixed iteration count. With
/// `tol = 0` GMRES always runs exactly `max_iters` iterations, so the
/// canonical trace is independent of floating-point convergence behavior.
#[test]
fn golden_trace_fixed_iteration_solve() {
    let n = 4;
    let mesh = Mesh::unit_square(8, 8);
    let part = partition_mesh_rcb(&mesh, n);
    let p = presets::heterogeneous_diffusion(1);
    let decomp = Arc::new(decompose(&mesh, &p, &part, n, 1));
    let opts = SpmdOpts {
        geneo: GeneoOpts {
            nev: 2,
            ..Default::default()
        },
        n_masters: 2,
        gmres: GmresOpts {
            tol: 0.0,
            max_iters: 3,
            ..Default::default()
        },
        ..Default::default()
    };
    let (reports, trace) = traced_solve(&decomp, &opts, FaultPlan::default());
    assert!(reports.iter().all(|r| r.iterations == 3));
    check_golden("solve_n4.json", &trace.canonical_json());
}

/// The solver variants keep their §3.5 communication signatures: classical
/// GMRES posts standalone allreduces in the solve loop; the fused variant
/// replaces them with masterComm iallreduces riding the coarse solve.
#[test]
fn solver_variants_have_distinct_comm_signatures() {
    let n = conf_n();
    let decomp = setup(n);
    let base = opts_for(n);
    let count_op = |trace: &WorldTrace, wanted: &str| -> usize {
        trace
            .events_in_phase("solve")
            .iter()
            .filter(|(_, e)| matches!(&e.kind, EventKind::Collective { op, .. } if *op == wanted))
            .count()
    };
    let (_, classical) = traced_solve(&decomp, &base, FaultPlan::default());
    let fused_opts = SpmdOpts {
        solver: SolverKind::Fused,
        gmres: GmresOpts {
            side: dd_krylov::Side::Left,
            ..base.gmres.clone()
        },
        ..base.clone()
    };
    let (_, fused) = traced_solve(&decomp, &fused_opts, FaultPlan::default());
    assert!(
        count_op(&classical, "allreduce") > 0,
        "classical GMRES must reduce on the world communicator"
    );
    assert!(
        count_op(&fused, "iallreduce") > 0,
        "fused GMRES must post non-blocking reductions"
    );
}
