//! Cross-crate integration tests: the full pipeline from mesh generation
//! through partitioning, decomposition, preconditioner setup, and Krylov
//! solution — sequential and SPMD — verified against direct solves.

use dd_geneo::comm::World;
use dd_geneo::core::{
    decompose, problem::presets, run_spmd, two_level, GeneoOpts, RasPrecond, SolverKind, SpmdOpts,
    TwoLevelOpts, Variant,
};
use dd_geneo::krylov::{cg, gmres, CgOpts, GmresOpts, SeqDot};
use dd_geneo::linalg::vector;
use dd_geneo::mesh::{refine::uniform_refine, Mesh};
use dd_geneo::part::{partition_mesh_rcb, quality};
use dd_geneo::solver::{Ordering, SparseLdlt};
use std::sync::Arc;

fn direct_solution(d: &dd_geneo::core::Decomposition) -> Vec<f64> {
    SparseLdlt::factor(&d.a_global, Ordering::MinDegree)
        .unwrap()
        .solve(&d.rhs_global)
}

#[test]
fn diffusion_2d_p2_pipeline() {
    let mesh = uniform_refine(&Mesh::unit_square(8, 8));
    let n_sub = 8;
    let part = partition_mesh_rcb(&mesh, n_sub);
    let q = quality(&mesh.dual_graph(), &part, n_sub);
    assert_eq!(q.connected_parts, n_sub);
    let problem = presets::heterogeneous_diffusion(2);
    let d = decompose(&mesh, &problem, &part, n_sub, 1);
    assert!(d.pou_defect() < 1e-12);
    let tl = two_level(
        &d,
        &TwoLevelOpts {
            geneo: GeneoOpts {
                nev: 8,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let res = gmres(
        &d.a_global,
        &tl,
        &SeqDot,
        &d.rhs_global,
        &vec![0.0; d.n_global],
        &GmresOpts {
            tol: 1e-8,
            max_iters: 200,
            ..Default::default()
        },
    );
    assert!(res.converged, "residual {}", res.final_residual);
    let direct = direct_solution(&d);
    let rel = vector::dist2(&res.x, &direct) / vector::norm2(&direct);
    assert!(rel < 1e-6, "vs direct: {rel}");
}

#[test]
fn elasticity_2d_p2_pipeline() {
    let mesh = Mesh::rectangle(16, 4, 4.0, 1.0);
    let n_sub = 4;
    let part = partition_mesh_rcb(&mesh, n_sub);
    let problem = presets::heterogeneous_elasticity(2, 2);
    let d = decompose(&mesh, &problem, &part, n_sub, 1);
    let tl = two_level(
        &d,
        &TwoLevelOpts {
            geneo: GeneoOpts {
                nev: 10,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let res = gmres(
        &d.a_global,
        &tl,
        &SeqDot,
        &d.rhs_global,
        &vec![0.0; d.n_global],
        &GmresOpts {
            tol: 1e-8,
            max_iters: 300,
            ..Default::default()
        },
    );
    assert!(res.converged);
    let direct = direct_solution(&d);
    let rel = vector::dist2(&res.x, &direct) / vector::norm2(&direct);
    assert!(rel < 1e-5, "vs direct: {rel}");
}

#[test]
fn diffusion_3d_pipeline() {
    let mesh = Mesh::unit_cube(5, 5, 5);
    let n_sub = 4;
    let part = partition_mesh_rcb(&mesh, n_sub);
    let problem = presets::heterogeneous_diffusion(1);
    let d = decompose(&mesh, &problem, &part, n_sub, 1);
    assert!(d.pou_defect() < 1e-12);
    let tl = two_level(&d, &TwoLevelOpts::default());
    let res = gmres(
        &d.a_global,
        &tl,
        &SeqDot,
        &d.rhs_global,
        &vec![0.0; d.n_global],
        &GmresOpts {
            tol: 1e-8,
            max_iters: 200,
            ..Default::default()
        },
    );
    assert!(res.converged);
    let direct = direct_solution(&d);
    let rel = vector::dist2(&res.x, &direct) / vector::norm2(&direct);
    assert!(rel < 1e-5);
}

#[test]
fn spmd_matches_sequential_two_level() {
    let mesh = Mesh::unit_square(16, 16);
    let n_sub = 4;
    let part = partition_mesh_rcb(&mesh, n_sub);
    let problem = presets::heterogeneous_diffusion(1);
    let d = Arc::new(decompose(&mesh, &problem, &part, n_sub, 1));
    let opts = SpmdOpts {
        geneo: GeneoOpts {
            nev: 6,
            ..Default::default()
        },
        gmres: GmresOpts {
            tol: 1e-8,
            max_iters: 200,
            ..Default::default()
        },
        ..Default::default()
    };
    let d2 = Arc::clone(&d);
    let sols = World::run_default(n_sub, move |comm| {
        let s = run_spmd(&d2, comm, &opts);
        (s.report.converged, s.x_local)
    });
    assert!(sols.iter().all(|(c, _)| *c));
    let locals: Vec<Vec<f64>> = sols.into_iter().map(|(_, x)| x).collect();
    let x = d.from_locals(&locals);
    let direct = direct_solution(&d);
    let rel = vector::dist2(&x, &direct) / vector::norm2(&direct);
    assert!(rel < 1e-5, "SPMD vs direct: {rel}");
}

#[test]
fn spmd_all_solver_kinds_agree() {
    let mesh = Mesh::unit_square(14, 14);
    let n_sub = 4;
    let part = partition_mesh_rcb(&mesh, n_sub);
    let problem = presets::heterogeneous_diffusion(1);
    let d = Arc::new(decompose(&mesh, &problem, &part, n_sub, 1));
    let direct = direct_solution(&d);
    for kind in [
        SolverKind::Classical,
        SolverKind::Pipelined,
        SolverKind::Fused,
    ] {
        let opts = SpmdOpts {
            geneo: GeneoOpts {
                nev: 6,
                ..Default::default()
            },
            solver: kind,
            gmres: GmresOpts {
                tol: 1e-7,
                max_iters: 300,
                side: dd_geneo::krylov::Side::Left,
                ..Default::default()
            },
            ..Default::default()
        };
        let d2 = Arc::clone(&d);
        let sols = World::run_default(n_sub, move |comm| {
            let s = run_spmd(&d2, comm, &opts);
            (s.report.converged, s.x_local)
        });
        assert!(sols.iter().all(|(c, _)| *c), "{kind:?} did not converge");
        let locals: Vec<Vec<f64>> = sols.into_iter().map(|(_, x)| x).collect();
        let x = d.from_locals(&locals);
        let rel = vector::dist2(&x, &direct) / vector::norm2(&direct);
        assert!(rel < 1e-3, "{kind:?} vs direct: {rel}");
    }
}

#[test]
fn cg_with_two_level_preconditioner() {
    // A-DEF1 is not symmetric as an operator, but the RAS-free coarse-only
    // variant is; here we verify CG works with the symmetric one-level
    // additive Schwarz (unweighted) as a sanity check of solver generality,
    // using the SPD global matrix.
    let mesh = Mesh::unit_square(12, 12);
    let part = partition_mesh_rcb(&mesh, 4);
    let problem = presets::uniform_diffusion(1);
    let d = decompose(&mesh, &problem, &part, 4, 1);
    // Jacobi preconditioner (SPD) for CG.
    let diag = d.a_global.diag();
    let jacobi = dd_geneo::krylov::FnPrecond::new(move |r: &[f64], z: &mut [f64]| {
        for i in 0..r.len() {
            z[i] = r[i] / diag[i];
        }
    });
    let res = cg(
        &d.a_global,
        &jacobi,
        &SeqDot,
        &d.rhs_global,
        &vec![0.0; d.n_global],
        &CgOpts {
            tol: 1e-10,
            ..Default::default()
        },
    );
    assert!(res.converged);
    let direct = direct_solution(&d);
    assert!(vector::dist2(&res.x, &direct) / vector::norm2(&direct) < 1e-6);
}

#[test]
fn one_level_vs_two_level_iteration_gap_grows_with_n() {
    // The motivating scalability property: as N grows on a fixed mesh, the
    // one-level iteration count grows while the two-level count stays flat.
    let mesh = Mesh::unit_square(24, 24);
    let problem = presets::uniform_diffusion(1);
    let opts = GmresOpts {
        tol: 1e-8,
        max_iters: 500,
        record_history: false,
        ..Default::default()
    };
    let mut one_counts = Vec::new();
    let mut two_counts = Vec::new();
    for n_sub in [2usize, 8, 16] {
        let part = partition_mesh_rcb(&mesh, n_sub);
        let d = decompose(&mesh, &problem, &part, n_sub, 1);
        let x0 = vec![0.0; d.n_global];
        let ras = RasPrecond::build(&d, Ordering::MinDegree);
        let r1 = gmres(&d.a_global, &ras, &SeqDot, &d.rhs_global, &x0, &opts);
        let tl = two_level(
            &d,
            &TwoLevelOpts {
                geneo: GeneoOpts {
                    nev: 5,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let r2 = gmres(&d.a_global, &tl, &SeqDot, &d.rhs_global, &x0, &opts);
        assert!(r1.converged && r2.converged);
        one_counts.push(r1.iterations);
        two_counts.push(r2.iterations);
    }
    assert!(
        one_counts[2] > one_counts[0],
        "one-level did not degrade with N: {one_counts:?}"
    );
    let tmax = *two_counts.iter().max().unwrap();
    let tmin = *two_counts.iter().min().unwrap().max(&1);
    assert!(
        tmax <= 2 * tmin + 2,
        "two-level iterations not flat: {two_counts:?}"
    );
}

#[test]
fn adef2_variant_end_to_end() {
    let mesh = Mesh::unit_square(12, 12);
    let part = partition_mesh_rcb(&mesh, 4);
    let problem = presets::heterogeneous_diffusion(1);
    let d = decompose(&mesh, &problem, &part, 4, 1);
    let tl = two_level(
        &d,
        &TwoLevelOpts {
            variant: Variant::ADef2,
            ..Default::default()
        },
    );
    let res = gmres(
        &d.a_global,
        &tl,
        &SeqDot,
        &d.rhs_global,
        &vec![0.0; d.n_global],
        &GmresOpts {
            tol: 1e-8,
            max_iters: 200,
            ..Default::default()
        },
    );
    assert!(res.converged);
    // Two coarse solves per application: count is even and ≥ 2·iterations.
    assert_eq!(tl.coarse_solve_count() % 2, 0);
}
