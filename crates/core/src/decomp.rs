//! Overlapping domain decomposition (§2 of the paper).
//!
//! From a mesh, an element partition `{T_i}` and an overlap width `δ`, this
//! module builds everything the preconditioners need, per subdomain:
//!
//! * the overlapping element sets `T_i^δ` (grown by element adjacency:
//!   "T_i^δ is obtained by including all elements of T_i^{δ−1} plus all
//!   adjacent elements");
//! * the local space `V_i^δ` as a sorted list of global dofs (`R_i` is
//!   never stored as a matrix — only this index list, and the shared-index
//!   lists give the action of `R_i R_jᵀ`);
//! * the **partition of unity** `D_i` from the continuous piecewise-linear
//!   hat functions `χ_i` of the paper (§2), interpolated onto the `P_k`
//!   dofs;
//! * the **Dirichlet matrix** `A_i = R_i A R_iᵀ` built by the paper's
//!   *approach 2*: assemble on `V_i^{δ+1}` and restrict — the global `A`
//!   is never needed;
//! * the **Neumann matrix** `A_i^δ` (the local discretization of the
//!   bilinear form on `V_i^δ`, no interface conditions) used by the GenEO
//!   eigenproblem (eq. 9);
//! * the neighbor links `O_i` with shared-dof index lists.
//!
//! A reference global assembly is also kept for the sequential driver and
//! for verification (tests check that approach 2 reproduces `R_i A R_iᵀ`
//! exactly).

use crate::problem::Problem;
use dd_fem::{assembly, DofMap};
use dd_linalg::{vector, BsrMatrix, CsrMatrix, DMat};
use dd_mesh::Mesh;
use std::collections::HashMap;

/// Link to a neighboring subdomain `j ∈ O_i`.
#[derive(Clone, Debug)]
pub struct NeighborLink {
    /// Neighbor subdomain index.
    pub j: usize,
    /// Local (vector-dof) indices shared with `j`, sorted by global dof id.
    /// Subdomain `j`'s link back to us lists the *same global dofs in the
    /// same order*, so exchanging `values[shared]` implements
    /// `R_j R_iᵀ` / `R_i R_jᵀ` without any index translation.
    pub shared: Vec<u32>,
}

/// Everything one subdomain owns.
#[derive(Clone, Debug)]
pub struct Subdomain {
    /// Local → global vector-dof map, sorted ascending.
    pub l2g: Vec<u32>,
    /// Assembled Dirichlet matrix `A_i = R_i A R_iᵀ`.
    pub a_dirichlet: CsrMatrix,
    /// Block (BSR) companion of `a_dirichlet` for vector-valued problems
    /// whose `dim × dim` node blocks are mostly dense (elasticity). `None`
    /// for scalar problems. The blocked kernels accumulate in the same
    /// scalar-column order as CSR, so every apply through
    /// [`Subdomain::spmv_dirichlet`] / [`Subdomain::mm_dirichlet`] is
    /// bitwise identical to the CSR path — enabling this storage cannot
    /// move an iteration count or telemetry counter.
    pub a_dirichlet_bsr: Option<BsrMatrix>,
    /// Unassembled Neumann matrix `A_i^δ` (essential BCs of the *global*
    /// problem eliminated; no conditions on the artificial interface).
    pub a_neumann: CsrMatrix,
    /// Partition-of-unity diagonal `D_i`.
    pub d: Vec<f64>,
    /// Dofs lying in the overlap `V_i^δ ∩ (∪_j V_j^δ)` (the `R_{i,0}`
    /// restriction of eq. 9).
    pub overlap: Vec<bool>,
    /// Neighboring subdomains `O_i`, sorted by index.
    pub neighbors: Vec<NeighborLink>,
    /// Global Dirichlet flags restricted to this subdomain.
    pub dirichlet: Vec<bool>,
    /// Physical coordinates of the *scalar* dofs (`dim` entries per scalar
    /// dof) — used by coordinate-based coarse spaces (rigid body modes).
    pub coords: Vec<f64>,
    /// Spatial dimension.
    pub dim: usize,
}

impl Subdomain {
    pub fn n_local(&self) -> usize {
        self.l2g.len()
    }

    /// `R_i x` — restrict a global vector.
    pub fn restrict(&self, global: &[f64]) -> Vec<f64> {
        self.l2g.iter().map(|&g| global[g as usize]).collect()
    }

    /// `y += R_iᵀ x_i` — prolong a local vector into a global one.
    pub fn prolong_add(&self, local: &[f64], global: &mut [f64]) {
        for (l, &g) in self.l2g.iter().enumerate() {
            global[g as usize] += local[l];
        }
    }

    /// `y ← A_i x` through the blocked storage when available (bitwise
    /// identical to `a_dirichlet.spmv`).
    pub fn spmv_dirichlet(&self, x: &[f64], y: &mut [f64]) {
        match &self.a_dirichlet_bsr {
            Some(b) => b.spmv(x, y),
            None => self.a_dirichlet.spmv(x, y),
        }
    }

    /// `A_i W` through the blocked storage when available (bitwise identical
    /// to `a_dirichlet.csrmm`) — the `T_i = A_i W_i` step of the `E`
    /// assembly.
    pub fn mm_dirichlet(&self, w: &DMat) -> DMat {
        match &self.a_dirichlet_bsr {
            Some(b) => b.bsrmm(w),
            None => self.a_dirichlet.csrmm(w),
        }
    }
}

/// The full decomposition plus a reference global problem.
#[derive(Clone)]
pub struct Decomposition {
    /// Number of global (vector) dofs.
    pub n_global: usize,
    /// Overlap width δ ≥ 1.
    pub delta: usize,
    /// Unknowns per scalar dof (1 or `dim`).
    pub components: usize,
    pub subdomains: Vec<Subdomain>,
    /// Globally assembled, Dirichlet-eliminated operator (reference /
    /// sequential driver only — the SPMD path never touches it).
    pub a_global: CsrMatrix,
    /// Global load vector (after Dirichlet elimination).
    pub rhs_global: Vec<f64>,
    /// Global Dirichlet flags.
    pub dirichlet: Vec<bool>,
}

#[inline]
fn n_scalar_coords(n_scalar: usize, dim: usize) -> usize {
    n_scalar * dim
}

/// Extract the submesh spanned by `elems`, returning the local mesh and
/// the local → global vertex map.
fn build_submesh(mesh: &Mesh, elems: &[u32]) -> (Mesh, Vec<u32>) {
    let k = mesh.verts_per_elem();
    let mut vert_l2g: Vec<u32> = Vec::new();
    let mut g2l: HashMap<u32, u32> = HashMap::new();
    let mut conn = Vec::with_capacity(elems.len() * k);
    for &e in elems {
        for &v in mesh.element(e as usize) {
            let next = g2l.len() as u32;
            let lv = *g2l.entry(v).or_insert_with(|| {
                vert_l2g.push(v);
                next
            });
            conn.push(lv);
        }
    }
    let dim = mesh.dim();
    let mut coords = Vec::with_capacity(vert_l2g.len() * dim);
    for &gv in &vert_l2g {
        coords.extend_from_slice(mesh.vertex(gv as usize));
    }
    (Mesh::from_parts(dim, coords, conn), vert_l2g)
}

/// Translate the dofs of a submesh `DofMap` to global dof ids through the
/// exact integer keys (vertex ids + barycentric numerators).
fn submesh_dofs_to_global(sub_dm: &DofMap, vert_l2g: &[u32], global_dm: &DofMap) -> Vec<u32> {
    (0..sub_dm.n_dofs())
        .map(|ld| {
            let mut key: Vec<(u32, u8)> = sub_dm
                .key(ld)
                .iter()
                .map(|&(lv, a)| (vert_l2g[lv as usize], a))
                .collect();
            key.sort_unstable();
            global_dm
                .dof_by_key(&key)
                .expect("submesh dof not found in global space")
        })
        .collect()
}

/// Grow the element layers `T_i^0 ⊂ … ⊂ T_i^{δ+1}` of one subdomain and
/// record, for every vertex reached, the first layer containing it.
fn grow_layers(
    adj: &[Vec<u32>],
    mesh: &Mesh,
    part: &[u32],
    i: u32,
    depth: usize,
) -> (Vec<u32>, HashMap<u32, usize>) {
    let mut in_set = vec![false; adj.len()];
    let mut elems: Vec<u32> = (0..adj.len() as u32)
        .filter(|&e| part[e as usize] == i)
        .collect();
    for &e in &elems {
        in_set[e as usize] = true;
    }
    let mut vertex_layer: HashMap<u32, usize> = HashMap::new();
    for &e in &elems {
        for &v in mesh.element(e as usize) {
            vertex_layer.entry(v).or_insert(0);
        }
    }
    let mut frontier = elems.clone();
    for layer in 1..=depth {
        let mut next = Vec::new();
        for &e in &frontier {
            for &o in &adj[e as usize] {
                if !in_set[o as usize] {
                    in_set[o as usize] = true;
                    next.push(o);
                }
            }
        }
        for &e in &next {
            for &v in mesh.element(e as usize) {
                vertex_layer.entry(v).or_insert(layer);
            }
        }
        elems.extend_from_slice(&next);
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    (elems, vertex_layer)
}

/// How the assembled Dirichlet matrices `A_i = R_i A R_iᵀ` are obtained
/// (§2 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DirichletStrategy {
    /// The paper's *approach 2*: discretize on `V_i^{δ+1}` and drop the
    /// outermost layer — "the global assembled matrix A is never
    /// assembled", no global ordering or communication needed.
    #[default]
    LocalHalo,
    /// The paper's *approach 1*: extract from the globally assembled
    /// matrix ("usually requires some communications to build a parallel
    /// structure capable of handling distributed degrees of freedom").
    /// Available here because the reference global matrix is kept anyway;
    /// results are identical (a tested invariant).
    GlobalExtraction,
}

/// Build the decomposition with the default (approach 2) Dirichlet
/// strategy. `part` maps each mesh element to a subdomain in
/// `0..nparts`; `delta ≥ 1` is the overlap width in element layers.
pub fn decompose(
    mesh: &Mesh,
    problem: &Problem,
    part: &[u32],
    nparts: usize,
    delta: usize,
) -> Decomposition {
    decompose_with(
        mesh,
        problem,
        part,
        nparts,
        delta,
        DirichletStrategy::LocalHalo,
    )
}

/// [`decompose`] with an explicit [`DirichletStrategy`].
pub fn decompose_with(
    mesh: &Mesh,
    problem: &Problem,
    part: &[u32],
    nparts: usize,
    delta: usize,
    strategy: DirichletStrategy,
) -> Decomposition {
    assert!(delta >= 1, "overlap δ must be at least 1");
    assert_eq!(part.len(), mesh.n_elements());
    let dm = DofMap::new(mesh, problem.order);
    let c = problem.components(mesh.dim());
    let n_global = dm.n_dofs() * c;

    // Reference global problem (Dirichlet-eliminated).
    let (a_raw, mut rhs_global) = problem.assemble(mesh, &dm);
    let dirichlet = problem.dirichlet_flags(mesh, &dm);
    let a_global = assembly::apply_dirichlet(&a_raw, &mut rhs_global, &dirichlet, None);

    // ---- element layers & PoU vertex values per subdomain -------------
    let adj = mesh.vertex_adjacency();
    let mut layers: Vec<Vec<u32>> = Vec::with_capacity(nparts); // T_i^{δ+1}
    let mut delta_elems: Vec<Vec<u32>> = Vec::with_capacity(nparts); // T_i^δ
    let mut chi_tilde: Vec<HashMap<u32, f64>> = Vec::with_capacity(nparts);
    for i in 0..nparts {
        let (elems_p1, vlayer_p1) = grow_layers(&adj, mesh, part, i as u32, delta + 1);
        let (elems_d, vlayer) = grow_layers(&adj, mesh, part, i as u32, delta);
        let _ = vlayer_p1;
        let chi: HashMap<u32, f64> = vlayer
            .iter()
            .map(|(&v, &m)| (v, 1.0 - m as f64 / delta as f64))
            .collect();
        layers.push(elems_p1);
        delta_elems.push(elems_d);
        chi_tilde.push(chi);
    }
    // Global sum of χ̃ per vertex for the normalization χ_i = χ̃_i / Σ χ̃_j.
    let mut chi_sum: HashMap<u32, f64> = HashMap::new();
    for chi in &chi_tilde {
        for (&v, &x) in chi {
            *chi_sum.entry(v).or_insert(0.0) += x;
        }
    }

    // ---- per-subdomain spaces and matrices ------------------------------
    // First pass: local dof sets (global ids) on V_i^δ.
    let mut sub_meshes_d: Vec<(Mesh, Vec<u32>)> = Vec::with_capacity(nparts);
    let mut l2g_all: Vec<Vec<u32>> = Vec::with_capacity(nparts);
    let mut scalar_l2g_all: Vec<Vec<u32>> = Vec::with_capacity(nparts);
    for i in 0..nparts {
        let (smesh, v_l2g) = build_submesh(mesh, &delta_elems[i]);
        let sdm = DofMap::new(&smesh, problem.order);
        let mut scalar_gids = submesh_dofs_to_global(&sdm, &v_l2g, &dm);
        scalar_gids.sort_unstable();
        scalar_gids.dedup();
        // Expand scalar → vector dofs (already ascending since components
        // of one scalar dof are contiguous).
        let l2g: Vec<u32> = scalar_gids
            .iter()
            .flat_map(|&s| (0..c as u32).map(move |k| s * c as u32 + k))
            .collect();
        sub_meshes_d.push((smesh, v_l2g));
        scalar_l2g_all.push(scalar_gids);
        l2g_all.push(l2g);
    }

    // Membership: global scalar dof → subdomains containing it.
    let mut dof_subs: Vec<Vec<u32>> = vec![Vec::new(); dm.n_dofs()];
    for (i, gids) in scalar_l2g_all.iter().enumerate() {
        for &g in gids {
            dof_subs[g as usize].push(i as u32);
        }
    }

    let mut subdomains = Vec::with_capacity(nparts);
    for i in 0..nparts {
        let scalar_gids = &scalar_l2g_all[i];
        let l2g = &l2g_all[i];

        let n_local = l2g.len();

        // ---- Neumann matrix on V_i^δ, canonical ordering ----
        let (smesh_d, vl2g_d) = &sub_meshes_d[i];
        let sdm_d = DofMap::new(smesh_d, problem.order);
        let (a_neu_raw, _) = problem.assemble(smesh_d, &sdm_d);
        let local_gids_d = submesh_dofs_to_global(&sdm_d, vl2g_d, &dm);
        // position of each canonical scalar dof in the submesh numbering
        let mut g2pos: HashMap<u32, usize> = HashMap::new();
        for (p, &g) in local_gids_d.iter().enumerate() {
            g2pos.insert(g, p);
        }
        let perm_vec: Vec<usize> = scalar_gids
            .iter()
            .flat_map(|g| {
                let p = g2pos[g];
                (0..c).map(move |k| p * c + k)
            })
            .collect();
        let mut a_neumann = a_neu_raw.principal_submatrix(&perm_vec);
        // Eliminate the *global* essential BCs locally (identity rows/cols)
        // — interface dofs stay free (Neumann/unassembled character).
        let dir_local: Vec<bool> = l2g.iter().map(|&g| dirichlet[g as usize]).collect();
        let mut dummy_rhs = vec![0.0; n_local];
        a_neumann = assembly::apply_dirichlet(&a_neumann, &mut dummy_rhs, &dir_local, None);

        // ---- Dirichlet matrix ----
        let a_dirichlet = match strategy {
            DirichletStrategy::LocalHalo => {
                // Approach 2: assemble on V_i^{δ+1}, eliminate BCs,
                // restrict to V_i^δ.
                let (smesh_p1, vl2g_p1) = build_submesh(mesh, &layers[i]);
                let sdm_p1 = DofMap::new(&smesh_p1, problem.order);
                let (a_p1_raw, _) = problem.assemble(&smesh_p1, &sdm_p1);
                let gids_p1 = submesh_dofs_to_global(&sdm_p1, &vl2g_p1, &dm);
                let dir_p1: Vec<bool> = (0..sdm_p1.n_dofs() * c)
                    .map(|vd| dirichlet[gids_p1[vd / c] as usize * c + vd % c])
                    .collect();
                let mut dummy = vec![0.0; sdm_p1.n_dofs() * c];
                let a_p1 = assembly::apply_dirichlet(&a_p1_raw, &mut dummy, &dir_p1, None);
                let mut g2pos_p1: HashMap<u32, usize> = HashMap::new();
                for (p, &g) in gids_p1.iter().enumerate() {
                    g2pos_p1.insert(g, p);
                }
                let idx: Vec<usize> = scalar_gids
                    .iter()
                    .flat_map(|g| {
                        let p = g2pos_p1[g];
                        (0..c).map(move |k| p * c + k)
                    })
                    .collect();
                a_p1.principal_submatrix(&idx)
            }
            DirichletStrategy::GlobalExtraction => {
                // Approach 1: extract rows/columns from the global matrix.
                let idx: Vec<usize> = l2g.iter().map(|&g| g as usize).collect();
                a_global.principal_submatrix(&idx)
            }
        };

        // ---- partition of unity D_i interpolated onto the dofs ----
        let chi = &chi_tilde[i];
        let mut d = vec![0.0; n_local];
        for (s, &g) in scalar_gids.iter().enumerate() {
            let key = dm.key(g as usize);
            let order = problem.order as f64;
            let mut val = 0.0;
            for &(v, a) in key {
                let xi = chi.get(&v).copied().unwrap_or(0.0);
                let denom = chi_sum.get(&v).copied().unwrap_or(1.0).max(1e-300);
                val += a as f64 / order * (xi / denom);
            }
            for k in 0..c {
                d[s * c + k] = val;
            }
        }

        // ---- neighbors and shared dofs ----
        let mut shared_by_nbr: HashMap<u32, Vec<u32>> = HashMap::new();
        let mut overlap = vec![false; n_local];
        for (s, &g) in scalar_gids.iter().enumerate() {
            for &j in &dof_subs[g as usize] {
                if j as usize != i {
                    for k in 0..c {
                        shared_by_nbr.entry(j).or_default().push((s * c + k) as u32);
                        overlap[s * c + k] = true;
                    }
                }
            }
        }
        let mut neighbors: Vec<NeighborLink> = shared_by_nbr
            .into_iter()
            .map(|(j, mut shared)| {
                shared.sort_unstable(); // local order == global order (l2g sorted)
                NeighborLink {
                    j: j as usize,
                    shared,
                }
            })
            .collect();
        neighbors.sort_by_key(|n| n.j);

        let mut coords = Vec::with_capacity(n_scalar_coords(scalar_gids.len(), mesh.dim()));
        for &g in scalar_gids.iter() {
            coords.extend_from_slice(dm.dof_coord(g as usize));
        }
        let a_dirichlet_bsr = if c > 1 {
            BsrMatrix::detect_padded(&a_dirichlet)
        } else {
            None
        };
        subdomains.push(Subdomain {
            l2g: l2g.clone(),
            a_dirichlet,
            a_dirichlet_bsr,
            a_neumann,
            d,
            overlap,
            neighbors,
            dirichlet: dir_local,
            coords,
            dim: mesh.dim(),
        });
    }

    Decomposition {
        n_global,
        delta,
        components: c,
        subdomains,
        a_global,
        rhs_global,
        dirichlet,
    }
}

impl Decomposition {
    pub fn n_subdomains(&self) -> usize {
        self.subdomains.len()
    }

    /// `Σ_i R_iᵀ D_i R_i x` — must equal `x` (eq. 2). Returns the result
    /// for testing.
    pub fn pou_apply(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n_global];
        for s in &self.subdomains {
            let xi = s.restrict(x);
            let mut w = xi;
            vector::scale_by(&s.d, &mut w);
            s.prolong_add(&w, &mut y);
        }
        y
    }

    /// Maximum deviation of the partition of unity from the identity.
    pub fn pou_defect(&self) -> f64 {
        let x: Vec<f64> = (0..self.n_global)
            .map(|i| 1.0 + (i % 17) as f64 * 0.25)
            .collect();
        let y = self.pou_apply(&x);
        x.iter()
            .zip(&y)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max)
    }

    /// Distributed matrix–vector product via eq. (5):
    /// `(Ax)_i = Σ_j R_i R_jᵀ A_j D_j x_j`, executed sequentially over
    /// subdomains (the SPMD driver does the same with real messages).
    /// Inputs and outputs are consistent local vectors (`x_i = R_i x`).
    pub fn dist_spmv(&self, locals: &[Vec<f64>]) -> Vec<Vec<f64>> {
        assert_eq!(locals.len(), self.n_subdomains());
        // t_j = A_j D_j x_j
        let t: Vec<Vec<f64>> = self
            .subdomains
            .iter()
            .zip(locals)
            .map(|(s, x)| {
                let mut w = x.clone();
                vector::scale_by(&s.d, &mut w);
                let mut y = vec![0.0; s.n_local()];
                s.spmv_dirichlet(&w, &mut y);
                y
            })
            .collect();
        // y_i = t_i + Σ_{j∈O_i} R_i R_jᵀ t_j
        let mut out = t.clone();
        for (i, s) in self.subdomains.iter().enumerate() {
            for link in &s.neighbors {
                let other = &self.subdomains[link.j];
                let back = other
                    .neighbors
                    .iter()
                    .find(|l| l.j == i)
                    .expect("asymmetric neighbor links");
                assert_eq!(back.shared.len(), link.shared.len());
                for (&mine, &theirs) in link.shared.iter().zip(&back.shared) {
                    out[i][mine as usize] += t[link.j][theirs as usize];
                }
            }
        }
        out
    }

    /// Restrict a global vector to all subdomains.
    pub fn to_locals(&self, x: &[f64]) -> Vec<Vec<f64>> {
        self.subdomains.iter().map(|s| s.restrict(x)).collect()
    }

    /// The parameterized family `A(θ) = A + θ·diag(A)` (a uniform
    /// zeroth-order / reaction perturbation): every non-Dirichlet diagonal
    /// entry of the global matrix and of each subdomain matrix is scaled by
    /// `1 + θ`. Because `A_i = R_i A R_iᵀ`, local diagonals equal global
    /// diagonals, so eq. 2/5 consistency between the global operator and
    /// the subdomain restrictions is preserved *exactly*. Dirichlet rows
    /// stay untouched (they encode boundary conditions, not the operator).
    ///
    /// This is the admissibility workload of the abstract GenEO theory: for
    /// bounded `θ` the coarse space `Z` built at `θ = 0` remains an
    /// effective coarse space for `A(θ)` — `dd-serve` exploits this to
    /// reuse a resident [`crate::PreparedSolver`] across the family.
    pub fn perturb_diag(&self, theta: f64) -> Decomposition {
        fn scale(m: &mut CsrMatrix, theta: f64, dirichlet: &[bool]) {
            let (row_ptr, col_idx) = (m.row_ptr().to_vec(), m.col_idx().to_vec());
            let vals = m.values_mut();
            for i in 0..row_ptr.len() - 1 {
                if dirichlet[i] {
                    continue;
                }
                for p in row_ptr[i]..row_ptr[i + 1] {
                    if col_idx[p] as usize == i {
                        vals[p] *= 1.0 + theta;
                    }
                }
            }
        }
        let mut out = self.clone();
        scale(&mut out.a_global, theta, &self.dirichlet);
        for sub in &mut out.subdomains {
            let flags = sub.dirichlet.clone();
            scale(&mut sub.a_dirichlet, theta, &flags);
            scale(&mut sub.a_neumann, theta, &flags);
            // The blocked companion holds a copy of the values: rebuild it
            // so it cannot go stale against the scaled CSR matrix.
            if sub.a_dirichlet_bsr.is_some() {
                sub.a_dirichlet_bsr = BsrMatrix::detect_padded(&sub.a_dirichlet);
            }
        }
        out
    }

    /// A copy of this decomposition with the global right-hand side
    /// replaced — the one-shot differential reference for a served request
    /// (`try_run_spmd` always solves against `rhs_global`).
    pub fn with_rhs(&self, rhs: Vec<f64>) -> Decomposition {
        assert_eq!(rhs.len(), self.n_global);
        let mut out = self.clone();
        out.rhs_global = rhs;
        out
    }

    /// Recover a global vector from consistent locals (values on duplicated
    /// dofs must agree; the first owner wins).
    pub fn from_locals(&self, locals: &[Vec<f64>]) -> Vec<f64> {
        let mut y = vec![0.0; self.n_global];
        let mut set = vec![false; self.n_global];
        for (s, l) in self.subdomains.iter().zip(locals) {
            for (k, &g) in s.l2g.iter().enumerate() {
                if !set[g as usize] {
                    y[g as usize] = l[k];
                    set[g as usize] = true;
                }
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::presets;
    use dd_part::partition_mesh_rcb;

    fn small_setup(order: usize, nparts: usize, delta: usize) -> (Mesh, Decomposition) {
        let mesh = Mesh::unit_square(8, 8);
        let part = partition_mesh_rcb(&mesh, nparts);
        let p = presets::uniform_diffusion(order);
        let d = decompose(&mesh, &p, &part, nparts, delta);
        (mesh, d)
    }

    #[test]
    fn partition_of_unity_is_identity() {
        for order in [1usize, 2, 3] {
            for delta in [1usize, 2] {
                let (_, d) = small_setup(order, 4, delta);
                assert!(
                    d.pou_defect() < 1e-12,
                    "PoU defect {} for P{order}, δ={delta}",
                    d.pou_defect()
                );
            }
        }
    }

    #[test]
    fn approach2_matches_global_extraction() {
        // The core claim of §2: assembling on V_i^{δ+1} and restricting
        // gives exactly R_i A R_iᵀ, without ever forming A.
        let (_, d) = small_setup(2, 4, 1);
        for (i, s) in d.subdomains.iter().enumerate() {
            let idx: Vec<usize> = s.l2g.iter().map(|&g| g as usize).collect();
            let reference = d.a_global.principal_submatrix(&idx);
            let diff = s.a_dirichlet.add_scaled(-1.0, &reference);
            let err = diff.values().iter().fold(0.0f64, |m, v| m.max(v.abs()));
            assert!(
                err < 1e-10 * d.a_global.norm_inf(),
                "subdomain {i}: approach-2 mismatch {err}"
            );
        }
    }

    #[test]
    fn both_dirichlet_strategies_agree() {
        // The paper's central §2 claim, as an API-level invariant: local
        // halo assembly (approach 2) equals global extraction (approach 1).
        let mesh = Mesh::unit_square(8, 8);
        let part = partition_mesh_rcb(&mesh, 4);
        let p = presets::heterogeneous_diffusion(2);
        let d2 = decompose_with(&mesh, &p, &part, 4, 1, DirichletStrategy::LocalHalo);
        let d1 = decompose_with(&mesh, &p, &part, 4, 1, DirichletStrategy::GlobalExtraction);
        for (s2, s1) in d2.subdomains.iter().zip(&d1.subdomains) {
            let diff = s2.a_dirichlet.add_scaled(-1.0, &s1.a_dirichlet);
            let err = diff.values().iter().fold(0.0f64, |m, v| m.max(v.abs()));
            assert!(
                err < 1e-10 * d2.a_global.norm_inf(),
                "strategies differ: {err}"
            );
        }
    }

    #[test]
    fn neighbor_links_symmetric_and_consistent() {
        let (_, d) = small_setup(1, 6, 2);
        for (i, s) in d.subdomains.iter().enumerate() {
            for link in &s.neighbors {
                let other = &d.subdomains[link.j];
                let back = other
                    .neighbors
                    .iter()
                    .find(|l| l.j == i)
                    .expect("missing back link");
                assert_eq!(back.shared.len(), link.shared.len());
                // Shared dofs reference the same global ids in order.
                for (&a, &b) in link.shared.iter().zip(&back.shared) {
                    assert_eq!(s.l2g[a as usize], other.l2g[b as usize]);
                }
            }
        }
    }

    #[test]
    fn dist_spmv_matches_global() {
        for (order, nparts, delta) in [(1usize, 4usize, 1usize), (2, 6, 2), (3, 4, 1)] {
            let (_, d) = small_setup(order, nparts, delta);
            let x: Vec<f64> = (0..d.n_global)
                .map(|i| ((i * 31) % 13) as f64 * 0.3 - 1.0)
                .collect();
            let locals = d.to_locals(&x);
            let out = d.dist_spmv(&locals);
            let mut want = vec![0.0; d.n_global];
            d.a_global.spmv(&x, &mut want);
            // Each local result must equal R_i (A x).
            for (s, o) in d.subdomains.iter().zip(&out) {
                let want_i = s.restrict(&want);
                let err = vector::dist2(o, &want_i);
                assert!(
                    err < 1e-9 * vector::norm2(&want_i).max(1.0),
                    "P{order} N={nparts} δ={delta}: dist spmv error {err}"
                );
            }
        }
    }

    #[test]
    fn overlap_flags_match_neighbor_sharing() {
        let (_, d) = small_setup(1, 4, 1);
        for s in &d.subdomains {
            let mut from_links = vec![false; s.n_local()];
            for link in &s.neighbors {
                for &l in &link.shared {
                    from_links[l as usize] = true;
                }
            }
            assert_eq!(from_links, s.overlap);
        }
    }

    #[test]
    fn pou_supported_inside_not_on_artificial_boundary() {
        // D_i vanishes on the outermost layer of the overlap and is 1 well
        // inside the subdomain.
        let (_, d) = small_setup(1, 4, 1);
        for s in &d.subdomains {
            let interior_ones =
                s.d.iter()
                    .zip(&s.overlap)
                    .filter(|&(_, &ov)| !ov)
                    .all(|(&v, _)| (v - 1.0).abs() < 1e-12);
            assert!(interior_ones, "D_i ≠ 1 on interior dofs");
            assert!(s.d.iter().all(|&v| (0.0..=1.0 + 1e-12).contains(&v)));
            assert!(s.d.contains(&0.0), "no zero PoU values");
        }
    }

    #[test]
    fn neumann_matrix_is_positive_semidefinite() {
        let (_, d) = small_setup(1, 4, 1);
        for s in &d.subdomains {
            // xᵀ A^Neu x ≥ 0 for a few deterministic vectors.
            for seed in 0..5u64 {
                let x: Vec<f64> = (0..s.n_local())
                    .map(|k| {
                        (((k as u64 + 1) * (seed + 3) * 2654435761) % 1000) as f64 / 500.0 - 1.0
                    })
                    .collect();
                let mut y = vec![0.0; s.n_local()];
                s.a_neumann.spmv(&x, &mut y);
                let q = vector::dot(&x, &y);
                assert!(q >= -1e-8 * s.a_neumann.norm_inf(), "negative energy {q}");
            }
        }
    }

    #[test]
    fn elasticity_decomposition_builds() {
        let mesh = Mesh::rectangle(8, 4, 2.0, 1.0);
        let part = partition_mesh_rcb(&mesh, 4);
        let p = presets::heterogeneous_elasticity(1, 2);
        let d = decompose(&mesh, &p, &part, 4, 1);
        assert_eq!(d.components, 2);
        assert!(d.pou_defect() < 1e-12);
        // vector dofs come in pairs
        for s in &d.subdomains {
            assert_eq!(s.n_local() % 2, 0);
        }
    }

    #[test]
    fn locals_roundtrip() {
        let (_, d) = small_setup(2, 4, 1);
        let x: Vec<f64> = (0..d.n_global).map(|i| i as f64).collect();
        let locals = d.to_locals(&x);
        let back = d.from_locals(&locals);
        assert_eq!(x, back);
    }
}
